#include "rpc/rpc.h"

#include <cassert>

#include "common/log.h"

namespace magma::rpc {

namespace {
constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kResponse = 2;
}  // namespace

RpcNode::RpcNode(sim::Kernel& kernel, net::Channel& channel, std::string name)
    : kernel_(kernel), channel_(channel), name_(std::move(name)) {
  channel_.set_receiver([this](Bytes raw) { on_message(std::move(raw)); });
  // Fail fast when the transport gives up on a frame (connection reset)
  // instead of letting the caller wait out its deadline — gRPC maps a TCP
  // RST to UNAVAILABLE the same way.
  channel_.set_send_failure_handler(
      [this](Bytes raw) { on_send_failed(std::move(raw)); });
}

void RpcNode::register_method(const std::string& service,
                              const std::string& method, Handler handler) {
  handlers_[{service, method}] = std::move(handler);
}

void RpcNode::set_tracer(obs::Tracer* tracer, std::string node_label) {
  tracer_ = tracer;
  node_label_ = std::move(node_label);
}

void RpcNode::finish_client_span(obs::TraceContext span, const char* status) {
  if (!span.valid()) return;
  obs::tag_span(tracer_, span, "status", status);
  obs::end_span(tracer_, span);
}

sim::LabelId RpcNode::rpc_label(const std::string& service,
                                const std::string& method) {
  // Transparent find: the steady-state hit path allocates nothing.
  auto it = rpc_labels_.find(common::StringPairView{service, method});
  if (it != rpc_labels_.end()) return it->second;
  const sim::LabelId id =
      cpu_->intern_label("rpc_client", service + "/" + method);
  rpc_labels_.emplace(std::make_pair(service, method), id);
  return id;
}

void RpcNode::charge_rpc_wait(const PendingCall& pc) {
  if (cpu_ == nullptr) return;
  cpu_->charge_wait(pc.label, obs::WaitState::kRpcWait,
                    kernel_.now() - pc.issued_at);
}

void RpcNode::call(const std::string& service, const std::string& method,
                   Bytes request, sim::Duration deadline,
                   std::function<void(Result<Bytes>)> on_done) {
  MAGMA_HOST_SCOPE("rpc", "call_encode");
  const std::uint64_t id = next_call_id_++;
  ++stats_.calls_sent;

  PendingCall pc;
  pc.on_done = std::move(on_done);
  pc.span = obs::begin_span(tracer_, service + "/" + method, "rpc",
                            node_label_, obs::SpanKind::kClient);
  pc.issued_at = kernel_.now();
  if (cpu_ != nullptr) pc.label = rpc_label(service, method);
  pc.timeout = kernel_.schedule(deadline, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.on_done);
    charge_rpc_wait(it->second);
    finish_client_span(it->second.span, "deadline_exceeded");
    pending_.erase(it);
    ++stats_.calls_timed_out;
    cb(Error{ErrorCode::kDeadlineExceeded, "rpc deadline exceeded"});
  });
  const WireTrace trace{pc.span.trace_id, pc.span.span_id};
  pending_.emplace(id, std::move(pc));

  Writer w;
  w.u8(kRequest);
  w.u64(id);
  write_trace(w, trace);
  w.str(service);
  w.str(method);
  w.bytes(request);
  channel_.send(std::move(w).take());
}

void RpcNode::call_with_retries(const std::string& service,
                                const std::string& method, Bytes request,
                                sim::Duration deadline, int retries,
                                sim::Duration backoff,
                                std::function<void(Result<Bytes>)> on_done) {
  // The span current at the original call site keeps waiting through every
  // retry; charge the backoff gaps to it (and the rpc label) as timer wait.
  const obs::TraceContext origin = obs::current_context(tracer_);
  call(service, method, request, deadline,
       [this, service, method, request, deadline, retries, backoff, origin,
        on_done = std::move(on_done)](Result<Bytes> result) mutable {
         const bool retryable = !result.ok() &&
                                (result.code() == ErrorCode::kUnavailable ||
                                 result.code() == ErrorCode::kDeadlineExceeded);
         if (retryable && retries > 0) {
           if (cpu_ != nullptr) {
             cpu_->charge_wait(rpc_label(service, method),
                               obs::WaitState::kTimer, backoff);
           }
           obs::add_span_wait(tracer_, origin, obs::WaitState::kTimer,
                              backoff);
           // Init-captures (not simple captures) for the strings: GCC 12
           // mis-computes noexcept on a nested lambda's move constructor
           // when it simple-captures a non-trivial capture of the enclosing
           // lambda, and EventFn statically requires nothrow move.
           kernel_.schedule(backoff, [this, service = std::move(service),
                                      method = std::move(method),
                                      request = std::move(request), deadline,
                                      retries, backoff, origin,
                                      on_done = std::move(on_done)]() mutable {
             // Re-enter the originating context so the retried call's client
             // span lands in the same trace (and later backoffs keep
             // charging it).
             const obs::Tracer::Scope scope(tracer_, origin);
             call_with_retries(service, method, std::move(request), deadline,
                               retries - 1, backoff * 2, std::move(on_done));
           });
           return;
         }
         on_done(std::move(result));
       });
}

void RpcNode::on_message(Bytes raw) {
  Reader r(raw);
  const std::uint8_t type = r.u8();
  if (!r.ok()) return;
  switch (type) {
    case kRequest:
      handle_request(r);
      break;
    case kResponse:
      handle_response(r);
      break;
    default:
      MLOG_WARN("rpc") << name_ << ": unknown frame type "
                       << static_cast<int>(type);
  }
}

void RpcNode::on_send_failed(Bytes raw) {
  Reader r(raw);
  const std::uint8_t type = r.u8();
  const std::uint64_t id = r.u64();
  if (!r.ok()) return;
  if (type != kRequest) return;  // a dead response: the caller's deadline
                                 // (or its own send failure) covers it
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already timed out or answered
  kernel_.cancel(it->second.timeout);
  auto cb = std::move(it->second.on_done);
  charge_rpc_wait(it->second);
  finish_client_span(it->second.span, "unavailable");
  pending_.erase(it);
  ++stats_.calls_send_failed;
  cb(Error{ErrorCode::kUnavailable, "transport reset: request not delivered"});
}

void RpcNode::handle_request(Reader& r) {
  MAGMA_HOST_SCOPE("rpc", "dispatch");
  const std::uint64_t id = r.u64();
  const WireTrace trace = read_trace(r);
  const std::string service = r.str();
  const std::string method = r.str();
  const Bytes payload = r.bytes();
  if (!r.ok()) return;

  auto it = handlers_.find(common::StringPairView{service, method});
  if (it == handlers_.end()) {
    send_response(id, Error{ErrorCode::kNotFound,
                            "no handler for " + service + "/" + method});
    return;
  }
  ++stats_.calls_served;

  // Server span under the caller's client span. The gap between the two
  // spans' starts is the one-way network latency the caller paid.
  obs::TraceContext server_span{};
  if (tracer_ != nullptr && trace.trace_id != 0) {
    server_span = tracer_->begin(service + "/" + method, "rpc", node_label_,
                                 obs::SpanKind::kServer,
                                 obs::TraceContext{trace.trace_id,
                                                   trace.span_id});
  }
  // The handler body runs under the server context, so spans it opens (and
  // calls it makes) nest into the caller's trace; an async respond closes
  // the server span whenever it fires.
  obs::Tracer::Scope scope(tracer_, server_span);
  it->second(payload, [this, id, server_span](Result<Bytes> result) {
    obs::end_span(tracer_, server_span);
    send_response(id, result);
  });
}

void RpcNode::send_response(std::uint64_t call_id,
                            const Result<Bytes>& result) {
  MAGMA_HOST_SCOPE("rpc", "encode_response");
  Writer w;
  w.u8(kResponse);
  w.u64(call_id);
  if (result.ok()) {
    w.u8(static_cast<std::uint8_t>(ErrorCode::kOk));
    w.str("");
    w.bytes(result.value());
  } else {
    w.u8(static_cast<std::uint8_t>(result.error().code));
    w.str(result.error().message);
    w.bytes({});
  }
  channel_.send(std::move(w).take());
}

void RpcNode::handle_response(Reader& r) {
  MAGMA_HOST_SCOPE("rpc", "decode_response");
  const std::uint64_t id = r.u64();
  const auto code = static_cast<ErrorCode>(r.u8());
  const std::string message = r.str();
  const Bytes payload = r.bytes();
  if (!r.ok()) return;

  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late duplicate or already timed out
  kernel_.cancel(it->second.timeout);
  auto cb = std::move(it->second.on_done);
  charge_rpc_wait(it->second);
  finish_client_span(it->second.span,
                     code == ErrorCode::kOk ? "ok" : "error");
  pending_.erase(it);

  if (code == ErrorCode::kOk) {
    ++stats_.calls_ok;
    cb(payload);
  } else {
    ++stats_.calls_failed;
    cb(Error{code, message});
  }
}

}  // namespace magma::rpc
