// RPC framework over net::Channel — the repository's stand-in for gRPC.
//
// All Magma-internal communication (RAN front-end ↔ generic AGW services,
// AGW ↔ orchestrator, FeG ↔ MNO core) goes through this layer, mirroring
// §3.1's "all communication ... uses gRPC". An RpcNode is symmetric: either
// end of a channel can expose services and originate calls, which is how the
// orchestrator's streamer pushes and the AGW's poller both work over one
// long-lived connection.
//
// Semantics (like gRPC over TCP):
//  * calls carry a deadline; a lost transport means DEADLINE_EXCEEDED, not a
//    hang;
//  * responses are matched to calls by id; duplicates are ignored;
//  * handlers respond asynchronously, so a service can charge CPU time to a
//    sim::CpuModel before answering.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/result.h"
#include "common/string_pair_map.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "rpc/wire.h"
#include "sim/cpu.h"
#include "sim/kernel.h"

namespace magma::rpc {

using common::Bytes;
using common::Error;
using common::ErrorCode;
using common::Result;

// A handler receives the request payload and a `respond` callback it must
// invoke exactly once (possibly later, after simulated work).
using Respond = std::function<void(Result<Bytes>)>;
using Handler = std::function<void(const Bytes& request, Respond respond)>;

struct RpcStats {
  std::uint64_t calls_sent = 0;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_failed = 0;     // error status from the peer
  std::uint64_t calls_timed_out = 0;  // deadline exceeded locally
  // Transport reported the request undeliverable (connection reset): the
  // call failed UNAVAILABLE immediately instead of waiting out its deadline.
  std::uint64_t calls_send_failed = 0;
  std::uint64_t calls_served = 0;
};

class RpcNode {
 public:
  // The node does not own the channel; the caller keeps both alive.
  RpcNode(sim::Kernel& kernel, net::Channel& channel, std::string name);

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  // --- server side -------------------------------------------------------
  void register_method(const std::string& service, const std::string& method,
                       Handler handler);

  // --- client side -------------------------------------------------------
  void call(const std::string& service, const std::string& method,
            Bytes request, sim::Duration deadline,
            std::function<void(Result<Bytes>)> on_done);

  // Convenience: call with automatic retries on UNAVAILABLE/DEADLINE, spaced
  // by `backoff` (doubling). Used by AGW→orchestrator sync paths that must
  // survive backhaul outages.
  void call_with_retries(const std::string& service, const std::string& method,
                         Bytes request, sim::Duration deadline, int retries,
                         sim::Duration backoff,
                         std::function<void(Result<Bytes>)> on_done);

  const RpcStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  sim::Kernel& kernel() { return kernel_; }
  // Unacknowledged messages sitting in the underlying transport. Callers
  // shipping best-effort traffic (metrics, events) consult this before
  // piling more onto a congested channel.
  std::size_t transport_backlog() const { return channel_.send_backlog(); }

  // --- tracing ------------------------------------------------------------
  // Once set, every call opens a client span (parented on the tracer's
  // current context) whose TraceContext rides the request frame; every
  // served request opens a server span under the caller's context and makes
  // it current while the handler runs. `node_label` names this endpoint's
  // node in span records (gateway id, "orc8r", ...).
  void set_tracer(obs::Tracer* tracer, std::string node_label);
  obs::Tracer* tracer() const { return tracer_; }

  // Off-CPU wait attribution: when set, every call charges its blocked time
  // (issue → response/timeout/send-failure) against an interned
  // ("rpc_client", "<service>/<method>") label on `cpu`, and retry backoff
  // is charged as timer wait — the profiler's answer to "this label is 2%
  // busy but its operations take 400 ms". The CpuModel is only used as the
  // label registry + wait ledger; no work is submitted to it.
  void set_wait_attribution(sim::CpuModel* cpu) { cpu_ = cpu; }

 private:
  struct PendingCall {
    std::function<void(Result<Bytes>)> on_done;
    sim::EventId timeout;
    obs::TraceContext span{};  // client span (invalid when untraced)
    sim::TimePoint issued_at = 0;
    sim::LabelId label = sim::kUnattributed;
  };

  void finish_client_span(obs::TraceContext span, const char* status);
  sim::LabelId rpc_label(const std::string& service,
                         const std::string& method);
  void charge_rpc_wait(const PendingCall& pc);

  void on_message(Bytes raw);
  void on_send_failed(Bytes raw);
  void handle_request(Reader& r);
  void handle_response(Reader& r);
  void send_response(std::uint64_t call_id, const Result<Bytes>& result);

  sim::Kernel& kernel_;
  net::Channel& channel_;
  std::string name_;
  obs::Tracer* tracer_ = nullptr;
  std::string node_label_;
  sim::CpuModel* cpu_ = nullptr;  // wait-attribution ledger (optional)
  // Transparent comparators: per-call label lookups and request dispatch
  // find by string_view pair, no temporary pair<string,string>.
  std::map<std::pair<std::string, std::string>, sim::LabelId,
           common::StringPairLess>
      rpc_labels_;
  std::uint64_t next_call_id_ = 1;
  std::map<std::pair<std::string, std::string>, Handler,
           common::StringPairLess>
      handlers_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  RpcStats stats_;
};

}  // namespace magma::rpc
