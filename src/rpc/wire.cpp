#include "rpc/wire.h"

#include <cstring>

namespace magma::rpc {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(common::BytesView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  bytes(common::BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                          s.size()));
}

bool Reader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t Reader::u8() {
  const std::uint8_t* p;
  return take(1, &p) ? *p : 0;
}

std::uint16_t Reader::u16() {
  const std::uint8_t* p;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t Reader::u32() {
  const std::uint8_t* p;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t Reader::u64() {
  const std::uint8_t* p;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

common::Bytes Reader::bytes() {
  const std::uint32_t len = u32();
  const std::uint8_t* p;
  if (!take(len, &p)) return {};
  return common::Bytes(p, p + len);
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p;
  if (!take(len, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), len);
}

void write_trace(Writer& w, const WireTrace& trace) {
  w.u64(trace.trace_id);
  w.u64(trace.span_id);
}

WireTrace read_trace(Reader& r) {
  WireTrace trace;
  trace.trace_id = r.u64();
  trace.span_id = r.u64();
  return trace;
}

}  // namespace magma::rpc
