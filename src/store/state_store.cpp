#include "store/state_store.h"

#include "rpc/wire.h"

namespace magma::store {

void StateStore::put(const std::string& key, common::Bytes value) {
  map_[key] = std::move(value);
}

void StateStore::erase(const std::string& key) {
  map_.erase(key);
}

std::optional<common::Bytes> StateStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool StateStore::contains(const std::string& key) const {
  return map_.contains(key);
}

std::vector<std::pair<std::string, common::Bytes>> StateStore::scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, common::Bytes>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::size_t StateStore::erase_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  auto it = map_.lower_bound(prefix);
  while (it != map_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = map_.erase(it);
    ++removed;
  }
  return removed;
}

common::Bytes StateStore::snapshot() const {
  rpc::Writer w;
  w.u64(map_.size());
  for (const auto& [key, value] : map_) {
    w.str(key);
    w.bytes(value);
  }
  return std::move(w).take();
}

common::Result<StateStore> StateStore::restore(common::BytesView image) {
  rpc::Reader r(image);
  StateStore store;
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.str();
    store.map_[std::move(key)] = r.bytes();
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt StateStore image"};
  }
  return store;
}

}  // namespace magma::store
