#include "store/wal_store.h"

#include <cstdio>

#include "rpc/wire.h"

namespace magma::store {

void WalStore::apply(std::map<std::string, common::Bytes>& map,
                     const Record& record) {
  if (record.is_erase) {
    map.erase(record.key);
  } else {
    map[record.key] = record.value;
  }
}

void WalStore::put(const std::string& key, common::Bytes value) {
  Record rec{false, key, std::move(value)};
  apply(map_, rec);
  wal_.push_back(std::move(rec));
  ++version_;
}

void WalStore::erase(const std::string& key) {
  if (!map_.contains(key)) return;
  Record rec{true, key, {}};
  apply(map_, rec);
  wal_.push_back(std::move(rec));
  ++version_;
}

std::optional<common::Bytes> WalStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool WalStore::contains(const std::string& key) const {
  return map_.contains(key);
}

std::vector<std::pair<std::string, common::Bytes>> WalStore::scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, common::Bytes>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

void WalStore::checkpoint() {
  snapshot_ = map_;
  wal_.clear();
}

void WalStore::simulate_crash_and_recover() {
  map_ = snapshot_;
  for (const Record& rec : wal_) apply(map_, rec);
}

common::Bytes WalStore::serialize() const {
  rpc::Writer w;
  w.u64(version_);
  w.u64(snapshot_.size());
  for (const auto& [key, value] : snapshot_) {
    w.str(key);
    w.bytes(value);
  }
  w.u64(wal_.size());
  for (const Record& rec : wal_) {
    w.boolean(rec.is_erase);
    w.str(rec.key);
    w.bytes(rec.value);
  }
  return std::move(w).take();
}

common::Result<WalStore> WalStore::deserialize(common::BytesView data) {
  rpc::Reader r(data);
  WalStore store;
  store.version_ = r.u64();
  const std::uint64_t snapshot_count = r.u64();
  for (std::uint64_t i = 0; i < snapshot_count && r.ok(); ++i) {
    std::string key = r.str();
    store.snapshot_[std::move(key)] = r.bytes();
  }
  const std::uint64_t wal_count = r.u64();
  for (std::uint64_t i = 0; i < wal_count && r.ok(); ++i) {
    Record rec;
    rec.is_erase = r.boolean();
    rec.key = r.str();
    rec.value = r.bytes();
    store.wal_.push_back(std::move(rec));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt WalStore image"};
  }
  store.map_ = store.snapshot_;
  for (const Record& rec : store.wal_) apply(store.map_, rec);
  return store;
}

common::Status WalStore::save_to_file(const std::string& path) const {
  const common::Bytes image = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return common::Error{common::ErrorCode::kInternal, "cannot open " + path};
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (written != image.size()) {
    return common::Error{common::ErrorCode::kInternal, "short write " + path};
  }
  return common::Status::Ok();
}

common::Result<WalStore> WalStore::load_from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return common::Error{common::ErrorCode::kNotFound, "cannot open " + path};
  }
  common::Bytes image;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  std::fclose(f);
  return deserialize(image);
}

}  // namespace magma::store
