// Durable key-value store with a write-ahead log.
//
// Stands in for the orchestrator's Postgres (§3.4: "the source of truth for
// configuration state is stored durably in the orchestrator"). Writes append
// to a WAL before mutating the materialized map; recovery replays
// snapshot + log. `simulate_crash_and_recover()` models a process crash by
// discarding the materialized state and rebuilding from the "disk" image —
// tests assert the two are always equivalent. An optional file backend
// persists the same image to a real file.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace magma::store {

class WalStore {
 public:
  WalStore() = default;

  void put(const std::string& key, common::Bytes value);
  void erase(const std::string& key);
  std::optional<common::Bytes> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return map_.size(); }

  // All entries whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, common::Bytes>> scan(
      const std::string& prefix) const;

  // Fold the log into the snapshot (compaction).
  void checkpoint();
  std::size_t wal_records() const { return wal_.size(); }

  // Crash model: throw away the materialized map and rebuild from
  // snapshot + WAL. State must be unchanged (verified by tests).
  void simulate_crash_and_recover();

  // Serialize the durable image (snapshot + log).
  common::Bytes serialize() const;
  static common::Result<WalStore> deserialize(common::BytesView data);

  // Real-file persistence (used by the store's own tests; the simulation
  // normally keeps the image in memory).
  common::Status save_to_file(const std::string& path) const;
  static common::Result<WalStore> load_from_file(const std::string& path);

  // Monotone version, bumped on every mutation. Used by desired-state sync
  // to cheaply detect "something changed".
  std::uint64_t version() const { return version_; }

 private:
  struct Record {
    bool is_erase;
    std::string key;
    common::Bytes value;
  };

  static void apply(std::map<std::string, common::Bytes>& map,
                    const Record& record);

  std::map<std::string, common::Bytes> snapshot_;
  std::vector<Record> wal_;
  std::map<std::string, common::Bytes> map_;  // materialized view
  std::uint64_t version_ = 0;
};

}  // namespace magma::store
