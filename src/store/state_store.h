// In-memory state store with whole-image snapshot/restore.
//
// Stands in for the Redis instance Magma runs on each AGW: critical services
// keep per-process state *outside* the process (§3.4 footnote), so a service
// restart is a crash-recovery, not a state loss. §3.3: "runtime state stored
// in an AGW is checkpointed regularly and may be copied to a backup instance
// of the AGW running as a cloud service" — `snapshot()` produces exactly
// that image, and `restore()` brings a cold standby up from it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace magma::store {

class StateStore {
 public:
  void put(const std::string& key, common::Bytes value);
  void erase(const std::string& key);
  std::optional<common::Bytes> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

  std::vector<std::pair<std::string, common::Bytes>> scan(
      const std::string& prefix) const;
  // Erase every key with the given prefix; returns how many were removed.
  std::size_t erase_prefix(const std::string& prefix);

  // Serialized full image for checkpoint shipping.
  common::Bytes snapshot() const;
  static common::Result<StateStore> restore(common::BytesView image);

  bool operator==(const StateStore& other) const { return map_ == other.map_; }

 private:
  std::map<std::string, common::Bytes> map_;
};

}  // namespace magma::store
