// Subscriber Management — Magma's generic replacement for the LTE HSS, 5G
// UDM/AUSF, and WiFi RADIUS user store (Table 1).
//
// §3.1: "Magma's subscriber database has the union of all capabilities
// across the radio access types, even if some fields in a given database
// row are valid only for some technologies." SubscriberData carries USIM
// credentials (LTE/5G) *and* a WiFi password-equivalent; the policy name is
// technology-independent.
//
// The AGW instance of this service is a *cache*: the authoritative copy
// lives in the orchestrator (configuration state) and is pushed down via
// desired-state sync. The cache is what lets an AGW keep authenticating
// UEs while disconnected from the orchestrator (§3.2 headless operation).
//
// Auth vector generation (EPS-AKA via Milenage, including SQN management
// and resynchronisation) happens here, as in Magma's subscriberdb.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "crypto/kdf.h"
#include "obs/status.h"
#include "crypto/milenage.h"
#include "store/state_store.h"

namespace magma::agw {

struct SubscriberData {
  common::Imsi imsi;
  crypto::Key128 k{};    // USIM secret key
  crypto::Key128 opc{};  // Milenage OPc
  std::uint64_t sqn = 0; // network-side sequence number (HSS state)
  std::string policy_name = "default";
  std::string wifi_password;  // WiFi-only credential (union-of-fields row)
  bool active = true;         // deactivated subscribers are refused service

  common::Bytes serialize() const;
  static common::Result<SubscriberData> deserialize(common::BytesView data);
  bool operator==(const SubscriberData&) const = default;
};

// One EPS authentication vector (TS 33.401): the challenge handed to the
// access layer plus the expected response and derived keys kept locally.
struct AuthVector {
  std::array<std::uint8_t, 16> rand{};
  std::array<std::uint8_t, 16> autn{};
  std::array<std::uint8_t, 8> xres{};
  crypto::Key256 kasme{};
};

struct SubscriberDbStats {
  std::uint64_t vectors_generated = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
};

class SubscriberDb {
 public:
  // `rand_source` supplies the 16 random bytes for each vector (seeded
  // deterministically by the simulation).
  explicit SubscriberDb(std::function<std::uint64_t()> rand_source,
                        std::string plmn = "00101");

  void upsert(SubscriberData data);
  void remove(const common::Imsi& imsi);
  std::optional<SubscriberData> get(const common::Imsi& imsi);
  std::size_t size() const { return subscribers_.size(); }
  std::vector<common::Imsi> all_imsis() const;

  // Desired-state replacement: the new subscriber set *is* `data` (§3.4).
  // Local-only runtime state (SQN) for surviving entries is preserved.
  void replace_all(const std::vector<SubscriberData>& data);

  // Generate an EPS-AKA vector and advance the subscriber's SQN.
  common::Result<AuthVector> generate_auth_vector(const common::Imsi& imsi);

  // Handle a UE resynchronisation request (AUTS): recover SQNms and jump
  // the network SQN past it (TS 33.102 §6.3.5, simplified).
  common::Status resync(const common::Imsi& imsi,
                        const std::array<std::uint8_t, 14>& auts,
                        const std::array<std::uint8_t, 16>& rand);

  const SubscriberDbStats& stats() const { return stats_; }

  // Service303 handle (optional): vector generation and resyncs count
  // requests and errors.
  void set_status(obs::Service303* status) { status_ = status; }

  // Serialize the full cache (for orchestrator→AGW sync payloads and AGW
  // checkpoints).
  common::Bytes snapshot() const;
  common::Status restore(common::BytesView image);

 private:
  std::function<std::uint64_t()> rand_source_;
  crypto::ServingNetwork sn_;
  std::unordered_map<common::Imsi, SubscriberData> subscribers_;
  SubscriberDbStats stats_;
  obs::Service303* status_ = nullptr;
};

// Expected RES for a given vector (what the USIM in the UE computes); used
// by the UE model and by tests.
std::array<std::uint8_t, 6> sqn_to_bytes(std::uint64_t sqn);
std::uint64_t sqn_from_bytes(const std::array<std::uint8_t, 6>& bytes);

}  // namespace magma::agw
