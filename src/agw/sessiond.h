// sessiond — Session & Policy Management (Table 1: MME/PCRF, SMF/PCF, or
// RADIUS AAA, depending on generation — here, one generic service).
//
// Owns the runtime state of every active session on this AGW (§3.4):
// creation at attach, teardown at detach, periodic usage polling against
// the data plane's counters, tier transitions ("X Mbps until Y GB, then Z
// Mbps"), hard caps, and volume-billing quota against an external OCS.
//
// Quota protocol (§3.4): usage is authorized in small grants; when the
// session nears the end of its granted bytes sessiond asynchronously
// requests more; a denied grant blocks the session in the data plane.
// Whether a user *has* a grant is config state; how much remains is runtime
// state — both live here, and both are checkpointed (§3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "agw/pipelined.h"
#include "common/ids.h"
#include "common/result.h"
#include "core/policy.h"
#include "obs/sketch/subscriber_sketches.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace magma::agw {

struct SessionRecord {
  common::SessionId id;
  common::Imsi imsi;
  SessionFlows flows;         // data-plane spec currently installed
  core::Policy policy;
  sim::TimePoint started = 0;
  sim::TimePoint interval_start = 0;
  std::uint64_t interval_base_bytes = 0;  // usage value at interval start
  std::uint64_t used_bytes = 0;           // cumulative (whole session)
  // Usage accumulated in *previous* incarnations of this session's flow
  // rules. Reprogramming the data plane (tier change, block) zeroes the
  // flow counters, so cumulative usage = counter_base_bytes + live counter.
  // Not serialized: recomputed at restore (counters start at zero there).
  std::uint64_t counter_base_bytes = 0;

  // OCS quota bookkeeping (ChargingMode::kOcsQuota only).
  std::uint64_t quota_granted = 0;   // total bytes granted by the OCS
  std::uint64_t quota_reported = 0;  // usage already reconciled
  bool quota_request_inflight = false;
  bool quota_denied = false;

  // Sketch-feed throttle: per-IMSI liveness marks and byte deltas go to
  // the subscriber sketches once per kSketchMarkInterval, not every 2 s
  // poll — deltas accumulate here in between (flushed at session end too,
  // so sketch byte totals stay exact). Not serialized: a restore re-marks
  // on the next poll and the pending delta was already flushed or lost
  // with the counters.
  sim::TimePoint next_sketch_mark = 0;
  std::uint64_t pending_sketch_bytes = 0;

  std::uint64_t used_in_interval() const {
    return used_bytes - interval_base_bytes;
  }

  common::Bytes serialize() const;
  static common::Result<SessionRecord> deserialize(common::BytesView data);
};

struct SessiondStats {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_ended = 0;
  std::uint64_t tier_transitions = 0;
  std::uint64_t caps_enforced = 0;
  std::uint64_t quota_requests = 0;
  std::uint64_t quota_denials = 0;
};

class Sessiond {
 public:
  // `ocs` may be null (no volume billing anywhere in the deployment).
  Sessiond(sim::Kernel& kernel, Pipelined& pipelined, rpc::RpcNode* ocs);

  // Late OCS wiring (deployments add billing after boot).
  void set_ocs(rpc::RpcNode* ocs) { ocs_ = ocs; }

  // Tracing (optional): session creation and flow installation emit spans
  // parented on the caller's current context.
  void set_observability(obs::Tracer* tracer, std::string node);

  // Service303 handle (optional): session lifecycle calls count requests
  // and errors.
  void set_status(obs::Service303* status) { status_ = status; }

  // Per-subscriber sketches (optional): usage deltas feed the bytes
  // heavy-hitter sketch, quota denials and cap enforcement feed the
  // quota-rejection sketch, re-attach teardowns feed bearer drops, and
  // every polled session marks its IMSI active.
  void set_subscriber_sketches(obs::sketch::SubscriberSketches* sketches) {
    sketches_ = sketches;
  }

  struct CreateRequest {
    common::Imsi imsi;
    common::Ipv4 ue_ip;
    bool tunneled = true;  // false for WiFi sessions
    common::Teid agw_teid_ul;
    common::Teid enb_teid_dl;
    common::Ipv4 enb_address;
    core::Policy policy;
    // Federation (home routing, §3.6).
    bool home_routed = false;
    common::Teid home_teid_remote;
    common::Ipv4 home_agg_address;
    common::Teid home_teid_local;
  };

  common::Result<common::SessionId> create_session(const CreateRequest& req);

  // RAN-side tunnel endpoint update (the eNodeB reports its downlink TEID
  // in InitialContextSetupResponse, after the session already exists —
  // LTE's ModifyBearer step). Also clears idle: a fresh bearer means the
  // UE is back in ECM-CONNECTED.
  common::Status update_bearer(const common::Imsi& imsi,
                               common::Teid enb_teid_dl,
                               common::Ipv4 enb_address);

  // ECM-IDLE transition (§3.4 runtime state): the session and its usage
  // survive, the radio path is torn down, and downlink triggers paging.
  common::Status set_idle(const common::Imsi& imsi, bool idle);
  common::Status end_session(const common::Imsi& imsi);
  const SessionRecord* find(const common::Imsi& imsi) const;
  std::size_t active_sessions() const { return by_imsi_.size(); }
  std::vector<common::Imsi> active_imsis() const;

  // Periodic sweep: refresh usage from data-plane counters and enforce
  // tiers/caps/quota. Called by the AGW's service loop.
  void poll_usage();
  // How often the AGW runs poll_usage (public so the AGW can schedule it).
  static constexpr sim::Duration kPollInterval = 2 * sim::kSecond;
  // How often a live session marks its IMSI active / flushes byte deltas
  // into the subscriber sketches. Coarser than the usage poll: the HLL
  // activity window is minutes wide, so per-poll marking would buy nothing
  // but hash work.
  static constexpr sim::Duration kSketchMarkInterval = 60 * sim::kSecond;

  const SessiondStats& stats() const { return stats_; }

  // Checkpoint/restore of all session runtime state (§3.3). Restore also
  // reprograms the data plane to match.
  common::Bytes checkpoint() const;
  common::Status restore(common::BytesView image);

 private:
  common::Result<common::SessionId> do_create_session(const CreateRequest& req);
  void refresh_usage(SessionRecord& session);
  void enforce(SessionRecord& session);
  void flush_sketch_bytes(SessionRecord& session);
  void apply_flows(SessionRecord& session, const SessionFlows& desired);
  void request_quota(SessionRecord& session);

  sim::Kernel& kernel_;
  Pipelined& pipelined_;
  rpc::RpcNode* ocs_;
  std::uint64_t next_session_id_ = 1;
  std::unordered_map<common::Imsi, SessionRecord> by_imsi_;
  SessiondStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::string node_;
  obs::Service303* status_ = nullptr;
  obs::sketch::SubscriberSketches* sketches_ = nullptr;
};

}  // namespace magma::agw
