// accessd — generic Access Control & Management (Table 1: the role of the
// LTE MME, the 5G AMF, and WiFi's RADIUS AAA, provided once).
//
// §3.1: "UE authentication and session establishment are done in a common
// way by generic functions that cover 4G, 5G, and WiFi procedures." The
// radio-specific front-ends terminate their protocols and drive this
// service through three technology-independent stages:
//
//   1. begin_attach(imsi, rat)   → authentication challenge
//   2. verify_auth(imsi, response) → security keys (or resync via AUTS)
//   3. establish(imsi, bearer endpoints) → session info (IP, QoS, TEIDs)
//   4. detach(imsi)
//
// Stage transitions follow the shared EMM FSM; invalid sequencing is
// rejected. Control-plane CPU cost is charged per stage through the host's
// CpuModel, serialized across a configurable number of worker shards —
// this is the "MME component" bottleneck of Figure 6 ("Maximum supported
// attach rates are limited by the AGW (specifically, the MME component)").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "agw/mobilityd.h"
#include "agw/policydb.h"
#include "agw/sessiond.h"
#include "agw/subscriberdb.h"
#include "common/ids.h"
#include "common/result.h"
#include "crypto/kdf.h"
#include "obs/sketch/subscriber_sketches.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "proto/lte/emm_fsm.h"
#include "sim/cpu.h"
#include "sim/kernel.h"

namespace magma::agw {

enum class RanType : std::uint8_t { kLte = 0, kNr5g = 1, kWifi = 2 };
const char* ran_type_name(RanType rat);

struct AuthChallenge {
  std::array<std::uint8_t, 16> rand{};
  std::array<std::uint8_t, 16> autn{};  // unused for WiFi CHAP
};

struct SecurityKeys {
  crypto::Key256 kasme{};  // root; front-ends derive NAS/AS keys from it
};

struct SessionInfo {
  common::SessionId session_id;
  common::Ipv4 ue_ip;
  common::Teid agw_teid_ul;  // uplink tunnel endpoint at this AGW (LTE/5G)
  std::uint8_t qci = 9;
  std::uint64_t ambr_dl_bps = 0;
  std::uint64_t ambr_ul_bps = 0;
};

struct AccessdConfig {
  // Parallelism of control-plane processing (MME worker shards). The
  // bare-metal AGW profile uses 1; the virtual AGW parallelizes.
  int workers = 1;
  // Per-stage CPU cost in reference-GHz-seconds (see DESIGN.md calibration:
  // the three stages sum to 0.50, putting a 1.6 GHz single-worker AGW at
  // 3.2 attach/s — it absorbs Figure 5's 3 UE/s ramp but breaks just past
  // it, Figure 6's knee — and a 3-worker 2.6 GHz VM at ~15.6/s, the paper's
  // "a 4 vCPU instance of our virtual AGW supports 16 attaches per
  // second").
  double cost_begin_attach = 0.20;
  double cost_verify_auth = 0.10;
  double cost_establish = 0.20;
  double cost_detach = 0.05;
  // Give up on half-open attach contexts after this guard (T3450-like).
  sim::Duration context_guard = 30 * sim::kSecond;
  // Reject new control work beyond this queue depth (overload shedding,
  // the SCTP-backlog analogue). Bounded queueing is what makes CSR degrade
  // *gradually* toward capacity/offered under overload (Figures 6/8)
  // instead of collapsing when queueing delay crosses the NAS guard timer.
  // 32 pending stages ≈ 10 s of backlog on the bare-metal profile — safely
  // inside T3410, so shedding (not timeout collapse) governs overload.
  std::size_t max_queue = 32;
};

struct AccessdStats {
  std::uint64_t attach_started[3] = {0, 0, 0};   // by RanType
  std::uint64_t attach_completed[3] = {0, 0, 0};
  std::uint64_t attach_rejected[3] = {0, 0, 0};
  std::uint64_t auth_failures = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t detaches = 0;
  std::uint64_t overload_rejections = 0;
  std::uint64_t invalid_transitions = 0;
};

class Accessd {
 public:
  // `cpu` may be null (unit tests without CPU modeling: work runs in zero
  // simulated time).
  Accessd(sim::Kernel& kernel, sim::CpuModel* cpu, SubscriberDb& subscribers,
          PolicyDb& policies, Mobilityd& mobilityd, Sessiond& sessiond,
          AccessdConfig config = {});

  void begin_attach(const common::Imsi& imsi, RanType rat,
                    std::function<void(common::Result<AuthChallenge>)> done);

  // `response`: 8-byte RES (LTE), 16-byte RES* (5G; the first 8 bytes must
  // match XRES in this simplified hierarchy), or 8-byte CHAP digest (WiFi).
  void verify_auth(const common::Imsi& imsi, common::BytesView response,
                   std::function<void(common::Result<SecurityKeys>)> done);

  // UE reported SQN desynchronisation (AUTS): resync and issue a fresh
  // challenge.
  void resync_auth(const common::Imsi& imsi,
                   const std::array<std::uint8_t, 14>& auts,
                   std::function<void(common::Result<AuthChallenge>)> done);

  struct EstablishRequest {
    common::Imsi imsi;
    common::Teid enb_teid_dl;  // RAN-side tunnel endpoint (0 for WiFi)
    common::Ipv4 enb_address;
  };
  void establish(const EstablishRequest& req,
                 std::function<void(common::Result<SessionInfo>)> done);

  void detach(const common::Imsi& imsi,
              std::function<void(common::Status)> done);

  // --- federation (§3.6, home-routing mode) ------------------------------
  // When a federation hook is set, session establishment delegates the
  // user-plane anchor to the partner MNO: the hook (backed by the FeG)
  // creates the session at the MNO's P-GW via the GTP aggregator and
  // returns the MNO-allocated UE address plus tunnel endpoints. The local
  // breakout mode needs no hook: only the subscriber data is federated.
  struct FederatedSession {
    common::Ipv4 ue_ip;              // allocated by the MNO P-GW
    common::Teid home_teid_remote;   // our uplink tunnel id at the GTP-A
    common::Ipv4 home_agg_address;   // GTP-A address
  };
  using FederationHook = std::function<void(
      const common::Imsi&, common::Teid local_teid,
      std::function<void(common::Result<FederatedSession>)>)>;
  void set_federation(FederationHook hook) { federation_ = std::move(hook); }

  // Tracing (optional): stage spans cover queueing + CPU charge + logic,
  // parented on the context current at the entry point (the front-end's
  // attach root). `node` names this gateway in span records.
  void set_observability(obs::Tracer* tracer, std::string node);

  // Service303 handle (optional): every public entry point counts a
  // request; overload shedding counts an error.
  void set_status(obs::Service303* status) { status_ = status; }

  // Per-subscriber sketches (optional): every attach rejection records the
  // IMSI into the attach-failure heavy-hitter sketch (with the failing
  // stage span as exemplar), and every attach attempt marks the IMSI
  // active — "who fails to attach" stays answerable at fleet scale.
  void set_subscriber_sketches(obs::sketch::SubscriberSketches* sketches) {
    sketches_ = sketches;
  }

  // Attach-context state, for tests and the AGW checkpoint.
  std::optional<proto::lte::EmmState> ue_state(const common::Imsi& imsi) const;
  std::size_t pending_contexts() const { return contexts_.size(); }
  std::size_t queued_work() const { return work_queue_.size(); }
  const AccessdStats& stats() const { return stats_; }

 private:
  struct UeContext {
    RanType rat = RanType::kLte;
    proto::lte::EmmFsm fsm;
    AuthVector vector;
    bool has_vector = false;
    sim::EventId guard_timer;
  };

  // Control-plane work scheduling: at most `workers` items execute
  // concurrently; the rest wait FIFO. Each item charges `cost` to the CPU
  // before its logic runs, attributed to `label` in the CPU profiler.
  // `origin` is the span the work belongs to (the stage span): its time in
  // the shard queue is charged as run-queue wait, and the CPU submission
  // runs under it so the scheduler's own runq/cpu charges land there too.
  void submit_work(sim::LabelId label, double cost, obs::TraceContext origin,
                   std::function<void()> logic,
                   std::function<void()> on_reject);
  void pump();

  void arm_guard(const common::Imsi& imsi);
  void drop_context(const common::Imsi& imsi);
  // Feed one attach rejection into the heavy-hitter sketch, with the
  // current stage span (error-pinned by its tag) as exemplar.
  void note_attach_failure(const common::Imsi& imsi);

  common::Result<AuthChallenge> do_begin(const common::Imsi& imsi,
                                         RanType rat);
  common::Result<SecurityKeys> do_verify(const common::Imsi& imsi,
                                         const common::Bytes& response);
  void do_establish(const EstablishRequest& req,
                    std::function<void(common::Result<SessionInfo>)> done);
  common::Result<SessionInfo> finish_establish(
      const EstablishRequest& req, UeContext& ctx,
      const core::Policy& policy, common::Ipv4 ue_ip, bool home_routed,
      const FederatedSession& fed, common::Teid agw_teid,
      common::Teid home_teid_local);

  sim::Kernel& kernel_;
  sim::CpuModel* cpu_;
  SubscriberDb& subscribers_;
  PolicyDb& policies_;
  Mobilityd& mobilityd_;
  Sessiond& sessiond_;
  AccessdConfig config_;

  std::unordered_map<common::Imsi, UeContext> contexts_;
  std::uint32_t next_teid_ = 1;

  struct Work {
    sim::LabelId label;
    double cost;
    obs::TraceContext origin;  // stage span the charges belong to
    sim::TimePoint queued_at = 0;
    std::function<void()> logic;
  };
  std::deque<Work> work_queue_;
  int active_workers_ = 0;

  FederationHook federation_;
  AccessdStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::string node_;
  obs::Service303* status_ = nullptr;
  obs::sketch::SubscriberSketches* sketches_ = nullptr;
  // Profiler labels for the per-stage CPU charges (interned once at
  // construction when a CPU model is present).
  sim::LabelId label_begin_ = sim::kUnattributed;
  sim::LabelId label_verify_ = sim::kUnattributed;
  sim::LabelId label_establish_ = sim::kUnattributed;
  sim::LabelId label_detach_ = sim::kUnattributed;
  sim::LabelId label_resync_ = sim::kUnattributed;
};

}  // namespace magma::agw
