#include "agw/mobilityd.h"

namespace magma::agw {

Mobilityd::Mobilityd(IpBlock block, sim::Duration quarantine)
    : block_(block), quarantine_(quarantine) {}

common::Result<common::Ipv4> Mobilityd::allocate(const common::Imsi& imsi,
                                                 sim::TimePoint now) {
  obs::svc_request(status_);
  // Re-attach with an existing allocation keeps the same address (the UE's
  // session is simply re-established).
  if (auto it = by_imsi_.find(imsi); it != by_imsi_.end()) {
    return it->second;
  }

  common::Ipv4 addr;
  if (next_fresh_ <= block_.capacity()) {
    addr = common::Ipv4{block_.base.addr + next_fresh_};
    ++next_fresh_;
  } else if (!released_.empty() &&
             now - released_.front().second >= quarantine_) {
    addr = released_.front().first;
    released_.pop_front();
  } else {
    obs::svc_error(status_, "IP block exhausted");
    return common::Error{common::ErrorCode::kResourceExhausted,
                         "IP block exhausted"};
  }

  by_imsi_[imsi] = addr;
  by_ip_[addr] = imsi;
  return addr;
}

common::Status Mobilityd::release(const common::Imsi& imsi,
                                  sim::TimePoint now) {
  obs::svc_request(status_);
  auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no allocation"};
  }
  released_.emplace_back(it->second, now);
  by_ip_.erase(it->second);
  by_imsi_.erase(it);
  return common::Status::Ok();
}

common::Status Mobilityd::adopt(const common::Imsi& imsi, common::Ipv4 ip) {
  obs::svc_request(status_);
  if (ip.addr <= block_.base.addr ||
      ip.addr > block_.base.addr + block_.capacity()) {
    obs::svc_error(status_, "address outside block");
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "address outside block"};
  }
  if (auto it = by_ip_.find(ip); it != by_ip_.end() && !(it->second == imsi)) {
    obs::svc_error(status_, "address held by another subscriber");
    return common::Error{common::ErrorCode::kAlreadyExists,
                         "address held by another subscriber"};
  }
  by_imsi_[imsi] = ip;
  by_ip_[ip] = imsi;
  // Never hand this host part out as "fresh" again.
  const std::uint32_t host = ip.addr - block_.base.addr;
  if (host >= next_fresh_) next_fresh_ = host + 1;
  return common::Status::Ok();
}

std::optional<common::Ipv4> Mobilityd::lookup(const common::Imsi& imsi) const {
  auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) return std::nullopt;
  return it->second;
}

std::optional<common::Imsi> Mobilityd::reverse_lookup(common::Ipv4 ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

}  // namespace magma::agw
