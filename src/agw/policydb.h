// policydb — named policy storage on the AGW (cache of orchestrator config).
//
// Subscribers reference policies by name (config state, §3.4); the AGW
// resolves the name at session establishment. Like the subscriber cache,
// this is replaceable wholesale by desired-state sync.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "rpc/wire.h"

namespace magma::agw {

class PolicyDb {
 public:
  PolicyDb() { upsert(core::unlimited_policy()); }

  void upsert(core::Policy policy) {
    policies_[policy.name] = std::move(policy);
  }
  void remove(const std::string& name) { policies_.erase(name); }

  std::optional<core::Policy> get(const std::string& name) const {
    auto it = policies_.find(name);
    if (it == policies_.end()) return std::nullopt;
    return it->second;
  }
  // Resolve with fallback: unknown names get the unlimited default, so a
  // missing config push degrades to service-without-policy rather than an
  // outage (availability over consistency, §3.2).
  core::Policy resolve(const std::string& name) const {
    if (auto p = get(name)) return *p;
    return core::unlimited_policy();
  }

  std::size_t size() const { return policies_.size(); }

  void replace_all(const std::vector<core::Policy>& policies) {
    policies_.clear();
    upsert(core::unlimited_policy());
    for (const core::Policy& p : policies) upsert(p);
  }

  common::Bytes snapshot() const {
    rpc::Writer w;
    w.u64(policies_.size());
    for (const auto& [_, policy] : policies_) w.bytes(policy.serialize());
    return std::move(w).take();
  }

  common::Status restore(common::BytesView image) {
    rpc::Reader r(image);
    const std::uint64_t count = r.u64();
    std::map<std::string, core::Policy> next;
    for (std::uint64_t i = 0; i < count; ++i) {
      auto policy = core::Policy::deserialize(r.bytes());
      if (!policy.ok()) return policy.error();
      next[policy.value().name] = std::move(policy).take();
    }
    if (!r.ok()) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "corrupt policydb image"};
    }
    policies_ = std::move(next);
    return common::Status::Ok();
  }

 private:
  std::map<std::string, core::Policy> policies_;
};

}  // namespace magma::agw
