#include "agw/wifi_frontend.h"

#include "common/log.h"

namespace magma::agw {

namespace wifi = magma::proto::wifi;

WifiFrontend::WifiFrontend(sim::Kernel& kernel, Accessd& accessd,
                           Sessiond& sessiond)
    : kernel_(kernel), accessd_(accessd), sessiond_(sessiond) {}

void WifiFrontend::add_ap_channel(net::Channel& channel) {
  auto conn = std::make_unique<ApConn>();
  conn->channel = &channel;
  ApConn* raw = conn.get();
  channel.set_receiver(
      [this, raw](common::Bytes bytes) { on_message(*raw, std::move(bytes)); });
  conns_.push_back(std::move(conn));
}

void WifiFrontend::send(ApConn& conn, const wifi::RadiusPacket& packet) {
  conn.channel->send(wifi::encode_radius(packet));
}

void WifiFrontend::send_reject(ApConn& conn, std::uint8_t identifier,
                               const std::string& user) {
  ++stats_.rejects;
  wifi::RadiusPacket reject;
  reject.code = wifi::RadiusCode::kAccessReject;
  reject.identifier = identifier;
  reject.attributes.user_name = user;
  send(conn, reject);
}

void WifiFrontend::on_message(ApConn& conn, common::Bytes raw) {
  auto packet = wifi::decode_radius(raw);
  if (!packet.ok()) {
    ++stats_.decode_errors;
    return;
  }
  handle(conn, packet.value());
}

void WifiFrontend::handle(ApConn& conn, const wifi::RadiusPacket& packet) {
  ApConn* conn_ptr = &conn;

  if (packet.code == wifi::RadiusCode::kAccessRequest) {
    ++stats_.access_requests;
    if (!packet.attributes.user_name.has_value()) {
      ++stats_.decode_errors;
      return;
    }
    const common::Imsi imsi{*packet.attributes.user_name};
    const std::uint8_t id = packet.identifier;

    if (!packet.attributes.chap_password.has_value()) {
      // Phase 1: no credentials yet — issue a CHAP challenge.
      accessd_.begin_attach(
          imsi, RanType::kWifi,
          [this, conn_ptr, id,
           imsi](common::Result<AuthChallenge> challenge) {
            if (!challenge.ok()) {
              send_reject(*conn_ptr, id, imsi.value);
              return;
            }
            wifi::RadiusPacket reply;
            reply.code = wifi::RadiusCode::kAccessChallenge;
            reply.identifier = id;
            reply.attributes.user_name = imsi.value;
            reply.attributes.chap_challenge = common::Bytes(
                challenge.value().rand.begin(), challenge.value().rand.end());
            ++stats_.challenges_sent;
            send(*conn_ptr, reply);
          });
      return;
    }

    // Phase 2: challenge response.
    const common::Bytes& digest = *packet.attributes.chap_password;
    accessd_.verify_auth(
        imsi, digest,
        [this, conn_ptr, id, imsi](common::Result<SecurityKeys> keys) {
          if (!keys.ok()) {
            send_reject(*conn_ptr, id, imsi.value);
            return;
          }
          // WiFi has no separate security-mode leg; establish immediately.
          Accessd::EstablishRequest req;
          req.imsi = imsi;
          accessd_.establish(
              req, [this, conn_ptr, id,
                    imsi](common::Result<SessionInfo> info) {
                if (!info.ok()) {
                  send_reject(*conn_ptr, id, imsi.value);
                  return;
                }
                wifi::RadiusPacket accept;
                accept.code = wifi::RadiusCode::kAccessAccept;
                accept.identifier = id;
                accept.attributes.user_name = imsi.value;
                accept.attributes.framed_ip = info.value().ue_ip;
                ++stats_.accepts;
                send(*conn_ptr, accept);
              });
        });
    return;
  }

  if (packet.code == wifi::RadiusCode::kAccountingRequest) {
    if (!packet.attributes.user_name.has_value() ||
        !packet.attributes.acct_status.has_value()) {
      ++stats_.decode_errors;
      return;
    }
    const common::Imsi imsi{*packet.attributes.user_name};
    const std::uint8_t id = packet.identifier;

    wifi::RadiusPacket response;
    response.code = wifi::RadiusCode::kAccountingResponse;
    response.identifier = id;
    response.attributes.user_name = imsi.value;
    response.attributes.acct_session_id = packet.attributes.acct_session_id;

    switch (*packet.attributes.acct_status) {
      case wifi::AcctStatus::kStart:
        ++stats_.acct_starts;
        send(conn, response);
        break;
      case wifi::AcctStatus::kInterimUpdate:
        ++stats_.acct_interims;
        send(conn, response);
        break;
      case wifi::AcctStatus::kStop:
        accessd_.detach(imsi, [this, conn_ptr,
                               response](common::Status status) {
          (void)status;
          ++stats_.acct_stops;
          send(*conn_ptr, response);
        });
        break;
    }
    return;
  }
}

}  // namespace magma::agw
