// pipelined — Data Plane Configuration (Table 1): translates session-level
// intent into flow rules and meters in the software datapath.
//
// §3.5: "The 'data plane configuration' box generates the commands
// necessary to program the data plane with a set of rules to handle the
// flows of current sessions. Currently, those commands are OpenFlow
// commands. If OVS were replaced with a different forwarding engine, only
// the 'data plane configuration' component would be affected." — This class
// is that box: everything above it speaks SessionFlows; everything below is
// datapath::Pipeline specifics.
//
// It supports both a CRUD interface (install/remove one session) and the
// desired-state interface (§3.4: "the set of sessions is now X, Y, Z"),
// which reconciles the full session set idempotently. The state-sync
// ablation bench drives both over a lossy channel.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "datapath/pipeline.h"
#include "obs/status.h"

namespace magma::agw {

// Everything the data plane needs to know about one active session.
struct SessionFlows {
  std::uint64_t cookie = 0;  // session identity (rule owner tag)
  common::Ipv4 ue_ip;
  // LTE/5G sessions are GTP-tunneled toward the RAN; WiFi sessions are
  // plain IP (the AP bridges the client) — the "WiFi data plane" row of
  // Table 1 realized in the same pipeline.
  bool tunneled = true;
  common::Teid agw_teid_ul;   // uplink tunnel terminating at this AGW
  common::Teid enb_teid_dl;   // downlink tunnel endpoint at the eNodeB
  common::Ipv4 enb_address;
  std::uint64_t dl_rate_bps = 0;  // 0 = unlimited
  std::uint64_t ul_rate_bps = 0;
  bool blocked = false;  // hard-block (cap exhausted / quota denied)
  // ECM-IDLE: the UE has no radio connection. Downlink for its address is
  // routed to the AGW-local port, which triggers paging; there is no
  // uplink. The session (and its usage accounting) survives.
  bool idle = false;

  // Federation, home-routing mode (§3.6): uplink is re-tunneled to the GTP
  // aggregator instead of breaking out locally; downlink arrives
  // GTP-encapsulated from it on home_teid_local.
  bool home_routed = false;
  common::Teid home_teid_remote;  // tunnel id at the GTP-A for our uplink
  common::Ipv4 home_agg_address;  // GTP-A address
  common::Teid home_teid_local;   // our tunnel id for downlink from GTP-A

  bool operator==(const SessionFlows&) const = default;
  common::Bytes serialize() const;
  static common::Result<SessionFlows> deserialize(common::BytesView data);
};

struct PipelinedStats {
  std::uint64_t sessions_installed = 0;
  std::uint64_t sessions_removed = 0;
  std::uint64_t reconciliations = 0;
};

class Pipelined {
 public:
  Pipelined();

  datapath::Pipeline& pipeline() { return pipeline_; }
  const datapath::Pipeline& pipeline() const { return pipeline_; }

  // CRUD interface.
  common::Status install_session(const SessionFlows& flows,
                                 sim::TimePoint now);
  common::Status remove_session(std::uint64_t cookie);
  bool has_session(std::uint64_t cookie) const;
  std::size_t session_count() const { return sessions_.size(); }
  std::vector<std::uint64_t> installed_cookies() const;

  // Desired-state interface: after this call the installed session set is
  // exactly `sessions`. Unchanged sessions keep their counters and meter
  // fill levels (reinstalling them would reset usage accounting).
  void set_desired_sessions(const std::vector<SessionFlows>& sessions,
                            sim::TimePoint now);

  // Per-session user-plane usage: bytes/packets delivered past policy
  // enforcement (exactly once per packet, unlike a sum over all tables).
  datapath::FlowCounters session_usage(std::uint64_t cookie) const;

  const PipelinedStats& stats() const { return stats_; }

  // Service303 handle (optional): rule CRUD and reconciliations count
  // requests and errors.
  void set_status(obs::Service303* status) { status_ = status; }

  // High bit marks auxiliary (block) rules owned by a session but excluded
  // from its usage counters.
  static constexpr std::uint64_t kBlockCookieFlag = 1ull << 63;

 private:
  static std::uint32_t dl_meter_id(std::uint64_t cookie) {
    return static_cast<std::uint32_t>(cookie * 2);
  }
  static std::uint32_t ul_meter_id(std::uint64_t cookie) {
    return static_cast<std::uint32_t>(cookie * 2 + 1);
  }

  datapath::Pipeline pipeline_;
  std::unordered_map<std::uint64_t, SessionFlows> sessions_;
  PipelinedStats stats_;
  obs::Service303* status_ = nullptr;
};

}  // namespace magma::agw
