// LTE front-end: terminates S1AP + NAS from eNodeBs (Figure 4, left side).
//
// This is the radio-specific module for 4G: it speaks TS 36.413/24.301
// toward the RAN, and the generic Accessd/Sessiond interfaces toward the
// rest of the AGW. Everything 3GPP-shaped about LTE — the attach state
// machine legs, NAS integrity MACs, S1AP id pairs, the ModifyBearer-style
// TEID update after InitialContextSetup — lives here and leaks no further
// (§3.1: control protocols "are terminated early in technology-specific
// modules close to the radio").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "agw/accessd.h"
#include "common/ids.h"
#include "crypto/kdf.h"
#include "net/channel.h"
#include "obs/events.h"
#include "obs/trace.h"
#include "proto/lte/nas.h"
#include "proto/lte/s1ap.h"
#include "sim/kernel.h"

namespace magma::agw {

struct LteFrontendStats {
  std::uint64_t s1_setups = 0;
  std::uint64_t initial_ue_messages = 0;
  std::uint64_t auth_requests_sent = 0;
  std::uint64_t auth_resyncs = 0;
  std::uint64_t smc_sent = 0;
  std::uint64_t attach_accepts = 0;
  std::uint64_t attach_rejects = 0;
  std::uint64_t attach_completes = 0;
  std::uint64_t detaches = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t idle_transitions = 0;
  std::uint64_t pages_sent = 0;
  std::uint64_t service_requests = 0;
  std::uint64_t service_accepts = 0;
  std::uint64_t path_switches = 0;
};

class LteFrontend {
 public:
  LteFrontend(sim::Kernel& kernel, Accessd& accessd, Sessiond& sessiond,
              common::Ipv4 agw_address, std::string mme_name = "magma-mme");

  // Attach one eNodeB's S1 connection. The frontend takes the receive side
  // of the channel; responses flow back over the same channel.
  void add_enb_channel(net::Channel& channel);

  // Page an ECM-IDLE UE (downlink pending at the data plane). Broadcast on
  // every S1 connection, rate-limited per IMSI.
  void page(const common::Imsi& imsi);

  // Tracing + events (optional): each attach procedure gets a root span
  // covering InitialUeMessage → AttachComplete; outcomes are recorded as
  // structured events in `events` (shipped to the orchestrator by magmad).
  void set_observability(obs::Tracer* tracer, std::string node,
                         obs::EventBuffer* events = nullptr);

  const LteFrontendStats& stats() const { return stats_; }

 private:
  struct EnbConn {
    net::Channel* channel = nullptr;
    common::RanNodeId enb_id;
    bool setup_done = false;
    std::unordered_map<std::uint32_t, std::uint32_t> enb_to_mme;  // ue ids
  };

  struct UeCtx {
    common::Imsi imsi;
    EnbConn* conn = nullptr;
    std::uint32_t enb_ue_id = 0;
    std::uint32_t mme_ue_id = 0;
    crypto::Key256 kasme{};
    crypto::Key256 k_nas_int{};
    bool security_active = false;
    bool idle = false;  // ECM-IDLE: context kept, no radio association
    std::uint32_t dl_count = 0;
    std::uint32_t ul_count = 0;
    // NAS ciphering (EEA2-style) starts once security is active; separate
    // per-direction counters keyed to ciphered messages only. The
    // SecurityModeComplete itself is sent unciphered in this model (it
    // activates ciphering on both sides).
    crypto::Key256 k_nas_enc{};
    std::uint32_t dl_cipher_count = 0;
    std::uint32_t ul_cipher_count = 0;
    std::uint32_t m_tmsi = 0;
    // Root span of the in-flight attach procedure (invalid once closed).
    obs::TraceContext trace{};
    // When the attach last went quiet waiting for the UE (a downlink NAS
    // that needs an uplink answer is in flight); -1 when not waiting. The
    // gap to the next uplink is charged to the root span as link transit —
    // the radio-leg round trips that are otherwise invisible to the AGW.
    sim::TimePoint awaiting_ue_since = -1;
  };

  void on_message(EnbConn& conn, common::Bytes raw);
  void handle(EnbConn& conn, proto::lte::S1apMessage msg);
  void handle_nas(UeCtx& ue, const proto::lte::NasMessage& nas);
  void handle_service_request(EnbConn& conn, std::uint32_t enb_ue_id,
                              const proto::lte::ServiceRequest& sr);
  void send(EnbConn& conn, const proto::lte::S1apMessage& msg);
  void send_nas(UeCtx& ue, const proto::lte::NasMessage& nas);
  void reject(UeCtx& ue, proto::lte::EmmCause cause);
  void release_ue(UeCtx& ue, const std::string& cause);
  UeCtx* find_by_mme_id(std::uint32_t mme_ue_id);
  // Close the attach root span with `outcome`, emit an event of `type`,
  // and invalidate ue.trace. No-op if no attach trace is open.
  void finish_attach_trace(UeCtx& ue, const char* outcome, const char* type,
                           const std::string& detail);

  // NAS integrity: MAC computed over the message with its mac field zeroed.
  std::uint32_t compute_mac(const UeCtx& ue, std::uint32_t count,
                            proto::lte::NasMessage msg) const;
  // Apply NAS ciphering to an outgoing (downlink) pdu if security is
  // active; consumes one downlink cipher count.
  common::Bytes protect_downlink(UeCtx& ue, common::Bytes pdu);

  sim::Kernel& kernel_;
  Accessd& accessd_;
  Sessiond& sessiond_;
  common::Ipv4 agw_address_;
  std::string mme_name_;

  std::vector<std::unique_ptr<EnbConn>> conns_;
  std::unordered_map<std::uint32_t, UeCtx> ues_;  // by mme_ue_id
  std::unordered_map<common::Imsi, std::uint32_t> imsi_to_mme_id_;
  std::unordered_map<std::uint32_t, std::uint32_t> tmsi_to_mme_id_;
  std::unordered_map<common::Imsi, sim::TimePoint> last_page_;
  std::uint32_t next_mme_ue_id_ = 1;
  std::uint32_t next_m_tmsi_ = 0x1000;
  LteFrontendStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::string node_;
  obs::EventBuffer* events_ = nullptr;
};

}  // namespace magma::agw
