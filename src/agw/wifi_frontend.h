// WiFi front-end: terminates RADIUS from access points.
//
// Table 1 maps WiFi's access control, subscriber management, and session
// management all onto "RADIUS AAA"; this module converts that dialect into
// the same generic Accessd calls the cellular front-ends use. CHAP-style
// challenge/response authentication runs against the subscriber row's WiFi
// credential; sessions are installed untunneled (plain IP from the AP).
// This is the path behind the paper's "carrier WiFi" and AccessParks-style
// deployments (§4.3.1, Figure 10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agw/accessd.h"
#include "common/ids.h"
#include "net/channel.h"
#include "proto/wifi/radius.h"
#include "sim/kernel.h"

namespace magma::agw {

struct WifiFrontendStats {
  std::uint64_t access_requests = 0;
  std::uint64_t challenges_sent = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t acct_starts = 0;
  std::uint64_t acct_stops = 0;
  std::uint64_t acct_interims = 0;
  std::uint64_t decode_errors = 0;
};

class WifiFrontend {
 public:
  WifiFrontend(sim::Kernel& kernel, Accessd& accessd, Sessiond& sessiond);

  void add_ap_channel(net::Channel& channel);

  const WifiFrontendStats& stats() const { return stats_; }

 private:
  struct ApConn {
    net::Channel* channel = nullptr;
  };

  void on_message(ApConn& conn, common::Bytes raw);
  void handle(ApConn& conn, const proto::wifi::RadiusPacket& packet);
  void send(ApConn& conn, const proto::wifi::RadiusPacket& packet);
  void send_reject(ApConn& conn, std::uint8_t identifier,
                   const std::string& user);

  sim::Kernel& kernel_;
  Accessd& accessd_;
  Sessiond& sessiond_;
  std::vector<std::unique_ptr<ApConn>> conns_;
  WifiFrontendStats stats_;
};

}  // namespace magma::agw
