// AccessGateway — one Magma AGW: the paper's unit of deployment, scaling,
// and failure (§3).
//
// Composes the generic services (subscriberdb, policydb, mobilityd,
// sessiond, pipelined, accessd, magmad) with the three radio-specific
// front-ends and a modeled CPU, on top of the simulation kernel. Provides:
//
//   * the user-plane entry points (ingress from RAN / from Internet) that
//     charge CPU and run the datapath pipeline — Figures 5/7;
//   * hardware profiles matching the paper's two test AGWs (bare-metal
//     Intel J3160 and the Xeon 6126 VM with a configurable vCPU count and
//     optional static user-plane core pinning) — Figures 6/7/8;
//   * whole-gateway checkpoint/restore, the small-fault-domain story of
//     §3.3 (a backup instance resumes from the shipped image);
//   * telemetry for magmad to report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agw/accessd.h"
#include "agw/lte_frontend.h"
#include "agw/magmad.h"
#include "agw/mobilityd.h"
#include "agw/nr_frontend.h"
#include "agw/pipelined.h"
#include "agw/policydb.h"
#include "agw/sessiond.h"
#include "agw/subscriberdb.h"
#include "agw/wifi_frontend.h"
#include "net/channel.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/sketch/subscriber_sketches.h"
#include "obs/status.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "sim/link.h"
#include "rpc/rpc.h"
#include "sim/cpu.h"
#include "sim/kernel.h"
#include "sim/random.h"

namespace magma::agw {

struct AgwProfile {
  std::string name = "agw";
  sim::CpuConfig cpu;
  AccessdConfig accessd;
  IpBlock ip_block;
  common::Ipv4 address = common::Ipv4::from_octets(10, 0, 0, 1);
  // User-plane CPU cost per forwarded packet, in reference-GHz-seconds.
  // Calibrated in DESIGN.md so the Xeon VM forwards ~600 Mbps/core.
  double user_cost_per_packet = 4.85e-5;
  // Pending user-plane batches beyond this are dropped (overload).
  std::size_t user_queue_max = 65536;
};

// The two AGWs of §4.1: a bare-metal Intel J3160 (4 cores, 1.6 GHz, single
// MME worker) ...
AgwProfile bare_metal_j3160();
// ... and a virtual AGW on a Xeon 6126 (2.6 GHz). `user_plane_cores` pins
// that many vCPUs to the user plane (-1 = flexible kernel scheduling, the
// paper's recommended configuration).
AgwProfile virtual_xeon(int vcpus, int user_plane_cores = -1);

struct UserPlaneStats {
  std::uint64_t offered_batches = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t forwarded_packets = 0;
  std::uint64_t dropped_overload_bytes = 0;  // CPU queue full
};

class AccessGateway {
 public:
  AccessGateway(sim::Kernel& kernel, common::GatewayId id, AgwProfile profile,
                sim::Rng rng);
  ~AccessGateway();
  AccessGateway(const AccessGateway&) = delete;
  AccessGateway& operator=(const AccessGateway&) = delete;

  // --- wiring -------------------------------------------------------------
  // Give the AGW its control channel to the orchestrator (magmad's RPC
  // client rides on it). Call magmad().start() to begin the periodic loops.
  // `magmad_config` tunes the periodic cadences (checkin interval must
  // match what the orchestrator's statusd expects).
  void connect_orchestrator(net::Channel& channel,
                            MagmadConfig magmad_config = {});
  // Give sessiond its OCS channel (volume billing deployments only).
  void connect_ocs(net::Channel& channel);
  // Attach the (network-wide) tracer: instruments every service on this
  // gateway and starts aggregating per-stage attach latency histograms.
  // Also starts the gateway's TailSampler (keep-K-slowest traces per root
  // op per window; see obs/tail_sampler.h), whose closed-window summaries
  // magmad ships to metricsd. Call before or after connect_orchestrator —
  // both orders work.
  void set_tracer(obs::Tracer* tracer);
  // Tune the TailSampler (takes effect at the next set_tracer call; call
  // before set_tracer for a fresh gateway).
  void set_tail_sampler_config(obs::TailSamplerConfig config) {
    tail_config_ = config;
  }
  // Point telemetry at the backhaul's two directions (non-owning; typically
  // wired by core::Network). Adds link_queue_depth / link drop gauges to
  // the metrics snapshot.
  void set_backhaul_telemetry(const sim::Link* uplink,
                              const sim::Link* downlink) {
    backhaul_ul_ = uplink;
    backhaul_dl_ = downlink;
  }

  // --- user plane ----------------------------------------------------------
  // Uplink traffic arriving from the RAN side (GTP-encapsulated for LTE/5G,
  // plain for WiFi) and downlink traffic arriving from the Internet (SGi).
  void ingress_from_ran(datapath::PacketBatch batch);
  void ingress_from_internet(datapath::PacketBatch batch);
  // Egress delivery: out_port is datapath::kPortRan / kPortSgi / kPortLocal.
  using EgressHandler =
      std::function<void(std::uint32_t out_port, datapath::PacketBatch)>;
  void set_egress(EgressHandler handler) { egress_ = std::move(handler); }

  // --- fault tolerance ------------------------------------------------------
  // Serialized runtime+cached-config image (§3.3). restore() brings this
  // (fresh) instance up from another instance's checkpoint.
  common::Bytes checkpoint() const;
  common::Status restore(common::BytesView image);

  // --- telemetry -------------------------------------------------------------
  std::vector<orc8r::MetricSample> telemetry_snapshot();
  // Cumulative per-stage latency histograms ("span_<service>_<name>_s"),
  // ready for magmad to ship to metricsd.
  std::vector<orc8r::HistogramSnapshot> histogram_snapshot() const;
  // Structured events awaiting shipment (attach outcomes, WARN/ERROR logs).
  obs::EventBuffer& events() { return events_; }
  obs::Tracer* tracer() { return tracer_; }
  // Null until set_tracer installs one.
  obs::TailSampler* tail_sampler() { return tail_sampler_.get(); }

  // Service303 registry: every service on this gateway registers at
  // construction; magmad ships snapshot() inside each checkin.
  obs::StatusRegistry& status() { return status_; }
  const obs::StatusRegistry& status() const { return status_; }

  // Per-subscriber heavy-hitter sketches (attach failures, bearer drops,
  // quota rejections, bytes) + distinct-active HLL. Fed by
  // accessd/sessiond/pipelined; magmad ships a cumulative snapshot with
  // each metrics tick. O(K + 2^p) however many subscribers attach.
  obs::sketch::SubscriberSketches& subscriber_sketches() {
    return subscriber_sketches_;
  }
  const obs::sketch::SubscriberSketches& subscriber_sketches() const {
    return subscriber_sketches_;
  }

  // --- component access -------------------------------------------------------
  const common::GatewayId& id() const { return id_; }
  const AgwProfile& profile() const { return profile_; }
  sim::Kernel& kernel() { return kernel_; }
  sim::CpuModel& cpu() { return cpu_; }
  SubscriberDb& subscriberdb() { return subscriberdb_; }
  PolicyDb& policydb() { return policydb_; }
  Mobilityd& mobilityd() { return mobilityd_; }
  Pipelined& pipelined() { return pipelined_; }
  Sessiond& sessiond() { return *sessiond_; }
  Accessd& accessd() { return *accessd_; }
  Magmad& magmad() { return *magmad_; }
  LteFrontend& lte() { return *lte_frontend_; }
  NrFrontend& nr() { return *nr_frontend_; }
  WifiFrontend& wifi() { return *wifi_frontend_; }
  const UserPlaneStats& user_plane_stats() const { return up_stats_; }

 private:
  void ingress(datapath::PacketBatch batch, datapath::Direction dir);
  void start_service_loops();

  sim::Kernel& kernel_;
  common::GatewayId id_;
  AgwProfile profile_;
  sim::Rng rng_;
  sim::CpuModel cpu_;

  obs::StatusRegistry status_{kernel_};
  // Per-service Service303 handles (owned by status_; stable addresses).
  obs::Service303* svc_subscriberdb_ = nullptr;
  obs::Service303* svc_mobilityd_ = nullptr;
  obs::Service303* svc_pipelined_ = nullptr;
  obs::Service303* svc_sessiond_ = nullptr;
  obs::Service303* svc_accessd_ = nullptr;
  obs::Service303* svc_magmad_ = nullptr;
  // User-plane profiler labels (pipelined/forward_ul, pipelined/forward_dl).
  sim::LabelId label_forward_[2] = {sim::kUnattributed, sim::kUnattributed};

  SubscriberDb subscriberdb_;
  PolicyDb policydb_;
  Mobilityd mobilityd_;
  Pipelined pipelined_;
  std::unique_ptr<rpc::RpcNode> ocs_node_;
  std::unique_ptr<Sessiond> sessiond_;
  std::unique_ptr<Accessd> accessd_;
  std::unique_ptr<rpc::RpcNode> orc8r_node_;
  // Non-owning view of the control channel's transport stats (set when the
  // orchestrator channel is reliable); feeds telemetry_snapshot().
  net::ReliableChannel* control_transport_ = nullptr;
  std::unique_ptr<Magmad> magmad_;
  std::unique_ptr<LteFrontend> lte_frontend_;
  std::unique_ptr<NrFrontend> nr_frontend_;
  std::unique_ptr<WifiFrontend> wifi_frontend_;

  EgressHandler egress_;
  std::size_t user_queue_depth_ = 0;
  UserPlaneStats up_stats_;
  std::uint64_t last_reported_forwarded_bytes_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::TailSamplerConfig tail_config_;
  std::unique_ptr<obs::TailSampler> tail_sampler_;
  const sim::Link* backhaul_ul_ = nullptr;
  const sim::Link* backhaul_dl_ = nullptr;
  obs::EventBuffer events_{1024};
  obs::sketch::SubscriberSketches subscriber_sketches_;
  // Per-stage attach latency, keyed "span_<service>_<name>_s". std::map:
  // snapshots ship in deterministic order.
  std::map<std::string, obs::Histogram> latency_hist_;
  std::uint64_t finish_hook_id_ = 0;
  std::uint64_t log_hook_id_ = 0;
};

}  // namespace magma::agw
