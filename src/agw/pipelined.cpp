#include "agw/pipelined.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::agw {

namespace dp = magma::datapath;

common::Bytes SessionFlows::serialize() const {
  rpc::Writer w;
  w.u64(cookie);
  w.u32(ue_ip.addr);
  w.boolean(tunneled);
  w.u32(agw_teid_ul.value);
  w.u32(enb_teid_dl.value);
  w.u32(enb_address.addr);
  w.u64(dl_rate_bps);
  w.u64(ul_rate_bps);
  w.boolean(blocked);
  w.boolean(idle);
  w.boolean(home_routed);
  w.u32(home_teid_remote.value);
  w.u32(home_agg_address.addr);
  w.u32(home_teid_local.value);
  return std::move(w).take();
}

common::Result<SessionFlows> SessionFlows::deserialize(
    common::BytesView data) {
  rpc::Reader r(data);
  SessionFlows f;
  f.cookie = r.u64();
  f.ue_ip.addr = r.u32();
  f.tunneled = r.boolean();
  f.agw_teid_ul.value = r.u32();
  f.enb_teid_dl.value = r.u32();
  f.enb_address.addr = r.u32();
  f.dl_rate_bps = r.u64();
  f.ul_rate_bps = r.u64();
  f.blocked = r.boolean();
  f.idle = r.boolean();
  f.home_routed = r.boolean();
  f.home_teid_remote.value = r.u32();
  f.home_agg_address.addr = r.u32();
  f.home_teid_local.value = r.u32();
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt SessionFlows"};
  }
  return f;
}

Pipelined::Pipelined() = default;

common::Status Pipelined::install_session(const SessionFlows& flows,
                                          sim::TimePoint now) {
  obs::svc_request(status_);
  if (auto it = sessions_.find(flows.cookie); it != sessions_.end()) {
    if (it->second == flows) return common::Status::Ok();  // idempotent
    // Changed spec: reinstall below.
    remove_session(flows.cookie).ok();
  }

  const dp::IpPrefix ue_host{flows.ue_ip, 32};

  // Table 0 — classify. LTE/5G uplink arrives GTP-encapsulated from the
  // RAN; WiFi uplink is plain IP from the AP. An idle session has no radio
  // connection, hence no uplink rules at all.
  if (!flows.idle) {
    dp::FlowEntry ul;
    ul.priority = 10;
    ul.cookie = flows.cookie;
    ul.match.direction = dp::Direction::kUplink;
    if (flows.tunneled) {
      ul.match.tunnel_id = flows.agw_teid_ul;
      ul.actions = {dp::Action::pop_gtpu(),
                    dp::Action::goto_table(dp::kTableEnforce)};
    } else {
      ul.match.ip_src = ue_host;
      ul.actions = {dp::Action::goto_table(dp::kTableEnforce)};
    }
    pipeline_.table(dp::kTableClassify).add(std::move(ul));
  }
  {

    dp::FlowEntry dl;
    dl.priority = 10;
    dl.cookie = flows.cookie;
    dl.match.direction = dp::Direction::kDownlink;
    if (flows.home_routed) {
      // Downlink arrives tunneled from the GTP aggregator.
      dl.match.tunnel_id = flows.home_teid_local;
      dl.actions = {dp::Action::pop_gtpu(),
                    dp::Action::goto_table(dp::kTableEnforce)};
    } else {
      dl.match.ip_dst = ue_host;
      dl.actions = {dp::Action::goto_table(dp::kTableEnforce)};
    }
    pipeline_.table(dp::kTableClassify).add(std::move(dl));
  }

  // Table 1 — enforcement: meters (or hard block). Block rules carry a
  // flagged cookie so their hit counters do not pollute usage accounting
  // (blocked traffic is not usage).
  if (flows.blocked) {
    dp::FlowEntry block;
    block.priority = 20;  // above the metered rules
    block.cookie = flows.cookie | kBlockCookieFlag;
    // One rule per direction so the match is unambiguous.
    dp::FlowEntry block_dl = block;
    block_dl.match.direction = dp::Direction::kDownlink;
    block_dl.match.ip_dst = ue_host;
    block_dl.actions = {dp::Action::drop()};
    pipeline_.table(dp::kTableEnforce).add(std::move(block_dl));

    dp::FlowEntry block_ul = block;
    block_ul.match.direction = dp::Direction::kUplink;
    block_ul.match.ip_src = ue_host;
    block_ul.actions = {dp::Action::drop()};
    pipeline_.table(dp::kTableEnforce).add(std::move(block_ul));
  }
  {
    if (flows.dl_rate_bps > 0) {
      pipeline_.meters().install(
          dl_meter_id(flows.cookie),
          dp::MeterConfig{static_cast<double>(flows.dl_rate_bps),
                          std::max<std::uint64_t>(flows.dl_rate_bps / 8 / 4,
                                                  64 * 1024)},
          now);
    }
    if (flows.ul_rate_bps > 0) {
      pipeline_.meters().install(
          ul_meter_id(flows.cookie),
          dp::MeterConfig{static_cast<double>(flows.ul_rate_bps),
                          std::max<std::uint64_t>(flows.ul_rate_bps / 8 / 4,
                                                  64 * 1024)},
          now);
    }

    dp::FlowEntry dl;
    dl.priority = 10;
    dl.cookie = flows.cookie;
    dl.match.direction = dp::Direction::kDownlink;
    dl.match.ip_dst = ue_host;
    if (flows.dl_rate_bps > 0) {
      dl.actions.push_back(dp::Action::set_meter(dl_meter_id(flows.cookie)));
    }
    dl.actions.push_back(dp::Action::goto_table(dp::kTableEgress));
    pipeline_.table(dp::kTableEnforce).add(std::move(dl));

    if (!flows.idle) {
      dp::FlowEntry ul;
      ul.priority = 10;
      ul.cookie = flows.cookie;
      ul.match.direction = dp::Direction::kUplink;
      ul.match.ip_src = ue_host;
      if (flows.ul_rate_bps > 0) {
        ul.actions.push_back(
            dp::Action::set_meter(ul_meter_id(flows.cookie)));
      }
      ul.actions.push_back(dp::Action::goto_table(dp::kTableEgress));
      pipeline_.table(dp::kTableEnforce).add(std::move(ul));
    }
  }

  // Table 2 — egress.
  {
    if (!flows.idle) {
      dp::FlowEntry ul;
      ul.priority = 10;
      ul.cookie = flows.cookie;
      ul.match.direction = dp::Direction::kUplink;
      ul.match.ip_src = ue_host;
      if (flows.home_routed) {
        ul.actions = {dp::Action::push_gtpu(flows.home_teid_remote,
                                            flows.home_agg_address),
                      dp::Action::output(dp::kPortSgi)};
      } else {
        ul.actions = {dp::Action::output(dp::kPortSgi)};
      }
      pipeline_.table(dp::kTableEgress).add(std::move(ul));
    }

    dp::FlowEntry dl;
    dl.priority = 10;
    dl.cookie = flows.cookie;
    dl.match.direction = dp::Direction::kDownlink;
    dl.match.ip_dst = ue_host;
    if (flows.idle) {
      // No radio path: deliver to the local port, which triggers paging.
      // Flagged cookie: paging triggers are not subscriber usage.
      dl.cookie = flows.cookie | kBlockCookieFlag;
      dl.actions = {dp::Action::output(dp::kPortLocal)};
    } else if (flows.tunneled) {
      dl.actions = {
          dp::Action::push_gtpu(flows.enb_teid_dl, flows.enb_address),
          dp::Action::output(dp::kPortRan)};
    } else {
      dl.actions = {dp::Action::output(dp::kPortRan)};
    }
    pipeline_.table(dp::kTableEgress).add(std::move(dl));
  }

  sessions_[flows.cookie] = flows;
  ++stats_.sessions_installed;
  return common::Status::Ok();
}

common::Status Pipelined::remove_session(std::uint64_t cookie) {
  obs::svc_request(status_);
  auto it = sessions_.find(cookie);
  if (it == sessions_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no such session"};
  }
  pipeline_.remove_session_rules(cookie);
  pipeline_.remove_session_rules(cookie | kBlockCookieFlag);
  pipeline_.meters().remove(dl_meter_id(cookie));
  pipeline_.meters().remove(ul_meter_id(cookie));
  sessions_.erase(it);
  ++stats_.sessions_removed;
  return common::Status::Ok();
}

bool Pipelined::has_session(std::uint64_t cookie) const {
  return sessions_.contains(cookie);
}

std::vector<std::uint64_t> Pipelined::installed_cookies() const {
  std::vector<std::uint64_t> out;
  out.reserve(sessions_.size());
  for (const auto& [cookie, _] : sessions_) out.push_back(cookie);
  std::sort(out.begin(), out.end());
  return out;
}

void Pipelined::set_desired_sessions(
    const std::vector<SessionFlows>& sessions, sim::TimePoint now) {
  obs::svc_request(status_);
  ++stats_.reconciliations;
  // Remove sessions not in the desired set (or whose spec changed).
  std::unordered_map<std::uint64_t, const SessionFlows*> desired;
  for (const SessionFlows& f : sessions) desired[f.cookie] = &f;

  std::vector<std::uint64_t> to_remove;
  for (const auto& [cookie, current] : sessions_) {
    auto it = desired.find(cookie);
    if (it == desired.end() || !(*it->second == current)) {
      to_remove.push_back(cookie);
    }
  }
  for (std::uint64_t cookie : to_remove) remove_session(cookie).ok();

  // Install new/changed sessions; unchanged ones are untouched.
  for (const SessionFlows& f : sessions) {
    if (!sessions_.contains(f.cookie)) install_session(f, now).ok();
  }
}

datapath::FlowCounters Pipelined::session_usage(std::uint64_t cookie) const {
  // Egress-table counters: charged exactly once per *delivered* packet
  // (post-policing), on the inner (user) packet form.
  return pipeline_.table(dp::kTableEgress).counters_for_cookie(cookie);
}

}  // namespace magma::agw
