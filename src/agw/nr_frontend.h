// 5G front-end: terminates NGAP + 5G NAS from gNBs.
//
// Exercises the part of Figure 1 that differs from LTE: registration and
// session management are decoupled (AMF vs SMF), so the UE first registers
// (auth + security + RegistrationAccept) and only then requests a PDU
// session. Both legs drive the *same* generic Accessd/Sessiond services as
// the LTE front-end — the architectural claim of Table 1.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "agw/accessd.h"
#include "common/ids.h"
#include "crypto/kdf.h"
#include "net/channel.h"
#include "proto/nr5g/nas5g.h"
#include "proto/nr5g/ngap.h"
#include "sim/kernel.h"

namespace magma::agw {

struct NrFrontendStats {
  std::uint64_t ng_setups = 0;
  std::uint64_t registrations_started = 0;
  std::uint64_t registrations_accepted = 0;
  std::uint64_t registrations_rejected = 0;
  std::uint64_t pdu_sessions_established = 0;
  std::uint64_t pdu_sessions_rejected = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t decode_errors = 0;
};

class NrFrontend {
 public:
  NrFrontend(sim::Kernel& kernel, Accessd& accessd, Sessiond& sessiond,
             common::Ipv4 agw_address, std::string amf_name = "magma-amf");

  void add_gnb_channel(net::Channel& channel);

  const NrFrontendStats& stats() const { return stats_; }

 private:
  struct GnbConn {
    net::Channel* channel = nullptr;
    common::RanNodeId gnb_id;
    bool setup_done = false;
  };

  struct UeCtx {
    common::Imsi supi;
    GnbConn* conn = nullptr;
    std::uint32_t ran_ue_id = 0;
    std::uint32_t amf_ue_id = 0;
    crypto::Key256 kasme{};  // plays the role of KAMF
    crypto::Key256 k_nas_int{};
    bool registered = false;
    std::uint32_t dl_count = 0;
    std::uint32_t ul_count = 0;
  };

  void on_message(GnbConn& conn, common::Bytes raw);
  void handle(GnbConn& conn, proto::nr5g::NgapMessage msg);
  void handle_nas(UeCtx& ue, const proto::nr5g::Nas5gMessage& nas);
  void send(GnbConn& conn, const proto::nr5g::NgapMessage& msg);
  void send_nas(UeCtx& ue, const proto::nr5g::Nas5gMessage& nas);
  void reject_registration(UeCtx& ue, proto::nr5g::FgmmCause cause);
  void release_ue(UeCtx& ue, const std::string& cause);
  UeCtx* find_by_amf_id(std::uint32_t amf_ue_id);

  std::uint32_t compute_mac(const UeCtx& ue, std::uint32_t count,
                            proto::nr5g::Nas5gMessage msg) const;

  sim::Kernel& kernel_;
  Accessd& accessd_;
  Sessiond& sessiond_;
  common::Ipv4 agw_address_;
  std::string amf_name_;

  std::vector<std::unique_ptr<GnbConn>> conns_;
  std::unordered_map<std::uint32_t, UeCtx> ues_;  // by amf_ue_id
  std::unordered_map<common::Imsi, std::uint32_t> supi_to_amf_id_;
  std::uint32_t next_amf_ue_id_ = 1;
  std::uint32_t next_fg_tmsi_ = 0x5000;
  NrFrontendStats stats_;
};

}  // namespace magma::agw
