#include "agw/nr_frontend.h"

#include "common/log.h"

namespace magma::agw {

namespace nr = magma::proto::nr5g;

namespace {

nr::FgmmCause cause_from_error(const common::Error& error) {
  switch (error.code) {
    case common::ErrorCode::kPermissionDenied:
    case common::ErrorCode::kUnauthenticated:
    case common::ErrorCode::kNotFound:
      return nr::FgmmCause::kIllegalUe;
    case common::ErrorCode::kResourceExhausted:
      return nr::FgmmCause::kCongestion;
    default:
      return nr::FgmmCause::kNetworkFailure;
  }
}

nr::Nas5gMessage with_zero_mac(nr::Nas5gMessage msg) {
  if (auto* smc = std::get_if<nr::SecurityModeCommand5g>(&msg)) smc->mac = 0;
  if (auto* smk = std::get_if<nr::SecurityModeComplete5g>(&msg)) smk->mac = 0;
  if (auto* acc = std::get_if<nr::RegistrationAccept>(&msg)) acc->mac = 0;
  if (auto* cpl = std::get_if<nr::RegistrationComplete>(&msg)) cpl->mac = 0;
  return msg;
}

}  // namespace

NrFrontend::NrFrontend(sim::Kernel& kernel, Accessd& accessd,
                       Sessiond& sessiond, common::Ipv4 agw_address,
                       std::string amf_name)
    : kernel_(kernel),
      accessd_(accessd),
      sessiond_(sessiond),
      agw_address_(agw_address),
      amf_name_(std::move(amf_name)) {}

void NrFrontend::add_gnb_channel(net::Channel& channel) {
  auto conn = std::make_unique<GnbConn>();
  conn->channel = &channel;
  GnbConn* raw = conn.get();
  channel.set_receiver(
      [this, raw](common::Bytes bytes) { on_message(*raw, std::move(bytes)); });
  conns_.push_back(std::move(conn));
}

void NrFrontend::send(GnbConn& conn, const nr::NgapMessage& msg) {
  conn.channel->send(nr::encode_ngap(msg));
}

std::uint32_t NrFrontend::compute_mac(const UeCtx& ue, std::uint32_t count,
                                      nr::Nas5gMessage msg) const {
  return crypto::nas_mac(ue.k_nas_int, count,
                         nr::encode_nas5g(with_zero_mac(std::move(msg))));
}

void NrFrontend::send_nas(UeCtx& ue, const nr::Nas5gMessage& nas) {
  nr::DownlinkNasTransport5g transport;
  transport.ran_ue_ngap_id = ue.ran_ue_id;
  transport.amf_ue_ngap_id = ue.amf_ue_id;
  transport.nas_pdu = nr::encode_nas5g(nas);
  send(*ue.conn, nr::NgapMessage{std::move(transport)});
}

void NrFrontend::reject_registration(UeCtx& ue, nr::FgmmCause cause) {
  ++stats_.registrations_rejected;
  send_nas(ue, nr::Nas5gMessage{nr::RegistrationReject{cause}});
  release_ue(ue, "registration-reject");
}

void NrFrontend::release_ue(UeCtx& ue, const std::string& cause) {
  nr::UeContextReleaseCommand5g release;
  release.ran_ue_ngap_id = ue.ran_ue_id;
  release.amf_ue_ngap_id = ue.amf_ue_id;
  release.cause = cause;
  send(*ue.conn, nr::NgapMessage{std::move(release)});
  supi_to_amf_id_.erase(ue.supi);
  ues_.erase(ue.amf_ue_id);  // invalidates `ue`
}

NrFrontend::UeCtx* NrFrontend::find_by_amf_id(std::uint32_t amf_ue_id) {
  auto it = ues_.find(amf_ue_id);
  return it == ues_.end() ? nullptr : &it->second;
}

void NrFrontend::on_message(GnbConn& conn, common::Bytes raw) {
  auto msg = nr::decode_ngap(raw);
  if (!msg.ok()) {
    ++stats_.decode_errors;
    return;
  }
  handle(conn, std::move(msg).take());
}

void NrFrontend::handle(GnbConn& conn, nr::NgapMessage msg) {
  if (auto* setup = std::get_if<nr::NgSetupRequest>(&msg)) {
    conn.gnb_id = setup->gnb_id;
    conn.setup_done = true;
    ++stats_.ng_setups;
    send(conn, nr::NgapMessage{nr::NgSetupResponse{amf_name_}});
    return;
  }

  if (auto* initial = std::get_if<nr::InitialUeMessage5g>(&msg)) {
    auto nas = nr::decode_nas5g(initial->nas_pdu);
    if (!nas.ok()) {
      ++stats_.decode_errors;
      return;
    }
    const auto* reg = std::get_if<nr::RegistrationRequest>(&nas.value());
    if (reg == nullptr) {
      ++stats_.decode_errors;
      return;
    }
    ++stats_.registrations_started;

    if (auto it = supi_to_amf_id_.find(reg->supi);
        it != supi_to_amf_id_.end()) {
      ues_.erase(it->second);
      supi_to_amf_id_.erase(it);
    }

    const std::uint32_t amf_ue_id = next_amf_ue_id_++;
    UeCtx& ue = ues_[amf_ue_id];
    ue.supi = reg->supi;
    ue.conn = &conn;
    ue.ran_ue_id = initial->ran_ue_ngap_id;
    ue.amf_ue_id = amf_ue_id;
    supi_to_amf_id_[ue.supi] = amf_ue_id;

    accessd_.begin_attach(
        ue.supi, RanType::kNr5g,
        [this, amf_ue_id](common::Result<AuthChallenge> challenge) {
          UeCtx* ue = find_by_amf_id(amf_ue_id);
          if (ue == nullptr) return;
          if (!challenge.ok()) {
            reject_registration(*ue, cause_from_error(challenge.error()));
            return;
          }
          nr::AuthenticationRequest5g auth;
          auth.rand = challenge.value().rand;
          auth.autn = challenge.value().autn;
          send_nas(*ue, nr::Nas5gMessage{auth});
        });
    return;
  }

  if (auto* uplink = std::get_if<nr::UplinkNasTransport5g>(&msg)) {
    UeCtx* ue = find_by_amf_id(uplink->amf_ue_ngap_id);
    if (ue == nullptr) return;
    auto nas = nr::decode_nas5g(uplink->nas_pdu);
    if (!nas.ok()) {
      ++stats_.decode_errors;
      return;
    }
    handle_nas(*ue, nas.value());
    return;
  }

  if (auto* response = std::get_if<nr::PduSessionResourceSetupResponse>(&msg)) {
    UeCtx* ue = find_by_amf_id(response->amf_ue_ngap_id);
    if (ue == nullptr) return;
    sessiond_.update_bearer(ue->supi, response->gnb_teid_dl,
                            response->gnb_address)
        .ok();
    return;
  }
}

void NrFrontend::handle_nas(UeCtx& ue, const nr::Nas5gMessage& nas) {
  const std::uint32_t amf_ue_id = ue.amf_ue_id;

  if (const auto* auth = std::get_if<nr::AuthenticationResponse5g>(&nas)) {
    accessd_.verify_auth(
        ue.supi,
        common::BytesView(auth->res_star.data(), auth->res_star.size()),
        [this, amf_ue_id](common::Result<SecurityKeys> keys) {
          UeCtx* ue = find_by_amf_id(amf_ue_id);
          if (ue == nullptr) return;
          if (!keys.ok()) {
            reject_registration(*ue, cause_from_error(keys.error()));
            return;
          }
          ue->kasme = keys.value().kasme;
          ue->k_nas_int =
              crypto::derive_k_nas_int(ue->kasme, crypto::NasAlgorithm::kEia2);
          nr::SecurityModeCommand5g smc;
          smc.mac = compute_mac(*ue, ue->dl_count, nr::Nas5gMessage{smc});
          ++ue->dl_count;
          send_nas(*ue, nr::Nas5gMessage{smc});
        });
    return;
  }

  if (const auto* smc = std::get_if<nr::SecurityModeComplete5g>(&nas)) {
    const std::uint32_t expected =
        compute_mac(ue, ue.ul_count, nr::Nas5gMessage{*smc});
    if (expected != smc->mac) {
      ++stats_.bad_mac;
      reject_registration(ue, nr::FgmmCause::kIllegalUe);
      return;
    }
    ++ue.ul_count;

    // 5G: registration completes *without* a user-plane session.
    nr::RegistrationAccept accept;
    accept.fg_tmsi = next_fg_tmsi_++;
    accept.mac = compute_mac(ue, ue.dl_count, nr::Nas5gMessage{accept});
    ++ue.dl_count;
    ue.registered = true;
    ++stats_.registrations_accepted;
    send_nas(ue, nr::Nas5gMessage{accept});
    return;
  }

  if (std::get_if<nr::RegistrationComplete>(&nas) != nullptr) {
    return;  // registration done; the UE will request a PDU session next
  }

  if (const auto* pdu = std::get_if<nr::PduSessionEstablishmentRequest>(&nas)) {
    const std::uint8_t session_id = pdu->pdu_session_id;
    Accessd::EstablishRequest req;
    req.imsi = ue.supi;
    req.enb_teid_dl = common::Teid{0};  // arrives in the resource response
    req.enb_address = common::Ipv4{0};
    accessd_.establish(
        req,
        [this, amf_ue_id, session_id](common::Result<SessionInfo> info) {
          UeCtx* ue = find_by_amf_id(amf_ue_id);
          if (ue == nullptr) return;
          if (!info.ok()) {
            ++stats_.pdu_sessions_rejected;
            nr::PduSessionEstablishmentReject reject;
            reject.pdu_session_id = session_id;
            reject.cause = cause_from_error(info.error());
            send_nas(*ue, nr::Nas5gMessage{reject});
            return;
          }
          nr::PduSessionEstablishmentAccept accept;
          accept.pdu_session_id = session_id;
          accept.ue_address = info.value().ue_ip;
          accept.fiveqi = info.value().qci;
          accept.ambr_dl_bps = info.value().ambr_dl_bps;
          accept.ambr_ul_bps = info.value().ambr_ul_bps;

          nr::PduSessionResourceSetupRequest setup;
          setup.ran_ue_ngap_id = ue->ran_ue_id;
          setup.amf_ue_ngap_id = ue->amf_ue_id;
          setup.pdu_session_id = session_id;
          setup.agw_teid_ul = info.value().agw_teid_ul;
          setup.agw_address = agw_address_;
          setup.nas_pdu = nr::encode_nas5g(nr::Nas5gMessage{accept});
          ++stats_.pdu_sessions_established;
          send(*ue->conn, nr::NgapMessage{std::move(setup)});
        });
    return;
  }

  if (const auto* dereg = std::get_if<nr::DeregistrationRequest5g>(&nas)) {
    const bool switch_off = dereg->switch_off;
    accessd_.detach(ue.supi, [this, amf_ue_id,
                              switch_off](common::Status status) {
      (void)status;
      UeCtx* ue = find_by_amf_id(amf_ue_id);
      if (ue == nullptr) return;
      ++stats_.deregistrations;
      if (!switch_off) {
        send_nas(*ue, nr::Nas5gMessage{nr::DeregistrationAccept5g{}});
      }
      release_ue(*ue, "deregistration");
    });
    return;
  }
}

}  // namespace magma::agw
