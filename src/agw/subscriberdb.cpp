#include "agw/subscriberdb.h"

#include <algorithm>
#include <cstring>

#include "rpc/wire.h"

namespace magma::agw {

namespace {
constexpr std::array<std::uint8_t, 2> kAmf = {0x80, 0x00};
}  // namespace

std::array<std::uint8_t, 6> sqn_to_bytes(std::uint64_t sqn) {
  std::array<std::uint8_t, 6> out;
  for (int i = 0; i < 6; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sqn >> (40 - 8 * i));
  }
  return out;
}

std::uint64_t sqn_from_bytes(const std::array<std::uint8_t, 6>& bytes) {
  std::uint64_t sqn = 0;
  for (int i = 0; i < 6; ++i) sqn = (sqn << 8) | bytes[static_cast<std::size_t>(i)];
  return sqn;
}

common::Bytes SubscriberData::serialize() const {
  rpc::Writer w;
  w.str(imsi.value);
  w.bytes(common::BytesView(k.data(), k.size()));
  w.bytes(common::BytesView(opc.data(), opc.size()));
  w.u64(sqn);
  w.str(policy_name);
  w.str(wifi_password);
  w.boolean(active);
  return std::move(w).take();
}

common::Result<SubscriberData> SubscriberData::deserialize(
    common::BytesView data) {
  rpc::Reader r(data);
  SubscriberData s;
  s.imsi.value = r.str();
  const common::Bytes k = r.bytes();
  const common::Bytes opc = r.bytes();
  if (k.size() != 16 || opc.size() != 16) {
    return common::Error{common::ErrorCode::kInvalidArgument, "bad key size"};
  }
  std::copy(k.begin(), k.end(), s.k.begin());
  std::copy(opc.begin(), opc.end(), s.opc.begin());
  s.sqn = r.u64();
  s.policy_name = r.str();
  s.wifi_password = r.str();
  s.active = r.boolean();
  if (!r.ok() || !s.imsi.valid()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt subscriber record"};
  }
  return s;
}

SubscriberDb::SubscriberDb(std::function<std::uint64_t()> rand_source,
                           std::string plmn)
    : rand_source_(std::move(rand_source)) {
  sn_.plmn = std::move(plmn);
}

void SubscriberDb::upsert(SubscriberData data) {
  subscribers_[data.imsi] = std::move(data);
}

void SubscriberDb::remove(const common::Imsi& imsi) {
  subscribers_.erase(imsi);
}

std::optional<SubscriberData> SubscriberDb::get(const common::Imsi& imsi) {
  ++stats_.lookups;
  auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  return it->second;
}

std::vector<common::Imsi> SubscriberDb::all_imsis() const {
  std::vector<common::Imsi> out;
  out.reserve(subscribers_.size());
  for (const auto& [imsi, _] : subscribers_) out.push_back(imsi);
  std::sort(out.begin(), out.end());
  return out;
}

void SubscriberDb::replace_all(const std::vector<SubscriberData>& data) {
  std::unordered_map<common::Imsi, SubscriberData> next;
  next.reserve(data.size());
  for (const SubscriberData& s : data) {
    SubscriberData entry = s;
    // SQN is runtime state owned by this AGW: a config push must not
    // rewind it, or the next vector would be rejected by the USIM.
    auto it = subscribers_.find(s.imsi);
    if (it != subscribers_.end()) {
      entry.sqn = std::max(entry.sqn, it->second.sqn);
    }
    next[entry.imsi] = std::move(entry);
  }
  subscribers_ = std::move(next);
}

common::Result<AuthVector> SubscriberDb::generate_auth_vector(
    const common::Imsi& imsi) {
  obs::svc_request(status_);
  auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) {
    ++stats_.misses;
    obs::svc_error(status_, "unknown subscriber");
    return common::Error{common::ErrorCode::kNotFound,
                         "unknown subscriber " + imsi.value};
  }
  SubscriberData& sub = it->second;
  if (!sub.active) {
    return common::Error{common::ErrorCode::kPermissionDenied,
                         "subscriber deactivated"};
  }

  AuthVector v;
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t r = rand_source_();
    std::memcpy(v.rand.data() + i * 8, &r, 8);
  }

  sub.sqn += 1;  // advance before use; SQN must never repeat
  const auto sqn = sqn_to_bytes(sub.sqn);

  const crypto::Milenage milenage =
      crypto::Milenage::from_opc(sub.k, sub.opc);
  const crypto::MilenageOutput out = milenage.compute(v.rand, sqn, kAmf);

  // AUTN = (SQN xor AK) || AMF || MAC-A.
  std::array<std::uint8_t, 6> sqn_xor_ak;
  for (int i = 0; i < 6; ++i) {
    sqn_xor_ak[static_cast<std::size_t>(i)] =
        sqn[static_cast<std::size_t>(i)] ^ out.ak[static_cast<std::size_t>(i)];
  }
  std::memcpy(v.autn.data(), sqn_xor_ak.data(), 6);
  std::memcpy(v.autn.data() + 6, kAmf.data(), 2);
  std::memcpy(v.autn.data() + 8, out.mac_a.data(), 8);

  std::memcpy(v.xres.data(), out.res.data(), 8);
  v.kasme = crypto::derive_kasme(out.ck, out.ik, sn_, sqn_xor_ak);

  ++stats_.vectors_generated;
  return v;
}

common::Status SubscriberDb::resync(const common::Imsi& imsi,
                                    const std::array<std::uint8_t, 14>& auts,
                                    const std::array<std::uint8_t, 16>& rand) {
  obs::svc_request(status_);
  auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) {
    obs::svc_error(status_, "unknown subscriber");
    return common::Error{common::ErrorCode::kNotFound, "unknown subscriber"};
  }
  SubscriberData& sub = it->second;

  // AUTS = (SQNms xor AK*) || MAC-S. Recover SQNms using f5*.
  const crypto::Milenage milenage =
      crypto::Milenage::from_opc(sub.k, sub.opc);
  // MAC-S in AUTS was computed over SQNms with AMF = 0x0000; to recover
  // SQNms we only need AK*, which depends on RAND alone.
  const crypto::MilenageOutput probe =
      milenage.compute(rand, sqn_to_bytes(0), {0x00, 0x00});
  std::array<std::uint8_t, 6> sqn_ms_bytes;
  for (int i = 0; i < 6; ++i) {
    sqn_ms_bytes[static_cast<std::size_t>(i)] =
        auts[static_cast<std::size_t>(i)] ^
        probe.ak_s[static_cast<std::size_t>(i)];
  }
  const std::uint64_t sqn_ms = sqn_from_bytes(sqn_ms_bytes);

  // Verify MAC-S.
  const crypto::MilenageOutput verify =
      milenage.compute(rand, sqn_ms_bytes, {0x00, 0x00});
  if (!common::constant_time_equal(
          common::BytesView(auts.data() + 6, 8),
          common::BytesView(verify.mac_s.data(), 8))) {
    return common::Error{common::ErrorCode::kUnauthenticated, "bad MAC-S"};
  }

  sub.sqn = std::max(sub.sqn, sqn_ms) + 1;
  ++stats_.resyncs;
  return common::Status::Ok();
}

common::Bytes SubscriberDb::snapshot() const {
  rpc::Writer w;
  w.u64(subscribers_.size());
  // Deterministic order for byte-identical snapshots.
  for (const common::Imsi& imsi : all_imsis()) {
    w.bytes(subscribers_.at(imsi).serialize());
  }
  return std::move(w).take();
}

common::Status SubscriberDb::restore(common::BytesView image) {
  rpc::Reader r(image);
  const std::uint64_t count = r.u64();
  std::unordered_map<common::Imsi, SubscriberData> next;
  for (std::uint64_t i = 0; i < count; ++i) {
    const common::Bytes record = r.bytes();
    if (!r.ok()) break;
    auto parsed = SubscriberData::deserialize(record);
    if (!parsed.ok()) return common::Status(parsed.error());
    next[parsed.value().imsi] = std::move(parsed).take();
  }
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt subscriberdb image"};
  }
  subscribers_ = std::move(next);
  return common::Status::Ok();
}

}  // namespace magma::agw
