// magmad — the AGW's device-management agent (Table 1 rows "Device
// Management" and "Telemetry and logging": functions with no 3GPP
// equivalent that Magma adds, §3.1).
//
// Responsibilities, all periodic and all tolerant of a disconnected
// orchestrator (§3.2 headless operation):
//   * config sync   — poll the streamer with our current version; apply the
//                     full desired state (subscribers + policies) when it
//                     changed. Retries with backoff survive backhaul loss.
//   * check-in      — device heartbeat into the gateway inventory.
//   * metrics       — best-effort telemetry shipping (no retries, §3.4).
//   * checkpoint    — serialize AGW runtime state and ship it to the
//                     orchestrator as the warm-standby image (§3.3).
//   * events        — drain the gateway's structured-event buffer (attach
//                     outcomes, WARN/ERROR logs) to the orchestrator's
//                     eventd. Best-effort: a batch that fails in flight is
//                     counted lost, never re-queued, and a backhaul outage
//                     only ever costs bounded buffer memory.
//
// All best-effort shipping (metrics, events, checkpoints) yields to the
// config sync under transport backpressure: when the shared control channel
// already holds `telemetry_backpressure` unacknowledged messages, the tick
// sheds instead of queueing behind the congestion window. Without this, on
// a high-loss satellite path the telemetry queue grows without bound and
// every deadline-bound sync RPC behind it times out — the gateway delivers
// metrics it no longer needs while never learning its subscribers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <map>

#include "agw/policydb.h"
#include "agw/subscriberdb.h"
#include "obs/events.h"
#include "obs/status.h"
#include "obs/tail_sampler.h"
#include "orc8r/metricsd.h"
#include "orc8r/streamer.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace magma::agw {

struct MagmadConfig {
  sim::Duration config_poll_interval = 30 * sim::kSecond;
  sim::Duration checkin_interval = 60 * sim::kSecond;
  sim::Duration metrics_interval = 15 * sim::kSecond;
  sim::Duration checkpoint_interval = 60 * sim::kSecond;
  sim::Duration rpc_deadline = 10 * sim::kSecond;
  // Deadline for the streamer GetUpdates poll specifically. The sync is the
  // one RPC that must land on degraded backhaul, and on a satellite path at
  // high loss a round trip can sit out several RTO backoffs; a deadline
  // shorter than that discards responses the transport was about to
  // deliver. Long-poll style: one poll interval.
  sim::Duration sync_rpc_deadline = 30 * sim::kSecond;
  sim::Duration event_flush_interval = 5 * sim::kSecond;
  std::size_t event_batch_max = 64;
  // Best-effort backpressure: when the control channel already holds this
  // many unacknowledged messages, metrics/event/checkpoint ticks skip
  // shipping (counted in telemetry_sheds) instead of queueing behind the
  // congestion window — where they would starve the config sync whose
  // deadline-bound RPCs share the channel.
  std::size_t telemetry_backpressure = 4;
};

struct MagmadStats {
  std::uint64_t config_syncs_applied = 0;
  std::uint64_t config_polls_noop = 0;
  std::uint64_t sync_failures = 0;
  // Sync breakdown: config_syncs_applied = full + delta applies.
  std::uint64_t config_full_syncs = 0;
  std::uint64_t config_delta_syncs = 0;
  std::uint64_t delta_entries_applied = 0;
  // Full syncs whose version went *backwards* (orchestrator restarted with
  // an older or rebuilt store). Accepted, not wedged: the orchestrator is
  // the source of truth, stale-but-newer local state loses (§3.4).
  std::uint64_t sync_regressions = 0;
  // Orchestrator epoch changes observed (each forces a full resync).
  std::uint64_t epoch_resyncs = 0;
  // Fleet tail-budget assignments applied from checkin responses.
  std::uint64_t tail_budget_updates = 0;
  std::uint64_t checkins_ok = 0;
  std::uint64_t checkin_failures = 0;
  std::uint64_t metric_reports_sent = 0;
  std::uint64_t metric_reports_lost = 0;
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t histogram_reports_sent = 0;
  std::uint64_t histogram_reports_lost = 0;
  // Buckets actually put on the wire (full snapshots count every bucket,
  // deltas only the changed ones, unchanged histograms nothing) — the gauge
  // that proves delta shipping's reduction.
  std::uint64_t histogram_buckets_shipped = 0;
  // Delta bookkeeping: full snapshots vs deltas vs unchanged-skips.
  std::uint64_t histogram_full_snapshots = 0;
  std::uint64_t histogram_delta_snapshots = 0;
  std::uint64_t histogram_unchanged_skips = 0;
  std::uint64_t events_shipped = 0;
  std::uint64_t events_lost = 0;
  // Tail-sampled trace summaries (the "where does attach latency go"
  // payload): reports put on the wire vs lost, and summaries carried.
  // Best-effort like metrics — a lost report's summaries are gone; the
  // sampler keeps producing fresh ones every window.
  std::uint64_t trace_reports_sent = 0;
  std::uint64_t trace_reports_lost = 0;
  std::uint64_t trace_summaries_shipped = 0;
  // Per-subscriber sketch reports (cumulative SpaceSaving + HLL snapshots,
  // O(K + 2^p) on the wire however many subscribers the gateway serves).
  // Best-effort like the rest: a lost report is superseded by the next
  // tick's cumulative snapshot.
  std::uint64_t sketch_reports_sent = 0;
  std::uint64_t sketch_reports_lost = 0;
  // Best-effort ticks that skipped shipping because the control channel was
  // already backlogged (see MagmadConfig::telemetry_backpressure). Events
  // stay in their bounded buffer for the next tick; metrics/checkpoints are
  // simply not snapshotted this round.
  std::uint64_t telemetry_sheds = 0;
};

class Magmad {
 public:
  // `orc8r` is the RPC client toward the orchestrator; may be null for a
  // fully standalone AGW (everything local keeps working — that is the
  // point). `checkpoint_source` returns the AGW's serialized runtime state;
  // `metric_source` returns the current telemetry snapshot.
  // `events` (optional) is the gateway's structured-event buffer, drained
  // periodically toward eventd; `histogram_source` (optional) returns the
  // gateway's latency-histogram snapshots, shipped with each metrics tick;
  // `status_source` (optional) returns the gateway's Service303 registry
  // snapshot, shipped inside each checkin (the health plane's payload).
  Magmad(sim::Kernel& kernel, std::string gateway_id, rpc::RpcNode* orc8r,
         SubscriberDb& subscribers, PolicyDb& policies,
         std::function<common::Bytes()> checkpoint_source,
         std::function<std::vector<orc8r::MetricSample>()> metric_source,
         MagmadConfig config = {}, obs::EventBuffer* events = nullptr,
         std::function<std::vector<orc8r::HistogramSnapshot>()>
             histogram_source = {},
         std::function<std::vector<obs::ServiceStatus>()> status_source = {});

  // magmad's own Service303 handle (phase tracks orchestrator reachability;
  // requests/errors/deadlines count its southbound RPC outcomes).
  void set_status(obs::Service303* status);

  // Tail-sampled trace summaries (optional): drained and shipped to
  // metricsd on each metrics tick. The source hands over whatever windows
  // have closed since the last tick (typically the gateway TailSampler's
  // drain_ready()).
  void set_trace_source(std::function<std::vector<obs::TraceSummary>()> src) {
    trace_source_ = std::move(src);
  }

  // Per-subscriber sketches (optional): the source returns the gateway's
  // cumulative SketchReport (typically SubscriberSketches::snapshot),
  // shipped to metricsd on each metrics tick.
  void set_sketch_source(std::function<obs::sketch::SketchReport()> src) {
    sketch_source_ = std::move(src);
  }

  // Fleet-wide tail-sampling budget: the checkin response carries the
  // keep-per-op K the orchestrator assigned this gateway (0: unmanaged).
  // The sink is invoked whenever the assignment changes (typically wired to
  // TailSampler::set_keep_per_op).
  void set_tail_budget_sink(std::function<void(std::size_t)> sink) {
    tail_budget_sink_ = std::move(sink);
  }
  std::uint64_t assigned_tail_keep() const { return assigned_tail_keep_; }

  // Begin the periodic loops (idempotent).
  void start();
  // One immediate config sync (used at boot and by tests).
  void sync_config_now(std::function<void(bool applied)> done = nullptr);

  // Fault injection: a wedged magmad stops doing work on every periodic
  // tick (no checkins, no config polls, no telemetry) while the ticks keep
  // rescheduling — the supervisor process is alive but its loops are stuck,
  // the classic crashed-service shape statusd's missed-checkin FSM detects.
  // Unwedging resumes on the next tick boundary.
  void simulate_wedge(bool wedged) { wedged_ = wedged; }
  bool wedged() const { return wedged_; }

  std::uint64_t synced_version() const { return synced_version_; }
  std::uint64_t synced_epoch() const { return synced_epoch_; }
  bool orchestrator_reachable() const { return reachable_; }
  const MagmadStats& stats() const { return stats_; }

 private:
  void config_tick();
  void checkin_tick();
  void metrics_tick();
  void checkpoint_tick();
  void event_tick();
  void handle_update(const orc8r::DesiredUpdate& update,
                     const std::function<void(bool)>& done);
  void apply(const orc8r::DesiredState& state);
  // Per-entry upsert/remove. False: an entry blob failed to decode — the
  // sync is counted failed and synced state reset, forcing the next poll
  // onto the self-healing full path.
  bool apply_delta(const orc8r::DesiredUpdate& update);
  // True when the control channel backlog says best-effort traffic should
  // be shed this tick (also bumps telemetry_sheds).
  bool shed_telemetry();
  // Track orchestrator reachability (and mirror it into the Service303
  // phase: "connected" / "headless").
  void set_reachable(bool up);
  // Full/delta/skip decision per histogram vs last_shipped_counts_; bumps
  // the shipping stats.
  std::vector<orc8r::HistogramSnapshot> prepare_histogram_report(
      std::vector<orc8r::HistogramSnapshot> full);

  sim::Kernel& kernel_;
  std::string gateway_id_;
  rpc::RpcNode* orc8r_;
  SubscriberDb& subscribers_;
  PolicyDb& policies_;
  std::function<common::Bytes()> checkpoint_source_;
  std::function<std::vector<orc8r::MetricSample>()> metric_source_;
  MagmadConfig config_;
  obs::EventBuffer* events_;
  std::function<std::vector<orc8r::HistogramSnapshot>()> histogram_source_;
  std::function<std::vector<obs::ServiceStatus>()> status_source_;
  std::function<std::vector<obs::TraceSummary>()> trace_source_;
  std::function<obs::sketch::SketchReport()> sketch_source_;
  std::function<void(std::size_t)> tail_budget_sink_;
  obs::Service303* status_ = nullptr;

  // Delta shipping: counts as of the last report put on the wire, per
  // histogram name. Cleared on a lost report so the next tick re-ships full
  // (metricsd may have missed the base the deltas build on).
  std::map<std::string, std::vector<std::uint64_t>> last_shipped_counts_;
  // Exemplars as of the last shipped report, per histogram name — deltas
  // carry only (bucket, trace id) pairs that changed since.
  std::map<std::string, std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      last_shipped_exemplars_;

  bool started_ = false;
  bool wedged_ = false;
  bool reachable_ = false;
  std::uint64_t synced_version_ = 0;
  std::uint64_t synced_epoch_ = 0;  // 0: never synced
  std::uint64_t assigned_tail_keep_ = 0;
  MagmadStats stats_;
};

}  // namespace magma::agw
