#include "agw/lte_frontend.h"

#include "common/log.h"

namespace magma::agw {

namespace lte = magma::proto::lte;

namespace {

lte::EmmCause cause_from_error(const common::Error& error) {
  switch (error.code) {
    case common::ErrorCode::kNotFound:
      return lte::EmmCause::kImsiUnknownInHss;
    case common::ErrorCode::kPermissionDenied:
    case common::ErrorCode::kUnauthenticated:
      return lte::EmmCause::kIllegalUe;
    case common::ErrorCode::kResourceExhausted:
      return lte::EmmCause::kCongestion;
    default:
      return lte::EmmCause::kNetworkFailure;
  }
}

// Zero the MAC field of a NAS message (MACs are computed with mac = 0).
lte::NasMessage with_zero_mac(lte::NasMessage msg) {
  if (auto* smc = std::get_if<lte::SecurityModeCommand>(&msg)) smc->mac = 0;
  if (auto* smk = std::get_if<lte::SecurityModeComplete>(&msg)) smk->mac = 0;
  if (auto* acc = std::get_if<lte::AttachAccept>(&msg)) acc->mac = 0;
  if (auto* cpl = std::get_if<lte::AttachComplete>(&msg)) cpl->mac = 0;
  if (auto* srq = std::get_if<lte::ServiceRequest>(&msg)) srq->mac = 0;
  if (auto* sra = std::get_if<lte::ServiceAccept>(&msg)) sra->mac = 0;
  return msg;
}

}  // namespace

LteFrontend::LteFrontend(sim::Kernel& kernel, Accessd& accessd,
                         Sessiond& sessiond, common::Ipv4 agw_address,
                         std::string mme_name)
    : kernel_(kernel),
      accessd_(accessd),
      sessiond_(sessiond),
      agw_address_(agw_address),
      mme_name_(std::move(mme_name)) {}

void LteFrontend::set_observability(obs::Tracer* tracer, std::string node,
                                    obs::EventBuffer* events) {
  tracer_ = tracer;
  node_ = std::move(node);
  events_ = events;
}

void LteFrontend::finish_attach_trace(UeCtx& ue, const char* outcome,
                                      const char* type,
                                      const std::string& detail) {
  if (!ue.trace.valid()) return;
  obs::tag_span(tracer_, ue.trace, "outcome", outcome);
  if (!detail.empty()) obs::tag_span(tracer_, ue.trace, "detail", detail);
  obs::end_span(tracer_, ue.trace);
  if (events_ != nullptr) {
    obs::Event event;
    event.time = kernel_.now();
    event.gateway_id = node_;
    event.type = type;
    event.source = "lte_frontend";
    event.message = ue.imsi.value + (detail.empty() ? "" : ": " + detail);
    event.severity = std::string_view(outcome) == "success"
                         ? obs::EventSeverity::kInfo
                         : obs::EventSeverity::kWarn;
    event.trace = ue.trace;
    events_->push(std::move(event));
  }
  ue.trace = obs::TraceContext{};
}

void LteFrontend::add_enb_channel(net::Channel& channel) {
  auto conn = std::make_unique<EnbConn>();
  conn->channel = &channel;
  EnbConn* raw = conn.get();
  channel.set_receiver(
      [this, raw](common::Bytes bytes) { on_message(*raw, std::move(bytes)); });
  conns_.push_back(std::move(conn));
}

void LteFrontend::send(EnbConn& conn, const lte::S1apMessage& msg) {
  conn.channel->send(lte::encode_s1ap(msg));
}

std::uint32_t LteFrontend::compute_mac(const UeCtx& ue, std::uint32_t count,
                                       lte::NasMessage msg) const {
  return crypto::nas_mac(ue.k_nas_int, count,
                         lte::encode_nas(with_zero_mac(std::move(msg))));
}

common::Bytes LteFrontend::protect_downlink(UeCtx& ue, common::Bytes pdu) {
  if (!ue.security_active) return pdu;
  return crypto::nas_cipher(ue.k_nas_enc, ue.dl_cipher_count++, true, pdu);
}

void LteFrontend::send_nas(UeCtx& ue, const lte::NasMessage& nas) {
  lte::DownlinkNasTransport transport;
  transport.enb_ue_s1ap_id = ue.enb_ue_id;
  transport.mme_ue_s1ap_id = ue.mme_ue_id;
  transport.nas_pdu = protect_downlink(ue, lte::encode_nas(nas));
  send(*ue.conn, lte::S1apMessage{std::move(transport)});
}

void LteFrontend::reject(UeCtx& ue, lte::EmmCause cause) {
  ++stats_.attach_rejects;
  finish_attach_trace(ue, "reject", "attach_reject",
                      "emm-cause-" + std::to_string(static_cast<int>(cause)));
  send_nas(ue, lte::NasMessage{lte::AttachReject{cause}});
  release_ue(ue, "attach-reject");
}

void LteFrontend::release_ue(UeCtx& ue, const std::string& cause) {
  finish_attach_trace(ue, "abort", "attach_abort", cause);
  if (ue.conn != nullptr) {
    lte::UeContextReleaseCommand release;
    release.enb_ue_s1ap_id = ue.enb_ue_id;
    release.mme_ue_s1ap_id = ue.mme_ue_id;
    release.cause = cause;
    send(*ue.conn, lte::S1apMessage{std::move(release)});
    ue.conn->enb_to_mme.erase(ue.enb_ue_id);
  }
  imsi_to_mme_id_.erase(ue.imsi);
  tmsi_to_mme_id_.erase(ue.m_tmsi);
  ues_.erase(ue.mme_ue_id);  // invalidates `ue`
}

LteFrontend::UeCtx* LteFrontend::find_by_mme_id(std::uint32_t mme_ue_id) {
  auto it = ues_.find(mme_ue_id);
  return it == ues_.end() ? nullptr : &it->second;
}

void LteFrontend::on_message(EnbConn& conn, common::Bytes raw) {
  auto msg = lte::decode_s1ap(raw);
  if (!msg.ok()) {
    ++stats_.decode_errors;
    return;
  }
  handle(conn, std::move(msg).take());
}

void LteFrontend::handle(EnbConn& conn, lte::S1apMessage msg) {
  if (auto* setup = std::get_if<lte::S1SetupRequest>(&msg)) {
    conn.enb_id = setup->enb_id;
    conn.setup_done = true;
    ++stats_.s1_setups;
    send(conn, lte::S1apMessage{lte::S1SetupResponse{mme_name_, 255}});
    return;
  }

  if (auto* initial = std::get_if<lte::InitialUeMessage>(&msg)) {
    ++stats_.initial_ue_messages;
    auto nas = lte::decode_nas(initial->nas_pdu);
    if (!nas.ok()) {
      ++stats_.decode_errors;
      return;
    }
    if (const auto* sr = std::get_if<lte::ServiceRequest>(&nas.value())) {
      handle_service_request(conn, initial->enb_ue_s1ap_id, *sr);
      return;
    }
    const auto* attach = std::get_if<lte::AttachRequest>(&nas.value());
    if (attach == nullptr) {
      ++stats_.decode_errors;
      return;
    }

    // A retransmitted InitialUeMessage for an IMSI already mid-attach
    // restarts the procedure (the old context is discarded by accessd).
    if (auto it = imsi_to_mme_id_.find(attach->imsi);
        it != imsi_to_mme_id_.end()) {
      auto old = ues_.find(it->second);
      if (old != ues_.end()) {
        old->second.conn->enb_to_mme.erase(old->second.enb_ue_id);
        ues_.erase(old);
      }
      imsi_to_mme_id_.erase(it);
    }

    const std::uint32_t mme_ue_id = next_mme_ue_id_++;
    UeCtx& ue = ues_[mme_ue_id];
    ue.imsi = attach->imsi;
    ue.conn = &conn;
    ue.enb_ue_id = initial->enb_ue_s1ap_id;
    ue.mme_ue_id = mme_ue_id;
    conn.enb_to_mme[ue.enb_ue_id] = mme_ue_id;
    imsi_to_mme_id_[ue.imsi] = mme_ue_id;

    // Root of the attach trace: one span covering InitialUeMessage through
    // AttachComplete. Every downstream stage (accessd, mobilityd, sessiond,
    // pipelined, and RPC hops to the orchestrator) parents under it.
    ue.trace = obs::begin_span(tracer_, "attach", "lte_frontend", node_);
    obs::tag_span(tracer_, ue.trace, "imsi", ue.imsi.value);
    const obs::Tracer::Scope scope(tracer_, ue.trace);

    accessd_.begin_attach(
        ue.imsi, RanType::kLte,
        [this, mme_ue_id](common::Result<AuthChallenge> challenge) {
          UeCtx* ue = find_by_mme_id(mme_ue_id);
          if (ue == nullptr) return;  // released meanwhile
          if (!challenge.ok()) {
            reject(*ue, cause_from_error(challenge.error()));
            return;
          }
          lte::AuthenticationRequest auth;
          auth.rand = challenge.value().rand;
          auth.autn = challenge.value().autn;
          ++stats_.auth_requests_sent;
          send_nas(*ue, lte::NasMessage{auth});
          ue->awaiting_ue_since = kernel_.now();
        });
    return;
  }

  if (auto* uplink = std::get_if<lte::UplinkNasTransport>(&msg)) {
    UeCtx* ue = find_by_mme_id(uplink->mme_ue_s1ap_id);
    if (ue == nullptr) return;
    common::Bytes pdu = std::move(uplink->nas_pdu);
    if (ue->security_active) {
      pdu = crypto::nas_cipher(ue->k_nas_enc, ue->ul_cipher_count++, false,
                               pdu);
    }
    auto nas = lte::decode_nas(pdu);
    if (!nas.ok()) {
      ++stats_.decode_errors;
      return;
    }
    handle_nas(*ue, nas.value());
    return;
  }

  if (auto* response = std::get_if<lte::InitialContextSetupResponse>(&msg)) {
    UeCtx* ue = find_by_mme_id(response->mme_ue_s1ap_id);
    if (ue == nullptr) return;
    // The ModifyBearer step: the eNodeB's downlink GTP endpoint is now
    // known; point the data plane at it.
    sessiond_.update_bearer(ue->imsi, response->enb_teid_dl,
                            response->enb_address)
        .ok();
    return;
  }

  if (auto* complete = std::get_if<lte::UeContextReleaseComplete>(&msg)) {
    (void)complete;  // context already erased (or kept, for idle)
    return;
  }

  if (auto* request = std::get_if<lte::UeContextReleaseRequest>(&msg)) {
    // UE inactivity: move to ECM-IDLE. The EMM context and the session
    // survive; the radio association and downlink tunnel go away.
    UeCtx* ue = find_by_mme_id(request->mme_ue_s1ap_id);
    if (ue == nullptr) return;
    ++stats_.idle_transitions;
    lte::UeContextReleaseCommand command;
    command.enb_ue_s1ap_id = ue->enb_ue_id;
    command.mme_ue_s1ap_id = ue->mme_ue_id;
    command.cause = "idle";
    send(conn, lte::S1apMessage{std::move(command)});
    conn.enb_to_mme.erase(ue->enb_ue_id);
    ue->conn = nullptr;
    ue->enb_ue_id = 0;
    ue->idle = true;
    sessiond_.set_idle(ue->imsi, true).ok();
    return;
  }

  if (auto* path_switch = std::get_if<lte::PathSwitchRequest>(&msg)) {
    // Intra-AGW handover: the target eNodeB owns the UE now; repoint the
    // downlink tunnel (§3.2: mobility across radios served by one AGW).
    UeCtx* ue = find_by_mme_id(path_switch->mme_ue_s1ap_id);
    if (ue == nullptr) return;
    if (ue->conn != nullptr && ue->conn != &conn) {
      ue->conn->enb_to_mme.erase(ue->enb_ue_id);
    }
    ue->conn = &conn;
    ue->enb_ue_id = path_switch->enb_ue_s1ap_id;
    conn.enb_to_mme[ue->enb_ue_id] = ue->mme_ue_id;
    sessiond_.update_bearer(ue->imsi, path_switch->enb_teid_dl,
                            path_switch->enb_address)
        .ok();
    ++stats_.path_switches;
    lte::PathSwitchRequestAcknowledge ack;
    ack.enb_ue_s1ap_id = ue->enb_ue_id;
    ack.mme_ue_s1ap_id = ue->mme_ue_id;
    send(conn, lte::S1apMessage{std::move(ack)});
    return;
  }
  // Remaining message types are MME→eNodeB only; ignore.
}

void LteFrontend::page(const common::Imsi& imsi) {
  auto mme_it = imsi_to_mme_id_.find(imsi);
  if (mme_it == imsi_to_mme_id_.end()) return;
  UeCtx* ue = find_by_mme_id(mme_it->second);
  if (ue == nullptr || !ue->idle) return;
  // Rate limit: at most one page per IMSI per second (paging storms from a
  // stream of downlink packets would swamp the paging channel).
  auto last = last_page_.find(imsi);
  if (last != last_page_.end() &&
      kernel_.now() - last->second < sim::kSecond) {
    return;
  }
  last_page_[imsi] = kernel_.now();
  ++stats_.pages_sent;
  for (const auto& conn : conns_) {
    send(*conn, lte::S1apMessage{lte::PagingMessage{imsi}});
  }
}

void LteFrontend::handle_service_request(EnbConn& conn,
                                         std::uint32_t enb_ue_id,
                                         const lte::ServiceRequest& sr) {
  auto tmsi_it = tmsi_to_mme_id_.find(sr.m_tmsi);
  if (tmsi_it == tmsi_to_mme_id_.end()) {
    ++stats_.decode_errors;
    return;
  }
  UeCtx* ue = find_by_mme_id(tmsi_it->second);
  if (ue == nullptr || !ue->idle) return;

  const std::uint32_t expected =
      compute_mac(*ue, ue->ul_count, lte::NasMessage{sr});
  if (expected != sr.mac) {
    // An unauthentic ServiceRequest must not hijack the context.
    ++stats_.bad_mac;
    lte::DownlinkNasTransport reject;
    reject.enb_ue_s1ap_id = enb_ue_id;
    reject.mme_ue_s1ap_id = ue->mme_ue_id;
    reject.nas_pdu = lte::encode_nas(
        lte::NasMessage{lte::ServiceReject{lte::EmmCause::kIllegalUe}});
    send(conn, lte::S1apMessage{std::move(reject)});
    return;
  }
  ++ue->ul_count;
  ++stats_.service_requests;

  // Re-associate and rebuild the radio-side bearer.
  ue->conn = &conn;
  ue->enb_ue_id = enb_ue_id;
  conn.enb_to_mme[enb_ue_id] = ue->mme_ue_id;
  ue->idle = false;

  const SessionRecord* session = sessiond_.find(ue->imsi);
  if (session == nullptr) {
    // Session vanished while idle (e.g. operator action): tell the UE to
    // re-attach from scratch.
    lte::DownlinkNasTransport reject;
    reject.enb_ue_s1ap_id = enb_ue_id;
    reject.mme_ue_s1ap_id = ue->mme_ue_id;
    // Protected: the genuine UE's NAS security is active and it will
    // decipher whatever arrives.
    reject.nas_pdu = protect_downlink(
        *ue, lte::encode_nas(lte::NasMessage{
                 lte::ServiceReject{lte::EmmCause::kNetworkFailure}}));
    send(conn, lte::S1apMessage{std::move(reject)});
    release_ue(*ue, "no-session");
    return;
  }

  lte::ServiceAccept accept;
  accept.mac = compute_mac(*ue, ue->dl_count, lte::NasMessage{accept});
  ++ue->dl_count;
  ++stats_.service_accepts;

  lte::InitialContextSetupRequest ics;
  ics.enb_ue_s1ap_id = ue->enb_ue_id;
  ics.mme_ue_s1ap_id = ue->mme_ue_id;
  ics.agw_teid_ul = session->flows.agw_teid_ul;
  ics.agw_address = agw_address_;
  ics.kenb = crypto::derive_k_enb(ue->kasme, ue->ul_count);
  ics.nas_pdu =
      protect_downlink(*ue, lte::encode_nas(lte::NasMessage{accept}));
  send(conn, lte::S1apMessage{std::move(ics)});
}

void LteFrontend::handle_nas(UeCtx& ue, const lte::NasMessage& nas) {
  const std::uint32_t mme_ue_id = ue.mme_ue_id;
  // Re-enter the attach trace for whatever stage this uplink NAS message
  // advances (invalid outside an attach — harmless).
  const obs::Tracer::Scope scope(tracer_, ue.trace);

  // The time since the last downlink that awaited a UE answer is radio-leg
  // round trip: charge it to the attach root as link transit so the root's
  // wait vector tiles with the stage spans (DESIGN.md §7).
  if (ue.awaiting_ue_since >= 0) {
    obs::add_span_wait(tracer_, ue.trace, obs::WaitState::kLinkTransit,
                       kernel_.now() - ue.awaiting_ue_since);
    ue.awaiting_ue_since = -1;
  }

  if (const auto* auth = std::get_if<lte::AuthenticationResponse>(&nas)) {
    accessd_.verify_auth(
        ue.imsi, common::BytesView(auth->res.data(), auth->res.size()),
        [this, mme_ue_id](common::Result<SecurityKeys> keys) {
          UeCtx* ue = find_by_mme_id(mme_ue_id);
          if (ue == nullptr) return;
          if (!keys.ok()) {
            reject(*ue, cause_from_error(keys.error()));
            return;
          }
          ue->kasme = keys.value().kasme;
          ue->k_nas_int =
              crypto::derive_k_nas_int(ue->kasme, crypto::NasAlgorithm::kEia2);
          ue->k_nas_enc =
              crypto::derive_k_nas_enc(ue->kasme, crypto::NasAlgorithm::kEea2);
          lte::SecurityModeCommand smc;
          smc.mac = compute_mac(*ue, ue->dl_count, lte::NasMessage{smc});
          ++ue->dl_count;
          ++stats_.smc_sent;
          send_nas(*ue, lte::NasMessage{smc});
          ue->awaiting_ue_since = kernel_.now();
        });
    return;
  }

  if (const auto* failure = std::get_if<lte::AuthenticationFailure>(&nas)) {
    if (failure->cause != lte::EmmCause::kSynchFailure) {
      release_ue(ue, "auth-failure");
      return;
    }
    ++stats_.auth_resyncs;
    accessd_.resync_auth(
        ue.imsi, failure->auts,
        [this, mme_ue_id](common::Result<AuthChallenge> challenge) {
          UeCtx* ue = find_by_mme_id(mme_ue_id);
          if (ue == nullptr) return;
          if (!challenge.ok()) {
            reject(*ue, cause_from_error(challenge.error()));
            return;
          }
          lte::AuthenticationRequest auth;
          auth.rand = challenge.value().rand;
          auth.autn = challenge.value().autn;
          ++stats_.auth_requests_sent;
          send_nas(*ue, lte::NasMessage{auth});
          ue->awaiting_ue_since = kernel_.now();
        });
    return;
  }

  if (const auto* smc = std::get_if<lte::SecurityModeComplete>(&nas)) {
    const std::uint32_t expected =
        compute_mac(ue, ue.ul_count, lte::NasMessage{*smc});
    if (expected != smc->mac) {
      ++stats_.bad_mac;
      reject(ue, lte::EmmCause::kSecurityModeRejected);
      return;
    }
    ++ue.ul_count;
    ue.security_active = true;

    Accessd::EstablishRequest req;
    req.imsi = ue.imsi;
    // The eNodeB's downlink TEID arrives later, in
    // InitialContextSetupResponse.
    req.enb_teid_dl = common::Teid{0};
    req.enb_address = common::Ipv4{0};
    accessd_.establish(
        req, [this, mme_ue_id](common::Result<SessionInfo> info) {
          UeCtx* ue = find_by_mme_id(mme_ue_id);
          if (ue == nullptr) return;
          if (!info.ok()) {
            reject(*ue, cause_from_error(info.error()));
            return;
          }
          ue->m_tmsi = next_m_tmsi_++;
          tmsi_to_mme_id_[ue->m_tmsi] = ue->mme_ue_id;

          lte::AttachAccept accept;
          accept.m_tmsi = ue->m_tmsi;
          accept.bearer.ebi = 5;
          accept.bearer.apn = "internet";
          accept.bearer.pdn_address = info.value().ue_ip;
          accept.bearer.qci = info.value().qci;
          accept.bearer.ambr_dl_bps = info.value().ambr_dl_bps;
          accept.bearer.ambr_ul_bps = info.value().ambr_ul_bps;
          accept.mac = compute_mac(*ue, ue->dl_count, lte::NasMessage{accept});
          ++ue->dl_count;

          lte::InitialContextSetupRequest ics;
          ics.enb_ue_s1ap_id = ue->enb_ue_id;
          ics.mme_ue_s1ap_id = ue->mme_ue_id;
          ics.agw_teid_ul = info.value().agw_teid_ul;
          ics.agw_address = agw_address_;
          ics.kenb = crypto::derive_k_enb(ue->kasme, ue->ul_count);
          ics.nas_pdu =
              protect_downlink(*ue, lte::encode_nas(lte::NasMessage{accept}));
          ++stats_.attach_accepts;
          send(*ue->conn, lte::S1apMessage{std::move(ics)});
          ue->awaiting_ue_since = kernel_.now();
        });
    return;
  }

  if (const auto* complete = std::get_if<lte::AttachComplete>(&nas)) {
    const std::uint32_t expected =
        compute_mac(ue, ue.ul_count, lte::NasMessage{*complete});
    if (expected != complete->mac) {
      ++stats_.bad_mac;
      return;
    }
    ++ue.ul_count;
    ++stats_.attach_completes;
    finish_attach_trace(ue, "success", "attach_success", "");
    return;
  }

  if (const auto* detach = std::get_if<lte::DetachRequest>(&nas)) {
    const bool switch_off = detach->switch_off;
    accessd_.detach(ue.imsi, [this, mme_ue_id,
                              switch_off](common::Status status) {
      (void)status;  // best effort: the UE is leaving either way
      UeCtx* ue = find_by_mme_id(mme_ue_id);
      if (ue == nullptr) return;
      ++stats_.detaches;
      if (!switch_off) {
        send_nas(*ue, lte::NasMessage{lte::DetachAccept{}});
      }
      release_ue(*ue, "detach");
    });
    return;
  }
}

}  // namespace magma::agw
