#include "agw/agw.h"

#include "common/log.h"
#include "common/pool.h"
#include "rpc/wire.h"

namespace magma::agw {

AgwProfile bare_metal_j3160() {
  AgwProfile profile;
  profile.name = "bare-metal-j3160";
  profile.cpu.cores = 4;
  profile.cpu.speed_ghz = 1.6;
  profile.cpu.user_plane_cores = -1;  // flexible
  profile.accessd.workers = 1;        // the single-threaded MME of Figure 6
  return profile;
}

AgwProfile virtual_xeon(int vcpus, int user_plane_cores) {
  AgwProfile profile;
  profile.name = "virtual-xeon-" + std::to_string(vcpus) + "c";
  profile.cpu.cores = vcpus;
  profile.cpu.speed_ghz = 2.6;
  profile.cpu.user_plane_cores = user_plane_cores;
  // The VM build parallelizes attach processing across vCPUs, keeping one
  // vCPU's worth for the other services (§4.2: a 4 vCPU virtual AGW
  // supports 16 attaches/second — 3 workers x 2.6 GHz / 0.5 = 15.6/s).
  profile.accessd.workers = user_plane_cores < 0
                                ? std::max(1, vcpus - 1)
                                : std::max(1, vcpus - user_plane_cores);
  return profile;
}

AccessGateway::AccessGateway(sim::Kernel& kernel, common::GatewayId id,
                             AgwProfile profile, sim::Rng rng)
    : kernel_(kernel),
      id_(std::move(id)),
      profile_(profile),
      rng_(rng),
      cpu_(kernel, profile.cpu),
      subscriberdb_([this]() { return rng_.next_u64(); }),
      mobilityd_(profile.ip_block) {
  pipelined_.pipeline().set_local_address(profile_.address);
  sessiond_ = std::make_unique<Sessiond>(kernel_, pipelined_, nullptr);
  accessd_ = std::make_unique<Accessd>(kernel_, &cpu_, subscriberdb_,
                                       policydb_, mobilityd_, *sessiond_,
                                       profile_.accessd);
  // Health plane: every service registers with the gateway's Service303
  // registry; magmad ships the snapshot inside each checkin.
  svc_subscriberdb_ = &status_.register_service("subscriberdb");
  svc_mobilityd_ = &status_.register_service("mobilityd");
  svc_pipelined_ = &status_.register_service("pipelined");
  svc_sessiond_ = &status_.register_service("sessiond");
  svc_accessd_ = &status_.register_service("accessd");
  svc_magmad_ = &status_.register_service("magmad");
  obs::svc_phase(svc_magmad_, "headless");  // until connect_orchestrator
  subscriberdb_.set_status(svc_subscriberdb_);
  mobilityd_.set_status(svc_mobilityd_);
  pipelined_.set_status(svc_pipelined_);
  sessiond_->set_status(svc_sessiond_);
  accessd_->set_status(svc_accessd_);
  // Per-subscriber heavy hitters: attach failures and bearer drops from
  // accessd, bytes/quota rejections and session liveness from sessiond.
  accessd_->set_subscriber_sketches(&subscriber_sketches_);
  sessiond_->set_subscriber_sketches(&subscriber_sketches_);
  // Continuous profiler: attribute user-plane forwarding per direction.
  label_forward_[static_cast<int>(datapath::Direction::kUplink)] =
      cpu_.intern_label("pipelined", "forward_ul");
  label_forward_[static_cast<int>(datapath::Direction::kDownlink)] =
      cpu_.intern_label("pipelined", "forward_dl");
  lte_frontend_ = std::make_unique<LteFrontend>(kernel_, *accessd_,
                                                *sessiond_, profile_.address);
  nr_frontend_ = std::make_unique<NrFrontend>(kernel_, *accessd_, *sessiond_,
                                              profile_.address);
  wifi_frontend_ =
      std::make_unique<WifiFrontend>(kernel_, *accessd_, *sessiond_);
  // Ship WARN/ERROR log lines as structured events. The logger is global,
  // so every gateway of a multi-AGW simulation records process-wide
  // warnings under its own id — the orchestrator dedups by message if it
  // cares; losing attribution beats losing the warning.
  log_hook_id_ = common::Logger::instance().add_event_hook(
      [this](common::LogLevel level, std::string_view component,
             std::string_view message) {
        obs::Event event;
        event.time = kernel_.now();
        event.gateway_id = id_.value;
        event.type = "log";
        event.source = std::string(component);
        event.message = std::string(message);
        event.severity = level >= common::LogLevel::kError
                             ? obs::EventSeverity::kError
                             : obs::EventSeverity::kWarn;
        event.trace = obs::current_context(tracer_);
        events_.push(std::move(event));
      });
  start_service_loops();
}

AccessGateway::~AccessGateway() {
  common::Logger::instance().remove_event_hook(log_hook_id_);
  if (tracer_ != nullptr && finish_hook_id_ != 0) {
    tracer_->remove_finish_hook(finish_hook_id_);
  }
}

void AccessGateway::set_tracer(obs::Tracer* tracer) {
  if (tracer_ == tracer) return;
  if (tracer_ != nullptr && finish_hook_id_ != 0) {
    tracer_->remove_finish_hook(finish_hook_id_);
    finish_hook_id_ = 0;
  }
  tail_sampler_.reset();  // bound to the old tracer's ring
  tracer_ = tracer;
  // Spans are opt-in per task, but wait attribution (runq/cpu charges onto
  // whatever span submitted the work) should follow every charge.
  cpu_.set_wait_tracer(tracer_);
  accessd_->set_observability(tracer_, id_.value);
  sessiond_->set_observability(tracer_, id_.value);
  lte_frontend_->set_observability(tracer_, id_.value, &events_);
  if (orc8r_node_ != nullptr) orc8r_node_->set_tracer(tracer_, id_.value);
  if (ocs_node_ != nullptr) ocs_node_->set_tracer(tracer_, id_.value);
  if (tracer_ == nullptr) return;
  tail_sampler_ =
      std::make_unique<obs::TailSampler>(kernel_, *tracer_, tail_config_);
  tail_sampler_->set_node_filter(id_.value);
  // Aggregate every finished stage span of this gateway into a latency
  // histogram; magmad ships the buckets with each metrics tick.
  finish_hook_id_ = tracer_->add_finish_hook([this](
                                                 const obs::SpanRecord& span) {
    if (span.node != id_.value || span.kind != obs::SpanKind::kInternal) {
      return;
    }
    // Each bucket keeps the latest landing span as its exemplar and pins
    // that trace (refcounted) so a p99 query at metricsd can pivot to a
    // retained trace — today only errors would pin it. Pin-new before
    // unpin-old keeps the refcount nonzero when both are the same trace.
    obs::Histogram& hist =
        latency_hist_["span_" + span.service + "_" + span.name + "_s"];
    const std::uint64_t displaced =
        hist.observe(sim::to_seconds(span.duration()), span.trace_id);
    if (span.trace_id != 0) {
      tracer_->pin(span.trace_id);
      tracer_->unpin(displaced);
    }
  });
}

void AccessGateway::start_service_loops() {
  kernel_.schedule(Sessiond::kPollInterval, [this]() {
    sessiond_->poll_usage();
    start_service_loops();
  });
}

void AccessGateway::connect_orchestrator(net::Channel& channel,
                                         MagmadConfig magmad_config) {
  control_transport_ = dynamic_cast<net::ReliableChannel*>(&channel);
  orc8r_node_ = std::make_unique<rpc::RpcNode>(kernel_, channel,
                                               id_.value + "-orc8r-client");
  if (tracer_ != nullptr) orc8r_node_->set_tracer(tracer_, id_.value);
  orc8r_node_->set_wait_attribution(&cpu_);
  magmad_ = std::make_unique<Magmad>(
      kernel_, id_.value, orc8r_node_.get(), subscriberdb_, policydb_,
      [this]() { return checkpoint(); },
      [this]() { return telemetry_snapshot(); }, magmad_config, &events_,
      [this]() { return histogram_snapshot(); },
      [this]() { return status_.snapshot(); });
  magmad_->set_trace_source([this]() {
    return tail_sampler_ != nullptr ? tail_sampler_->drain_ready()
                                    : std::vector<obs::TraceSummary>{};
  });
  magmad_->set_sketch_source([this]() {
    return subscriber_sketches_.snapshot(id_.value, kernel_.now());
  });
  // Fleet tail budget: checkin responses can reassign the sampler's
  // keep-per-op K. Remember it in tail_config_ too, so a sampler rebuilt by
  // a later set_tracer() keeps the assigned budget.
  magmad_->set_tail_budget_sink([this](std::size_t keep) {
    tail_config_.keep_per_op = keep;
    if (tail_sampler_ != nullptr) tail_sampler_->set_keep_per_op(keep);
  });
  magmad_->set_status(svc_magmad_);
}

void AccessGateway::connect_ocs(net::Channel& channel) {
  ocs_node_ = std::make_unique<rpc::RpcNode>(kernel_, channel,
                                             id_.value + "-ocs-client");
  if (tracer_ != nullptr) ocs_node_->set_tracer(tracer_, id_.value);
  ocs_node_->set_wait_attribution(&cpu_);
  sessiond_->set_ocs(ocs_node_.get());
}

// ---------------------------------------------------------------------------
// User plane
// ---------------------------------------------------------------------------

void AccessGateway::ingress_from_ran(datapath::PacketBatch batch) {
  ingress(std::move(batch), datapath::Direction::kUplink);
}

void AccessGateway::ingress_from_internet(datapath::PacketBatch batch) {
  ingress(std::move(batch), datapath::Direction::kDownlink);
}

void AccessGateway::ingress(datapath::PacketBatch batch,
                            datapath::Direction dir) {
  ++up_stats_.offered_batches;
  const std::uint64_t bytes = batch.bytes();
  const std::uint64_t count = batch.count;
  up_stats_.offered_bytes += bytes;

  if (user_queue_depth_ >= profile_.user_queue_max) {
    up_stats_.dropped_overload_bytes += bytes;
    return;
  }

  const double cost =
      static_cast<double>(count) * profile_.user_cost_per_packet;
  ++user_queue_depth_;
  const bool accepted = cpu_.submit(
      sim::WorkClass::kUser, label_forward_[static_cast<int>(dir)], cost,
      [this, batch = std::move(batch), dir, count]() mutable {
        --user_queue_depth_;
        datapath::PipelineResult result = pipelined_.pipeline().process_batch(
            std::move(batch), dir, kernel_.now());
        if (result.verdict == datapath::Verdict::kForwarded &&
            result.out_port == datapath::kPortLocal) {
          // Downlink for an ECM-IDLE UE: trigger paging (§3.1 — the AGW is
          // the mobility anchor; this never leaves the gateway).
          const auto imsi = mobilityd_.reverse_lookup(result.packet.ip.dst);
          if (imsi.has_value()) lte_frontend_->page(*imsi);
          return;
        }
        if (result.verdict == datapath::Verdict::kForwarded) {
          // out_count can be below the ingress count: meters drop the
          // non-conforming tail of a batch inside the pipeline.
          const std::uint64_t out_bytes =
              result.out_count *
              static_cast<std::uint64_t>(result.packet.wire_size());
          up_stats_.forwarded_bytes += out_bytes;
          up_stats_.forwarded_packets += result.out_count;
          if (egress_) {
            egress_(result.out_port, datapath::PacketBatch{
                                         std::move(result.packet),
                                         result.out_count});
          }
        }
      });
  if (!accepted) {
    --user_queue_depth_;
    up_stats_.dropped_overload_bytes += bytes;
  }
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

common::Bytes AccessGateway::checkpoint() const {
  rpc::Writer w;
  // The UE address block is part of the gateway's identity: a backup
  // instance must keep handing out (and honouring) the same addresses.
  w.u32(profile_.ip_block.base.addr);
  w.u8(profile_.ip_block.prefix_len);
  w.bytes(subscriberdb_.snapshot());
  w.bytes(policydb_.snapshot());
  w.bytes(sessiond_->checkpoint());
  return std::move(w).take();
}

common::Status AccessGateway::restore(common::BytesView image) {
  rpc::Reader r(image);
  IpBlock block;
  block.base.addr = r.u32();
  block.prefix_len = r.u8();
  const common::Bytes subs = r.bytes();
  const common::Bytes policies = r.bytes();
  const common::Bytes sessions = r.bytes();
  if (!r.ok() || !r.at_end() || block.prefix_len > 32) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt AGW checkpoint"};
  }
  if (auto status = subscriberdb_.restore(subs); !status.ok()) return status;
  if (auto status = policydb_.restore(policies); !status.ok()) return status;
  if (auto status = sessiond_->restore(sessions); !status.ok()) return status;
  // Take over the failed instance's address space and its assignments.
  profile_.ip_block = block;
  mobilityd_ = Mobilityd(block);
  mobilityd_.set_status(svc_mobilityd_);
  for (const common::Imsi& imsi : sessiond_->active_imsis()) {
    const SessionRecord* session = sessiond_->find(imsi);
    if (session != nullptr) {
      mobilityd_.adopt(imsi, session->flows.ue_ip).ok();
    }
  }
  return common::Status::Ok();
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

std::vector<orc8r::MetricSample> AccessGateway::telemetry_snapshot() {
  const sim::TimePoint now = kernel_.now();
  std::vector<orc8r::MetricSample> samples;
  auto gauge = [&](const std::string& name, double value) {
    samples.push_back(orc8r::MetricSample{id_.value, name, value, now});
  };
  gauge("active_sessions", static_cast<double>(sessiond_->active_sessions()));
  const std::uint64_t forwarded = up_stats_.forwarded_bytes;
  gauge("forwarded_bytes_delta",
        static_cast<double>(forwarded - last_reported_forwarded_bytes_));
  last_reported_forwarded_bytes_ = forwarded;
  gauge("cpu_control_busy_s",
        sim::to_seconds(
            cpu_.stats().busy_ns[static_cast<int>(sim::WorkClass::kControl)]));
  gauge("cpu_user_busy_s",
        sim::to_seconds(
            cpu_.stats().busy_ns[static_cast<int>(sim::WorkClass::kUser)]));
  // Continuous profiler: cumulative on-CPU seconds per service and per
  // core (the fig6/fig7 per-service breakdown, shipped continuously).
  for (const auto& [service, seconds] : cpu_.service_busy_seconds()) {
    gauge("cpu_service_busy_s_" + service, seconds);
  }
  // Off-CPU counterpart: cumulative wait (run-queue + blocked-on-RPC +
  // timer) per service, so fleet dashboards can plot on-CPU vs off-CPU per
  // service without shipping every label.
  {
    std::map<std::string, double> wait_s;
    for (const sim::TaskLabelStats& label : cpu_.labels()) {
      wait_s[label.service] +=
          sim::to_seconds(label.queue_wait_ns + label.rpc_wait_ns +
                          label.timer_wait_ns);
    }
    for (const auto& [service, seconds] : wait_s) {
      if (seconds > 0) gauge("cpu_service_wait_s_" + service, seconds);
    }
  }
  // Backhaul health as seen from this gateway: transmit-queue depth and
  // cumulative drops per direction (uplink = toward the orchestrator).
  if (backhaul_ul_ != nullptr) {
    gauge("link_queue_depth_ul",
          static_cast<double>(backhaul_ul_->queue_depth()));
    gauge("link_dropped_packets_ul",
          static_cast<double>(backhaul_ul_->stats().packets_dropped));
  }
  if (backhaul_dl_ != nullptr) {
    gauge("link_queue_depth_dl",
          static_cast<double>(backhaul_dl_->queue_depth()));
    gauge("link_dropped_packets_dl",
          static_cast<double>(backhaul_dl_->stats().packets_dropped));
  }
  {
    const std::vector<sim::Duration> per_core = cpu_.core_busy_ns();
    for (std::size_t core = 0; core < per_core.size(); ++core) {
      gauge("cpu_core" + std::to_string(core) + "_busy_s",
            sim::to_seconds(per_core[core]));
    }
  }
  // Host observability: how hard the simulator itself is working on behalf
  // of this run. Events/queue depth come from the shared kernel; the alloc
  // counter is process-wide (global operator-new hook) — both are real-host
  // facts that never feed back into sim behavior.
  gauge("sim_events_dispatched", static_cast<double>(kernel_.executed_events()));
  gauge("sim_event_queue_hwm",
        static_cast<double>(kernel_.stats().queue_hwm));
  gauge("host_alloc_bytes",
        static_cast<double>(obs::HostProfiler::process_alloc_bytes()));
  // Freelist-discipline guards: a closure too fat for the kernel's inline
  // event storage, or a pool overflowing to the heap, is a host perf
  // regression — both ship as cumulative gauges with default growth alerts.
  gauge("sim_closure_heap_fallbacks",
        static_cast<double>(kernel_.stats().closure_heap_fallbacks));
  gauge("pool_heap_fallbacks",
        static_cast<double>(common::total_pool_heap_fallbacks()));
  const AccessdStats& acc = accessd_->stats();
  gauge("attaches_completed",
        static_cast<double>(acc.attach_completed[0] + acc.attach_completed[1] +
                            acc.attach_completed[2]));
  gauge("accessd_overload_rejections",
        static_cast<double>(acc.overload_rejections));
  gauge("accessd_queued_work", static_cast<double>(accessd_->queued_work()));
  if (control_transport_ != nullptr) {
    // Transport health of the orchestrator control channel (§3.1: control
    // traffic must survive degraded backhaul; a too-short RTO shows up here
    // as spurious retransmissions at the far end and retransmissions at
    // ours).
    const net::ReliableStats& t = control_transport_->stats();
    gauge("transport_srtt_s", sim::to_seconds(t.srtt));
    gauge("transport_rto_s", sim::to_seconds(t.rto));
    gauge("transport_retransmissions", static_cast<double>(t.retransmissions));
    gauge("transport_fast_retransmits",
          static_cast<double>(t.fast_retransmits));
    gauge("transport_spurious_retransmits",
          static_cast<double>(t.spurious_retransmits));
    gauge("transport_send_failures", static_cast<double>(t.failures));
    gauge("transport_resets", static_cast<double>(t.resets));
    // Congestion/SACK health: a satellite gateway pushing config shows a
    // cwnd-limited flight here; growth of rto_at_cap means the channel is
    // pinned at max_rto (the backhaul is effectively down — alertable).
    gauge("transport_cwnd", static_cast<double>(t.cwnd));
    gauge("transport_ssthresh", static_cast<double>(t.ssthresh));
    gauge("transport_flight_size", static_cast<double>(t.flight_size));
    gauge("transport_sack_retransmits",
          static_cast<double>(t.sack_retransmits));
    gauge("transport_rto_at_cap", static_cast<double>(t.rto_at_cap));
    gauge("transport_reorder_backlog",
          static_cast<double>(control_transport_->reorder_backlog()));
    gauge("transport_send_backlog",
          static_cast<double>(control_transport_->send_backlog()));
    gauge("magmad_telemetry_sheds",
          static_cast<double>(magmad_->stats().telemetry_sheds));
    gauge("magmad_histogram_buckets_shipped",
          static_cast<double>(magmad_->stats().histogram_buckets_shipped));
    gauge("magmad_trace_summaries_shipped",
          static_cast<double>(magmad_->stats().trace_summaries_shipped));
  }
  return samples;
}

std::vector<orc8r::HistogramSnapshot> AccessGateway::histogram_snapshot()
    const {
  std::vector<orc8r::HistogramSnapshot> snapshots;
  snapshots.reserve(latency_hist_.size() + 2);
  auto add = [&](const std::string& name, const obs::Histogram& hist) {
    orc8r::HistogramSnapshot snap;
    snap.gateway_id = id_.value;
    snap.name = name;
    snap.bounds = hist.bounds();
    snap.counts = hist.counts();
    const std::vector<std::uint64_t>& exemplars = hist.exemplars();
    for (std::size_t b = 0; b < exemplars.size(); ++b) {
      if (exemplars[b] != 0) {
        snap.exemplars.emplace_back(static_cast<std::uint32_t>(b),
                                    exemplars[b]);
      }
    }
    snap.sum = hist.sum();
    snap.time = kernel_.now();
    snapshots.push_back(std::move(snap));
  };
  for (const auto& [name, hist] : latency_hist_) add(name, hist);
  // Profiler run-queue wait distributions (how long work sat runnable
  // before a core picked it up — the queueing half of Figure 6's latency).
  if (cpu_.queue_wait(sim::WorkClass::kControl).count() > 0) {
    add("cpu_runq_wait_control_s", cpu_.queue_wait(sim::WorkClass::kControl));
  }
  if (cpu_.queue_wait(sim::WorkClass::kUser).count() > 0) {
    add("cpu_runq_wait_user_s", cpu_.queue_wait(sim::WorkClass::kUser));
  }
  return snapshots;
}

}  // namespace magma::agw
