#include "agw/magmad.h"

#include "common/log.h"
#include "rpc/wire.h"

namespace magma::agw {

Magmad::Magmad(sim::Kernel& kernel, std::string gateway_id,
               rpc::RpcNode* orc8r, SubscriberDb& subscribers,
               PolicyDb& policies,
               std::function<common::Bytes()> checkpoint_source,
               std::function<std::vector<orc8r::MetricSample>()> metric_source,
               MagmadConfig config, obs::EventBuffer* events,
               std::function<std::vector<orc8r::HistogramSnapshot>()>
                   histogram_source)
    : kernel_(kernel),
      gateway_id_(std::move(gateway_id)),
      orc8r_(orc8r),
      subscribers_(subscribers),
      policies_(policies),
      checkpoint_source_(std::move(checkpoint_source)),
      metric_source_(std::move(metric_source)),
      config_(config),
      events_(events),
      histogram_source_(std::move(histogram_source)) {}

void Magmad::start() {
  if (started_ || orc8r_ == nullptr) return;
  started_ = true;
  config_tick();
  checkin_tick();
  metrics_tick();
  checkpoint_tick();
  if (events_ != nullptr) event_tick();
}

void Magmad::apply(const orc8r::DesiredState& state) {
  subscribers_.replace_all(state.subscribers);
  policies_.replace_all(state.policies);
  synced_version_ = state.version;
  ++stats_.config_syncs_applied;
}

void Magmad::sync_config_now(std::function<void(bool)> done) {
  if (orc8r_ == nullptr) {
    if (done) done(false);
    return;
  }
  orc8r::GetUpdatesRequest req;
  req.gateway_id = gateway_id_;
  req.have_version = synced_version_;
  orc8r_->call(
      orc8r::kStreamerService, orc8r::kGetUpdates, req.serialize(),
      config_.rpc_deadline, [this, done](rpc::Result<rpc::Bytes> result) {
        if (!result.ok()) {
          ++stats_.sync_failures;
          reachable_ = false;
          if (done) done(false);
          return;
        }
        reachable_ = true;
        auto state = orc8r::DesiredState::deserialize(result.value());
        if (!state.ok()) {
          ++stats_.sync_failures;
          if (done) done(false);
          return;
        }
        if (state.value().changed) {
          apply(state.value());
          if (done) done(true);
        } else {
          ++stats_.config_polls_noop;
          if (done) done(false);
        }
      });
}

void Magmad::config_tick() {
  sync_config_now();
  kernel_.schedule(config_.config_poll_interval, [this]() { config_tick(); });
}

void Magmad::checkin_tick() {
  rpc::Writer w;
  w.str(gateway_id_);
  w.str("agw");
  orc8r_->call(orc8r::kBootstrapperService, orc8r::kCheckin,
               std::move(w).take(), config_.rpc_deadline,
               [this](rpc::Result<rpc::Bytes> result) {
                 if (result.ok()) {
                   ++stats_.checkins_ok;
                   reachable_ = true;
                 } else {
                   ++stats_.checkin_failures;
                   reachable_ = false;
                 }
               });
  kernel_.schedule(config_.checkin_interval, [this]() { checkin_tick(); });
}

void Magmad::metrics_tick() {
  const std::vector<orc8r::MetricSample> samples = metric_source_();
  if (!samples.empty()) {
    // Best effort (§3.4 metrics state): one attempt, short deadline, losses
    // tolerated.
    orc8r_->call(orc8r::kMetricsService, orc8r::kReportMetrics,
                 orc8r::encode_metric_report(samples), config_.rpc_deadline,
                 [this](rpc::Result<rpc::Bytes> result) {
                   if (result.ok()) {
                     ++stats_.metric_reports_sent;
                   } else {
                     ++stats_.metric_reports_lost;
                   }
                 });
  }
  if (histogram_source_) {
    const std::vector<orc8r::HistogramSnapshot> snapshots = histogram_source_();
    if (!snapshots.empty()) {
      orc8r_->call(orc8r::kMetricsService, orc8r::kReportHistograms,
                   orc8r::encode_histogram_report(snapshots),
                   config_.rpc_deadline,
                   [this](rpc::Result<rpc::Bytes> result) {
                     if (result.ok()) {
                       ++stats_.histogram_reports_sent;
                     } else {
                       ++stats_.histogram_reports_lost;
                     }
                   });
    }
  }
  kernel_.schedule(config_.metrics_interval, [this]() { metrics_tick(); });
}

void Magmad::event_tick() {
  std::vector<obs::Event> batch = events_->take(config_.event_batch_max);
  if (!batch.empty()) {
    const std::size_t count = batch.size();
    // Parent the shipping RPC under the first traced event so the eventd
    // leg shows up in that attach's span tree.
    obs::TraceContext parent{};
    for (const obs::Event& e : batch) {
      if (e.trace.valid()) {
        parent = e.trace;
        break;
      }
    }
    const obs::Tracer::Scope scope(orc8r_->tracer(), parent);
    // Best effort, like metrics: one attempt, losses counted, nothing
    // re-queued (re-queueing under backhaul loss would just churn the
    // bounded buffer).
    orc8r_->call(orc8r::kEventService, orc8r::kLogEvents,
                 obs::encode_event_report(batch), config_.rpc_deadline,
                 [this, count](rpc::Result<rpc::Bytes> result) {
                   if (result.ok()) {
                     stats_.events_shipped += count;
                   } else {
                     stats_.events_lost += count;
                   }
                 });
  }
  kernel_.schedule(config_.event_flush_interval, [this]() { event_tick(); });
}

void Magmad::checkpoint_tick() {
  rpc::Writer w;
  w.str(gateway_id_);
  w.bytes(checkpoint_source_());
  orc8r_->call(orc8r::kStateService, orc8r::kReportCheckpoint,
               std::move(w).take(), config_.rpc_deadline,
               [this](rpc::Result<rpc::Bytes> result) {
                 if (result.ok()) {
                   ++stats_.checkpoints_shipped;
                 } else {
                   ++stats_.checkpoint_failures;
                 }
               });
  kernel_.schedule(config_.checkpoint_interval,
                   [this]() { checkpoint_tick(); });
}

}  // namespace magma::agw
