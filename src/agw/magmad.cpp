#include "agw/magmad.h"

#include <algorithm>

#include "common/log.h"
#include "obs/host_profiler.h"
#include "rpc/wire.h"

namespace magma::agw {

Magmad::Magmad(sim::Kernel& kernel, std::string gateway_id,
               rpc::RpcNode* orc8r, SubscriberDb& subscribers,
               PolicyDb& policies,
               std::function<common::Bytes()> checkpoint_source,
               std::function<std::vector<orc8r::MetricSample>()> metric_source,
               MagmadConfig config, obs::EventBuffer* events,
               std::function<std::vector<orc8r::HistogramSnapshot>()>
                   histogram_source,
               std::function<std::vector<obs::ServiceStatus>()> status_source)
    : kernel_(kernel),
      gateway_id_(std::move(gateway_id)),
      orc8r_(orc8r),
      subscribers_(subscribers),
      policies_(policies),
      checkpoint_source_(std::move(checkpoint_source)),
      metric_source_(std::move(metric_source)),
      config_(config),
      events_(events),
      histogram_source_(std::move(histogram_source)),
      status_source_(std::move(status_source)) {}

void Magmad::set_status(obs::Service303* status) {
  status_ = status;
  obs::svc_phase(status_, reachable_ ? "connected" : "headless");
}

void Magmad::set_reachable(bool up) {
  reachable_ = up;
  obs::svc_phase(status_, up ? "connected" : "headless");
}

void Magmad::start() {
  if (started_ || orc8r_ == nullptr) return;
  started_ = true;
  config_tick();
  checkin_tick();
  metrics_tick();
  checkpoint_tick();
  if (events_ != nullptr) event_tick();
}

void Magmad::apply(const orc8r::DesiredState& state) {
  MAGMA_HOST_SCOPE("magmad", "apply_full");
  subscribers_.replace_all(state.subscribers);
  policies_.replace_all(state.policies);
  synced_version_ = state.version;
  ++stats_.config_syncs_applied;
}

bool Magmad::apply_delta(const orc8r::DesiredUpdate& update) {
  MAGMA_HOST_SCOPE("magmad", "apply_delta");
  for (const orc8r::DeltaEntry& e : update.entries) {
    if (e.kind == orc8r::DeltaEntry::Kind::kSubscriber) {
      if (e.remove) {
        subscribers_.remove(common::Imsi{e.key});
      } else {
        auto sub = SubscriberData::deserialize(e.blob);
        if (!sub.ok()) return false;
        subscribers_.upsert(std::move(sub).take());
      }
    } else {
      if (e.remove) {
        policies_.remove(e.key);
      } else {
        auto policy = core::Policy::deserialize(e.blob);
        if (!policy.ok()) return false;
        policies_.upsert(std::move(policy).take());
      }
    }
    ++stats_.delta_entries_applied;
  }
  synced_version_ = update.version;
  synced_epoch_ = update.epoch;
  ++stats_.config_delta_syncs;
  ++stats_.config_syncs_applied;
  return true;
}

void Magmad::handle_update(const orc8r::DesiredUpdate& update,
                           const std::function<void(bool)>& done) {
  switch (update.mode) {
    case orc8r::SyncMode::kNoop:
      ++stats_.config_polls_noop;
      if (done) done(false);
      return;
    case orc8r::SyncMode::kFull: {
      auto state = orc8r::DesiredState::deserialize(update.full);
      if (!state.ok()) {
        ++stats_.sync_failures;
        obs::svc_error(status_, "config sync: " + state.error().message);
        if (done) done(false);
        return;
      }
      // The orchestrator is the source of truth: a full sync is applied
      // even when its version goes backwards (restart with an older or
      // rebuilt store) — converging on the authoritative state beats
      // wedging on stale-but-newer local state.
      if (synced_epoch_ != 0 && update.epoch != synced_epoch_) {
        ++stats_.epoch_resyncs;
      }
      if (update.epoch == synced_epoch_ && update.version < synced_version_) {
        ++stats_.sync_regressions;
      }
      apply(state.value());
      synced_version_ = update.version;
      synced_epoch_ = update.epoch;
      ++stats_.config_full_syncs;
      if (done) done(true);
      return;
    }
    case orc8r::SyncMode::kDelta: {
      if (update.epoch != synced_epoch_) {
        // Deltas from another incarnation must never splice onto our
        // state; discard and force a full resync.
        ++stats_.sync_failures;
        synced_version_ = 0;
        synced_epoch_ = 0;
        obs::svc_error(status_, "config sync: delta from foreign epoch");
        if (done) done(false);
        return;
      }
      if (!apply_delta(update)) {
        // A corrupt entry may have been half-applied; resetting the synced
        // state makes the next poll a full sync — the idempotent
        // replace_all repairs whatever the partial delta left behind.
        ++stats_.sync_failures;
        synced_version_ = 0;
        synced_epoch_ = 0;
        obs::svc_error(status_, "config sync: corrupt delta entry");
        if (done) done(false);
        return;
      }
      if (done) done(true);
      return;
    }
  }
  if (done) done(false);
}

void Magmad::sync_config_now(std::function<void(bool)> done) {
  if (orc8r_ == nullptr) {
    if (done) done(false);
    return;
  }
  orc8r::GetUpdatesRequest req;
  req.gateway_id = gateway_id_;
  req.have_version = synced_version_;
  req.have_epoch = synced_epoch_;
  obs::svc_request(status_);
  orc8r_->call(
      orc8r::kStreamerService, orc8r::kGetUpdates, req.serialize(),
      config_.sync_rpc_deadline, [this, done](rpc::Result<rpc::Bytes> result) {
        if (!result.ok()) {
          ++stats_.sync_failures;
          if (result.error().code == rpc::ErrorCode::kDeadlineExceeded) {
            obs::svc_deadline(status_);
          }
          obs::svc_error(status_, "config sync: " + result.error().message);
          set_reachable(false);
          if (done) done(false);
          return;
        }
        set_reachable(true);
        auto update = orc8r::DesiredUpdate::deserialize(result.value());
        if (!update.ok()) {
          ++stats_.sync_failures;
          obs::svc_error(status_, "config sync: " + update.error().message);
          if (done) done(false);
          return;
        }
        handle_update(update.value(), done);
      });
}

void Magmad::config_tick() {
  if (wedged_) {
    kernel_.schedule(config_.config_poll_interval, [this]() { config_tick(); });
    return;
  }
  sync_config_now();
  kernel_.schedule(config_.config_poll_interval, [this]() { config_tick(); });
}

void Magmad::checkin_tick() {
  if (wedged_) {
    kernel_.schedule(config_.checkin_interval, [this]() { checkin_tick(); });
    return;
  }
  rpc::Writer w;
  w.str(gateway_id_);
  w.str("agw");
  // The heartbeat carries the gateway's Service303 snapshot — orc8r statusd
  // keys gateway health off these arriving on time.
  w.bytes(obs::encode_gateway_status(
      status_source_ ? status_source_() : std::vector<obs::ServiceStatus>{}));
  obs::svc_request(status_);
  orc8r_->call(orc8r::kBootstrapperService, orc8r::kCheckin,
               std::move(w).take(), config_.rpc_deadline,
               [this](rpc::Result<rpc::Bytes> result) {
                 if (result.ok()) {
                   ++stats_.checkins_ok;
                   set_reachable(true);
                   // The ack carries the fleet tail-sampling budget: this
                   // gateway's assigned keep-per-op K (0: unmanaged).
                   rpc::Reader r(result.value());
                   (void)r.boolean();
                   const std::uint64_t keep = r.u64();
                   if (r.ok() && keep != 0 && keep != assigned_tail_keep_) {
                     assigned_tail_keep_ = keep;
                     ++stats_.tail_budget_updates;
                     if (tail_budget_sink_) {
                       tail_budget_sink_(static_cast<std::size_t>(keep));
                     }
                   }
                 } else {
                   ++stats_.checkin_failures;
                   if (result.error().code ==
                       rpc::ErrorCode::kDeadlineExceeded) {
                     obs::svc_deadline(status_);
                   }
                   obs::svc_error(status_,
                                  "checkin: " + result.error().message);
                   set_reachable(false);
                 }
               });
  kernel_.schedule(config_.checkin_interval, [this]() { checkin_tick(); });
}

bool Magmad::shed_telemetry() {
  if (orc8r_->transport_backlog() < config_.telemetry_backpressure) {
    return false;
  }
  ++stats_.telemetry_sheds;
  return true;
}

std::vector<orc8r::HistogramSnapshot> Magmad::prepare_histogram_report(
    std::vector<orc8r::HistogramSnapshot> full) {
  std::vector<orc8r::HistogramSnapshot> out;
  out.reserve(full.size());
  for (orc8r::HistogramSnapshot& snapshot : full) {
    auto it = last_shipped_counts_.find(snapshot.name);
    if (it == last_shipped_counts_.end() ||
        it->second.size() != snapshot.counts.size()) {
      // First sight of this histogram (or a bucket-layout change): ship the
      // full snapshot so metricsd has a base for later deltas.
      ++stats_.histogram_full_snapshots;
      stats_.histogram_buckets_shipped += snapshot.counts.size();
      last_shipped_counts_[snapshot.name] = snapshot.counts;
      last_shipped_exemplars_[snapshot.name] = snapshot.exemplars;
      out.push_back(std::move(snapshot));
      continue;
    }
    std::vector<std::pair<std::uint32_t, std::uint64_t>> changed;
    for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
      if (snapshot.counts[i] != it->second[i]) {
        changed.emplace_back(static_cast<std::uint32_t>(i),
                             snapshot.counts[i]);
      }
    }
    // Exemplars ride the same delta: only (bucket, trace id) pairs that
    // changed since the last shipped report.
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& last_ex =
        last_shipped_exemplars_[snapshot.name];
    std::vector<std::pair<std::uint32_t, std::uint64_t>> changed_exemplars;
    for (const auto& pair : snapshot.exemplars) {
      if (std::find(last_ex.begin(), last_ex.end(), pair) == last_ex.end()) {
        changed_exemplars.push_back(pair);
      }
    }
    if (changed.empty() && changed_exemplars.empty()) {
      // Nothing observed since the last report — ship nothing at all.
      ++stats_.histogram_unchanged_skips;
      continue;
    }
    ++stats_.histogram_delta_snapshots;
    stats_.histogram_buckets_shipped += changed.size();
    it->second = snapshot.counts;
    last_ex = snapshot.exemplars;
    orc8r::HistogramSnapshot delta;
    delta.gateway_id = std::move(snapshot.gateway_id);
    delta.name = std::move(snapshot.name);
    delta.sum = snapshot.sum;
    delta.time = snapshot.time;
    delta.delta = true;
    delta.changed = std::move(changed);
    delta.exemplars = std::move(changed_exemplars);
    out.push_back(std::move(delta));
  }
  return out;
}

void Magmad::metrics_tick() {
  if (wedged_) {
    kernel_.schedule(config_.metrics_interval, [this]() { metrics_tick(); });
    return;
  }
  if (shed_telemetry()) {
    kernel_.schedule(config_.metrics_interval, [this]() { metrics_tick(); });
    return;
  }
  const std::vector<orc8r::MetricSample> samples = metric_source_();
  if (!samples.empty()) {
    // Best effort (§3.4 metrics state): one attempt, short deadline, losses
    // tolerated.
    obs::svc_request(status_);
    orc8r_->call(orc8r::kMetricsService, orc8r::kReportMetrics,
                 orc8r::encode_metric_report(samples), config_.rpc_deadline,
                 [this](rpc::Result<rpc::Bytes> result) {
                   if (result.ok()) {
                     ++stats_.metric_reports_sent;
                   } else {
                     ++stats_.metric_reports_lost;
                   }
                 });
  }
  if (histogram_source_) {
    std::vector<orc8r::HistogramSnapshot> snapshots =
        prepare_histogram_report(histogram_source_());
    if (!snapshots.empty()) {
      obs::svc_request(status_);
      orc8r_->call(orc8r::kMetricsService, orc8r::kReportHistograms,
                   orc8r::encode_histogram_report(snapshots),
                   config_.rpc_deadline,
                   [this](rpc::Result<rpc::Bytes> result) {
                     if (result.ok()) {
                       ++stats_.histogram_reports_sent;
                     } else {
                       ++stats_.histogram_reports_lost;
                       // Metricsd may have missed the base these deltas were
                       // built on — re-ship everything full next tick.
                       last_shipped_counts_.clear();
                       last_shipped_exemplars_.clear();
                     }
                   });
    }
  }
  if (trace_source_) {
    const std::vector<obs::TraceSummary> summaries = trace_source_();
    if (!summaries.empty()) {
      const std::size_t count = summaries.size();
      obs::svc_request(status_);
      orc8r_->call(orc8r::kMetricsService, orc8r::kReportTraceSummaries,
                   obs::encode_trace_summaries(summaries),
                   config_.rpc_deadline,
                   [this, count](rpc::Result<rpc::Bytes> result) {
                     if (result.ok()) {
                       ++stats_.trace_reports_sent;
                       stats_.trace_summaries_shipped += count;
                     } else {
                       ++stats_.trace_reports_lost;
                     }
                   });
    }
  }
  if (sketch_source_) {
    // Cumulative snapshot, like histograms: a lost report costs nothing,
    // the next tick's snapshot supersedes it.
    obs::svc_request(status_);
    orc8r_->call(orc8r::kMetricsService, orc8r::kReportSketches,
                 obs::sketch::encode_sketch_report(sketch_source_()),
                 config_.rpc_deadline,
                 [this](rpc::Result<rpc::Bytes> result) {
                   if (result.ok()) {
                     ++stats_.sketch_reports_sent;
                   } else {
                     ++stats_.sketch_reports_lost;
                   }
                 });
  }
  kernel_.schedule(config_.metrics_interval, [this]() { metrics_tick(); });
}

void Magmad::event_tick() {
  if (wedged_) {
    kernel_.schedule(config_.event_flush_interval, [this]() { event_tick(); });
    return;
  }
  // Backpressure-paced drain: ship batches until the buffer is empty or the
  // channel already holds telemetry_backpressure unacked messages. Each
  // batch sent occupies one slot, so the loop self-limits — a deep
  // post-outage buffer catches up a few batches per tick at a rate the
  // congestion window can absorb, while a congested channel sheds entirely
  // and events wait in the bounded buffer (a long backlog only ever costs
  // buffer memory, never channel occupancy).
  while (events_->size() > 0 && !shed_telemetry()) {
    std::vector<obs::Event> batch = events_->take(config_.event_batch_max);
    if (batch.empty()) break;
    const std::size_t count = batch.size();
    // Parent the shipping RPC under the first traced event so the eventd
    // leg shows up in that attach's span tree — and span-link every other
    // traced event in the batch onto the shipping span, so a batch carrying
    // N traces connects all N to this one RPC instead of only the first.
    obs::TraceContext parent{};
    for (const obs::Event& e : batch) {
      if (e.trace.valid()) {
        parent = e.trace;
        break;
      }
    }
    obs::TraceContext ship{};
    obs::Tracer* tracer = orc8r_->tracer();
    if (tracer != nullptr && parent.valid()) {
      ship = tracer->begin("ship_events", "magmad", gateway_id_,
                           obs::SpanKind::kInternal, parent);
      for (const obs::Event& e : batch) {
        if (e.trace.valid()) obs::link_span(tracer, ship, e.trace);
      }
    }
    {
      const obs::Tracer::Scope scope(tracer, ship.valid() ? ship : parent);
      // Best effort, like metrics: one attempt, losses counted, nothing
      // re-queued (re-queueing under backhaul loss would just churn the
      // bounded buffer).
      orc8r_->call(orc8r::kEventService, orc8r::kLogEvents,
                   obs::encode_event_report(batch), config_.rpc_deadline,
                   [this, count](rpc::Result<rpc::Bytes> result) {
                     if (result.ok()) {
                       stats_.events_shipped += count;
                     } else {
                       stats_.events_lost += count;
                     }
                   });
    }
    obs::end_span(tracer, ship);
  }
  // Catch-up cadence: a buffer that still holds events (deep post-outage
  // backlog, or a congested channel we are shedding around) is re-checked
  // every second — a cheap local poll, no channel occupancy — instead of
  // waiting out the full flush interval.
  const sim::Duration next =
      events_->empty() ? config_.event_flush_interval
                       : std::min(config_.event_flush_interval, sim::kSecond);
  kernel_.schedule(next, [this]() { event_tick(); });
}

void Magmad::checkpoint_tick() {
  if (wedged_) {
    kernel_.schedule(config_.checkpoint_interval,
                     [this]() { checkpoint_tick(); });
    return;
  }
  if (shed_telemetry()) {
    kernel_.schedule(config_.checkpoint_interval,
                     [this]() { checkpoint_tick(); });
    return;
  }
  rpc::Writer w;
  w.str(gateway_id_);
  w.bytes(checkpoint_source_());
  obs::svc_request(status_);
  orc8r_->call(orc8r::kStateService, orc8r::kReportCheckpoint,
               std::move(w).take(), config_.rpc_deadline,
               [this](rpc::Result<rpc::Bytes> result) {
                 if (result.ok()) {
                   ++stats_.checkpoints_shipped;
                 } else {
                   ++stats_.checkpoint_failures;
                 }
               });
  kernel_.schedule(config_.checkpoint_interval,
                   [this]() { checkpoint_tick(); });
}

}  // namespace magma::agw
