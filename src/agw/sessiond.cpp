#include "agw/sessiond.h"

#include <algorithm>

#include "common/log.h"
#include "ocs/ocs.h"
#include "rpc/wire.h"

namespace magma::agw {

common::Bytes SessionRecord::serialize() const {
  rpc::Writer w;
  w.u64(id.value);
  w.str(imsi.value);
  w.bytes(flows.serialize());
  w.bytes(policy.serialize());
  w.i64(started);
  w.i64(interval_start);
  w.u64(interval_base_bytes);
  w.u64(used_bytes);
  w.u64(quota_granted);
  w.u64(quota_reported);
  w.boolean(quota_denied);
  return std::move(w).take();
}

common::Result<SessionRecord> SessionRecord::deserialize(
    common::BytesView data) {
  rpc::Reader r(data);
  SessionRecord s;
  s.id.value = r.u64();
  s.imsi.value = r.str();
  auto flows = SessionFlows::deserialize(r.bytes());
  if (!flows.ok()) return flows.error();
  s.flows = std::move(flows).take();
  auto policy = core::Policy::deserialize(r.bytes());
  if (!policy.ok()) return policy.error();
  s.policy = std::move(policy).take();
  s.started = r.i64();
  s.interval_start = r.i64();
  s.interval_base_bytes = r.u64();
  s.used_bytes = r.u64();
  s.quota_granted = r.u64();
  s.quota_reported = r.u64();
  s.quota_denied = r.boolean();
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt session record"};
  }
  return s;
}

Sessiond::Sessiond(sim::Kernel& kernel, Pipelined& pipelined,
                   rpc::RpcNode* ocs)
    : kernel_(kernel), pipelined_(pipelined), ocs_(ocs) {}

void Sessiond::set_observability(obs::Tracer* tracer, std::string node) {
  tracer_ = tracer;
  node_ = std::move(node);
}

common::Result<common::SessionId> Sessiond::create_session(
    const CreateRequest& req) {
  obs::svc_request(status_);
  const obs::TraceContext span =
      obs::begin_span(tracer_, "create_session", "sessiond", node_);
  const obs::Tracer::Scope scope(tracer_, span);
  auto result = do_create_session(req);
  if (!result.ok()) {
    obs::svc_error(status_, result.error().message);
    obs::tag_span(tracer_, span, "error", result.error().message);
  }
  obs::end_span(tracer_, span);
  return result;
}

common::Result<common::SessionId> Sessiond::do_create_session(
    const CreateRequest& req) {
  if (by_imsi_.contains(req.imsi)) {
    // Re-attach: tear down the old session first (the UE context was lost
    // on its side; keeping two sessions would double-count usage). The
    // abnormal teardown counts as a bearer drop for this subscriber.
    if (sketches_ != nullptr) {
      sketches_->record(obs::sketch::SubscriberMetric::kBearerDrops,
                        req.imsi.value, 1,
                        obs::current_context(tracer_).trace_id);
    }
    end_session(req.imsi).ok();
  }

  SessionRecord session;
  session.id = common::SessionId{next_session_id_++};
  session.imsi = req.imsi;
  session.policy = req.policy;
  session.started = kernel_.now();
  session.interval_start = kernel_.now();

  const core::PolicyTier& tier = session.policy.tier_at(0);
  SessionFlows flows;
  flows.cookie = session.id.value;
  flows.ue_ip = req.ue_ip;
  flows.tunneled = req.tunneled;
  flows.agw_teid_ul = req.agw_teid_ul;
  flows.enb_teid_dl = req.enb_teid_dl;
  flows.enb_address = req.enb_address;
  flows.dl_rate_bps = tier.dl_rate_bps;
  flows.ul_rate_bps = tier.ul_rate_bps;
  flows.blocked = false;
  flows.home_routed = req.home_routed;
  flows.home_teid_remote = req.home_teid_remote;
  flows.home_agg_address = req.home_agg_address;
  flows.home_teid_local = req.home_teid_local;
  session.flows = flows;

  const obs::TraceContext flow_span =
      obs::begin_span(tracer_, "install_flows", "pipelined", node_);
  const common::Status installed =
      pipelined_.install_session(flows, kernel_.now());
  if (!installed.ok()) {
    obs::tag_span(tracer_, flow_span, "error", installed.error().message);
    obs::end_span(tracer_, flow_span);
    return installed.error();
  }
  obs::end_span(tracer_, flow_span);

  by_imsi_[req.imsi] = session;
  ++stats_.sessions_created;

  if (session.policy.charging == core::ChargingMode::kOcsQuota) {
    request_quota(by_imsi_[req.imsi]);
  }
  return session.id;
}

common::Status Sessiond::end_session(const common::Imsi& imsi) {
  obs::svc_request(status_);
  auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no session"};
  }
  SessionRecord& session = it->second;
  // Final usage reading before rules (and their counters) disappear; the
  // outstanding sketch byte delta flushes with it.
  refresh_usage(session);
  flush_sketch_bytes(session);

  if (session.policy.charging == core::ChargingMode::kOcsQuota &&
      ocs_ != nullptr) {
    // Reconcile: report actual usage against everything granted.
    rpc::Writer w;
    w.str(session.imsi.value);
    w.u64(session.quota_granted - session.quota_reported);
    w.u64(session.used_bytes -
          std::min(session.used_bytes, session.quota_reported));
    ocs_->call(ocs::Ocs::kService, ocs::Ocs::kReconcile, std::move(w).take(),
               5 * sim::kSecond, [](rpc::Result<rpc::Bytes>) {
                 // Best effort; a lost reconcile costs the operator at most
                 // the outstanding grant.
               });
  }

  pipelined_.remove_session(session.id.value).ok();
  by_imsi_.erase(it);
  ++stats_.sessions_ended;
  return common::Status::Ok();
}

common::Status Sessiond::update_bearer(const common::Imsi& imsi,
                                       common::Teid enb_teid_dl,
                                       common::Ipv4 enb_address) {
  obs::svc_request(status_);
  auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) {
    obs::svc_error(status_, "update_bearer: no session");
    return common::Error{common::ErrorCode::kNotFound, "no session"};
  }
  SessionFlows desired = it->second.flows;
  desired.enb_teid_dl = enb_teid_dl;
  desired.enb_address = enb_address;
  desired.idle = false;
  apply_flows(it->second, desired);
  return common::Status::Ok();
}

common::Status Sessiond::set_idle(const common::Imsi& imsi, bool idle) {
  obs::svc_request(status_);
  auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no session"};
  }
  SessionFlows desired = it->second.flows;
  desired.idle = idle;
  apply_flows(it->second, desired);
  return common::Status::Ok();
}

const SessionRecord* Sessiond::find(const common::Imsi& imsi) const {
  auto it = by_imsi_.find(imsi);
  return it == by_imsi_.end() ? nullptr : &it->second;
}

std::vector<common::Imsi> Sessiond::active_imsis() const {
  std::vector<common::Imsi> out;
  out.reserve(by_imsi_.size());
  for (const auto& [imsi, _] : by_imsi_) out.push_back(imsi);
  std::sort(out.begin(), out.end());
  return out;
}

void Sessiond::refresh_usage(SessionRecord& session) {
  const std::uint64_t before = session.used_bytes;
  session.used_bytes = session.counter_base_bytes +
                       pipelined_.session_usage(session.id.value).bytes;
  // Usage deltas feed the bytes heavy-hitter sketch: every reading is a
  // delta of the cumulative counter, so the accumulated total equals
  // actual bytes however often usage is refreshed. Offers happen on the
  // sketch-mark cadence, not per poll.
  if (sketches_ != nullptr && session.used_bytes > before) {
    session.pending_sketch_bytes += session.used_bytes - before;
  }
}

void Sessiond::flush_sketch_bytes(SessionRecord& session) {
  if (sketches_ == nullptr || session.pending_sketch_bytes == 0) return;
  sketches_->record(obs::sketch::SubscriberMetric::kBytes,
                    session.imsi.value, session.pending_sketch_bytes);
  session.pending_sketch_bytes = 0;
}

void Sessiond::poll_usage() {
  const sim::TimePoint now = kernel_.now();
  for (auto& [imsi, session] : by_imsi_) {
    refresh_usage(session);
    enforce(session);
    if (sketches_ != nullptr && now >= session.next_sketch_mark) {
      session.next_sketch_mark = now + kSketchMarkInterval;
      sketches_->record_active(imsi.value, now);
      flush_sketch_bytes(session);
    }
  }
}

void Sessiond::apply_flows(SessionRecord& session,
                           const SessionFlows& desired) {
  if (session.flows == desired) return;
  // Reinstalling zeroes the flow counters; fold the live reading into the
  // base first so cumulative usage is preserved.
  refresh_usage(session);
  session.counter_base_bytes = session.used_bytes;
  pipelined_.install_session(desired, kernel_.now()).ok();
  session.flows = desired;
}

void Sessiond::enforce(SessionRecord& session) {
  const core::Policy& policy = session.policy;

  // Accounting interval rollover resets tier position and caps.
  if (policy.interval_ns > 0 &&
      kernel_.now() - session.interval_start >= policy.interval_ns) {
    session.interval_start = kernel_.now();
    session.interval_base_bytes = session.used_bytes;
  }
  const std::uint64_t used = session.used_in_interval();

  SessionFlows desired = session.flows;
  const core::PolicyTier& tier = policy.tier_at(used);
  if (desired.dl_rate_bps != tier.dl_rate_bps ||
      desired.ul_rate_bps != tier.ul_rate_bps) {
    ++stats_.tier_transitions;
    desired.dl_rate_bps = tier.dl_rate_bps;
    desired.ul_rate_bps = tier.ul_rate_bps;
  }

  bool blocked = false;
  switch (policy.charging) {
    case core::ChargingMode::kUnmetered:
      break;
    case core::ChargingMode::kCapped: {
      const std::uint64_t cap = policy.tiers.back().until_usage_bytes;
      if (cap > 0 && used >= cap) {
        blocked = true;
        if (!session.flows.blocked) {
          ++stats_.caps_enforced;
          if (sketches_ != nullptr) {
            sketches_->record(obs::sketch::SubscriberMetric::kQuotaRejections,
                              session.imsi.value);
          }
        }
      }
      break;
    }
    case core::ChargingMode::kOcsQuota: {
      if (session.used_bytes >= session.quota_granted) {
        blocked = session.quota_denied;
        if (!session.quota_denied) request_quota(session);
      } else if (session.quota_granted - session.used_bytes <
                 policy.quota_bytes / 5) {
        // Nearing the end of the grant: top up proactively (§3.4).
        request_quota(session);
      }
      break;
    }
  }
  desired.blocked = blocked;
  apply_flows(session, desired);
}

void Sessiond::request_quota(SessionRecord& session) {
  if (ocs_ == nullptr || session.quota_request_inflight ||
      session.quota_denied) {
    return;
  }
  session.quota_request_inflight = true;
  ++stats_.quota_requests;

  rpc::Writer w;
  w.str(session.imsi.value);
  w.u64(session.policy.quota_bytes);
  const common::Imsi imsi = session.imsi;
  ocs_->call(
      ocs::Ocs::kService, ocs::Ocs::kRequestQuota, std::move(w).take(),
      5 * sim::kSecond, [this, imsi](rpc::Result<rpc::Bytes> result) {
        auto it = by_imsi_.find(imsi);
        if (it == by_imsi_.end()) return;  // session ended meanwhile
        SessionRecord& session = it->second;
        session.quota_request_inflight = false;
        if (!result.ok()) {
          // Unreachable OCS: fail open until the next poll retries — the
          // availability-over-consistency trade-off of §3.2/§3.4.
          return;
        }
        rpc::Reader r(result.value());
        const std::uint64_t granted = r.u64();
        if (granted == 0) {
          session.quota_denied = true;
          ++stats_.quota_denials;
          if (sketches_ != nullptr) {
            sketches_->record(obs::sketch::SubscriberMetric::kQuotaRejections,
                              imsi.value);
          }
        } else {
          session.quota_granted += granted;
        }
        enforce(session);
      });
}

common::Bytes Sessiond::checkpoint() const {
  rpc::Writer w;
  w.u64(next_session_id_);
  w.u64(by_imsi_.size());
  for (const common::Imsi& imsi : active_imsis()) {
    w.bytes(by_imsi_.at(imsi).serialize());
  }
  return std::move(w).take();
}

common::Status Sessiond::restore(common::BytesView image) {
  rpc::Reader r(image);
  const std::uint64_t next_id = r.u64();
  const std::uint64_t count = r.u64();
  std::unordered_map<common::Imsi, SessionRecord> restored;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto session = SessionRecord::deserialize(r.bytes());
    if (!session.ok()) return session.error();
    restored[session.value().imsi] = std::move(session).take();
  }
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt sessiond checkpoint"};
  }

  next_session_id_ = next_id;
  by_imsi_ = std::move(restored);
  // Reprogram the data plane to match the restored runtime state.
  std::vector<SessionFlows> flows;
  flows.reserve(by_imsi_.size());
  for (auto& [_, session] : by_imsi_) {
    // In-flight quota requests died with the failed instance. Data-plane
    // counters start from zero on this instance, so the checkpointed usage
    // becomes the counter base.
    session.quota_request_inflight = false;
    session.counter_base_bytes = session.used_bytes;
    flows.push_back(session.flows);
  }
  pipelined_.set_desired_sessions(flows, kernel_.now());
  return common::Status::Ok();
}

}  // namespace magma::agw
