#include "agw/accessd.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "crypto/hmac.h"

namespace magma::agw {

using proto::lte::EmmEvent;
using proto::lte::EmmState;

const char* ran_type_name(RanType rat) {
  switch (rat) {
    case RanType::kLte: return "LTE";
    case RanType::kNr5g: return "5G";
    case RanType::kWifi: return "WiFi";
  }
  return "?";
}

Accessd::Accessd(sim::Kernel& kernel, sim::CpuModel* cpu,
                 SubscriberDb& subscribers, PolicyDb& policies,
                 Mobilityd& mobilityd, Sessiond& sessiond,
                 AccessdConfig config)
    : kernel_(kernel),
      cpu_(cpu),
      subscribers_(subscribers),
      policies_(policies),
      mobilityd_(mobilityd),
      sessiond_(sessiond),
      config_(config) {
  if (cpu_ != nullptr) {
    label_begin_ = cpu_->intern_label("accessd", "begin_attach");
    label_verify_ = cpu_->intern_label("accessd", "verify_auth");
    label_establish_ = cpu_->intern_label("accessd", "establish");
    label_detach_ = cpu_->intern_label("accessd", "detach");
    label_resync_ = cpu_->intern_label("accessd", "resync_auth");
  }
}

void Accessd::set_observability(obs::Tracer* tracer, std::string node) {
  tracer_ = tracer;
  node_ = std::move(node);
}

// ---------------------------------------------------------------------------
// Control-plane work scheduling
// ---------------------------------------------------------------------------

void Accessd::submit_work(sim::LabelId label, double cost,
                          obs::TraceContext origin,
                          std::function<void()> logic,
                          std::function<void()> on_reject) {
  obs::svc_request(status_);
  if (work_queue_.size() >= config_.max_queue) {
    ++stats_.overload_rejections;
    obs::svc_error(status_, "control plane overloaded");
    if (on_reject) on_reject();
    return;
  }
  work_queue_.push_back(
      Work{label, cost, origin, kernel_.now(), std::move(logic)});
  pump();
}

void Accessd::pump() {
  while (active_workers_ < config_.workers && !work_queue_.empty()) {
    Work work = std::move(work_queue_.front());
    work_queue_.pop_front();
    ++active_workers_;
    // Time spent waiting for a worker shard is run-queue wait in every
    // sense that matters to the operator: the stage was runnable, no
    // execution slot was free. Charge it to the stage span and the label.
    const sim::Duration shard_wait = kernel_.now() - work.queued_at;
    obs::add_span_wait(tracer_, work.origin, obs::WaitState::kRunq,
                       shard_wait);
    if (cpu_ != nullptr) {
      cpu_->charge_wait(work.label, obs::WaitState::kRunq, shard_wait);
    }
    auto finish = [this, logic = std::move(work.logic)]() {
      logic();
      --active_workers_;
      pump();
    };
    if (cpu_ != nullptr) {
      // Submit under the stage span's context — pump() often runs from a
      // *previous* task's completion, whose context must not absorb this
      // work's runq/cpu charges.
      const obs::Tracer::Scope scope(tracer_, work.origin);
      if (!cpu_->submit(sim::WorkClass::kControl, work.label, work.cost,
                        std::move(finish))) {
        // No control cores at all: reject rather than hang.
        --active_workers_;
        ++stats_.overload_rejections;
        obs::svc_error(status_, "no control cores");
      }
    } else {
      kernel_.schedule(0, std::move(finish));
    }
  }
}

// ---------------------------------------------------------------------------
// Attach context management
// ---------------------------------------------------------------------------

void Accessd::arm_guard(const common::Imsi& imsi) {
  auto it = contexts_.find(imsi);
  if (it == contexts_.end()) return;
  kernel_.cancel(it->second.guard_timer);
  // imsi arrives as a const&; an init-capture keeps the closure member
  // non-const so the event's move stays noexcept (EventFn requires it).
  it->second.guard_timer = kernel_.schedule(
      config_.context_guard, [this, imsi = imsi]() {
        auto it = contexts_.find(imsi);
        if (it == contexts_.end()) return;
        if (it->second.fsm.state() != EmmState::kRegistered) {
          // Half-open attach never completed: implicit detach (§3.4 —
          // runtime state is ephemeral and recoverable; the UE just
          // re-attaches). A subscriber that keeps losing contexts this
          // way shows up in the bearer-drop heavy hitters.
          if (sketches_ != nullptr) {
            sketches_->record(obs::sketch::SubscriberMetric::kBearerDrops,
                              imsi.value);
          }
          drop_context(imsi);
        }
      });
}

void Accessd::drop_context(const common::Imsi& imsi) {
  auto it = contexts_.find(imsi);
  if (it == contexts_.end()) return;
  kernel_.cancel(it->second.guard_timer);
  contexts_.erase(it);
}

void Accessd::note_attach_failure(const common::Imsi& imsi) {
  if (sketches_ == nullptr) return;
  // Rejections run under the stage span's scope, so the current trace id
  // is the failing attach — it rides along as the heavy-hitter exemplar
  // and stays pinned by the span's error tag (TailSampler error path).
  sketches_->record(obs::sketch::SubscriberMetric::kAttachFailures,
                    imsi.value, 1, obs::current_context(tracer_).trace_id);
}

std::optional<EmmState> Accessd::ue_state(const common::Imsi& imsi) const {
  auto it = contexts_.find(imsi);
  if (it == contexts_.end()) return std::nullopt;
  return it->second.fsm.state();
}

// ---------------------------------------------------------------------------
// Stage logic (runs after the CPU charge)
// ---------------------------------------------------------------------------

common::Result<AuthChallenge> Accessd::do_begin(const common::Imsi& imsi,
                                                RanType rat) {
  const auto idx = static_cast<std::size_t>(rat);
  ++stats_.attach_started[idx];
  if (sketches_ != nullptr) sketches_->record_active(imsi.value, kernel_.now());

  auto sub = subscribers_.get(imsi);
  if (!sub.has_value()) {
    ++stats_.attach_rejected[idx];
    note_attach_failure(imsi);
    return common::Error{common::ErrorCode::kNotFound,
                         "unknown subscriber " + imsi.value};
  }
  if (!sub->active) {
    ++stats_.attach_rejected[idx];
    note_attach_failure(imsi);
    return common::Error{common::ErrorCode::kPermissionDenied,
                         "subscriber deactivated"};
  }

  // Restarting UE: discard any stale context (and its session — the UE
  // clearly lost its state, so re-establish cleanly).
  if (contexts_.contains(imsi)) {
    if (sessiond_.find(imsi) != nullptr) sessiond_.end_session(imsi).ok();
    drop_context(imsi);
  }

  UeContext& ctx = contexts_[imsi];
  ctx.rat = rat;
  if (!ctx.fsm.handle(EmmEvent::kAttachRequested)) {
    ++stats_.invalid_transitions;
    drop_context(imsi);
    return common::Error{common::ErrorCode::kFailedPrecondition,
                         "invalid attach state"};
  }

  AuthChallenge challenge;
  if (rat == RanType::kWifi) {
    // WiFi CHAP: challenge is random; the expected digest is derived from
    // the subscriber's WiFi credential. Same generic flow, different
    // verifier (the "union of capabilities" subscriber row, §3.1).
    auto vec_result = subscribers_.generate_auth_vector(imsi);
    if (!vec_result.ok()) {
      ++stats_.attach_rejected[idx];
      note_attach_failure(imsi);
      drop_context(imsi);
      return vec_result.error();
    }
    AuthVector vec = std::move(vec_result).take();
    const crypto::Digest256 digest = crypto::hmac_sha256(
        common::to_bytes(sub->wifi_password),
        common::BytesView(vec.rand.data(), vec.rand.size()));
    std::memcpy(vec.xres.data(), digest.data(), vec.xres.size());
    std::memcpy(vec.kasme.data(), digest.data(), vec.kasme.size());
    ctx.vector = vec;
    challenge.rand = vec.rand;  // AUTN unused for CHAP
  } else {
    auto vec = subscribers_.generate_auth_vector(imsi);
    if (!vec.ok()) {
      ++stats_.attach_rejected[idx];
      note_attach_failure(imsi);
      drop_context(imsi);
      return vec.error();
    }
    ctx.vector = std::move(vec).take();
    challenge.rand = ctx.vector.rand;
    challenge.autn = ctx.vector.autn;
  }
  ctx.has_vector = true;
  arm_guard(imsi);
  return challenge;
}

common::Result<SecurityKeys> Accessd::do_verify(
    const common::Imsi& imsi, const common::Bytes& response) {
  auto it = contexts_.find(imsi);
  if (it == contexts_.end() || !it->second.has_vector) {
    return common::Error{common::ErrorCode::kFailedPrecondition,
                         "no attach in progress"};
  }
  UeContext& ctx = it->second;
  if (ctx.fsm.state() != EmmState::kAuthPending) {
    ++stats_.invalid_transitions;
    return common::Error{common::ErrorCode::kFailedPrecondition,
                         "unexpected auth response"};
  }

  const std::size_t n = ctx.vector.xres.size();
  const bool match =
      response.size() >= n &&
      common::constant_time_equal(
          common::BytesView(response.data(), n),
          common::BytesView(ctx.vector.xres.data(), n));
  if (!match) {
    ++stats_.auth_failures;
    ++stats_.attach_rejected[static_cast<std::size_t>(ctx.rat)];
    note_attach_failure(imsi);
    ctx.fsm.handle(EmmEvent::kAuthFailed);
    drop_context(imsi);
    return common::Error{common::ErrorCode::kUnauthenticated,
                         "RES mismatch"};
  }

  ctx.fsm.handle(EmmEvent::kAuthSucceeded);
  SecurityKeys keys;
  keys.kasme = ctx.vector.kasme;
  return keys;
}

void Accessd::resync_auth(
    const common::Imsi& imsi, const std::array<std::uint8_t, 14>& auts,
    std::function<void(common::Result<AuthChallenge>)> done) {
  submit_work(
      label_resync_, config_.cost_begin_attach,
      obs::current_context(tracer_),
      [this, imsi, auts, done]() {
        auto it = contexts_.find(imsi);
        if (it == contexts_.end() || !it->second.has_vector) {
          done(common::Error{common::ErrorCode::kFailedPrecondition,
                             "no attach in progress"});
          return;
        }
        UeContext& ctx = it->second;
        const common::Status status =
            subscribers_.resync(imsi, auts, ctx.vector.rand);
        if (!status.ok()) {
          ++stats_.auth_failures;
          note_attach_failure(imsi);
          ctx.fsm.handle(EmmEvent::kAuthFailed);
          drop_context(imsi);
          done(status.error());
          return;
        }
        ++stats_.resyncs;
        // Fresh vector from the resynchronised SQN; the FSM stays in
        // AuthPending (the challenge is simply re-issued).
        auto vec = subscribers_.generate_auth_vector(imsi);
        if (!vec.ok()) {
          drop_context(imsi);
          done(vec.error());
          return;
        }
        ctx.vector = std::move(vec).take();
        AuthChallenge challenge;
        challenge.rand = ctx.vector.rand;
        challenge.autn = ctx.vector.autn;
        arm_guard(imsi);
        done(challenge);
      },
      [done]() {
        done(common::Error{common::ErrorCode::kResourceExhausted,
                           "control plane overloaded"});
      });
}

void Accessd::do_establish(
    const EstablishRequest& req,
    std::function<void(common::Result<SessionInfo>)> done) {
  auto it = contexts_.find(req.imsi);
  if (it == contexts_.end()) {
    done(common::Error{common::ErrorCode::kFailedPrecondition,
                       "no attach in progress"});
    return;
  }
  UeContext& ctx = it->second;
  if (ctx.fsm.state() != EmmState::kSecurityPending) {
    ++stats_.invalid_transitions;
    done(common::Error{common::ErrorCode::kFailedPrecondition,
                       "security not established"});
    return;
  }
  ctx.fsm.handle(EmmEvent::kSecurityEstablished);

  auto sub = subscribers_.get(req.imsi);
  if (!sub.has_value()) {
    ctx.fsm.handle(EmmEvent::kContextFailed);
    drop_context(req.imsi);
    done(common::Error{common::ErrorCode::kNotFound, "subscriber vanished"});
    return;
  }
  const core::Policy policy = policies_.resolve(sub->policy_name);
  const common::Teid agw_teid{next_teid_++};

  if (federation_) {
    // Home routing: the MNO's P-GW anchors the session and allocates the
    // UE address; the data plane tunnels via the GTP aggregator.
    const common::Teid home_teid_local{next_teid_++};
    const common::Imsi imsi = req.imsi;
    const obs::TraceContext parent = obs::current_context(tracer_);
    federation_(
        imsi, home_teid_local,
        [this, req, policy, agw_teid, home_teid_local, parent,
         done](common::Result<FederatedSession> fed) {
          const obs::Tracer::Scope scope(tracer_, parent);
          auto it = contexts_.find(req.imsi);
          if (it == contexts_.end()) {
            done(common::Error{common::ErrorCode::kFailedPrecondition,
                               "context vanished"});
            return;
          }
          UeContext& ctx = it->second;
          if (!fed.ok()) {
            ++stats_.attach_rejected[static_cast<std::size_t>(ctx.rat)];
            note_attach_failure(req.imsi);
            ctx.fsm.handle(EmmEvent::kContextFailed);
            drop_context(req.imsi);
            done(fed.error());
            return;
          }
          done(finish_establish(req, ctx, policy, fed.value().ue_ip, true,
                                fed.value(), agw_teid, home_teid_local));
        });
    return;
  }

  // mobilityd runs synchronously in sim time; the span still documents the
  // allocation (and its outcome) as a step of the attach tree.
  const obs::TraceContext ip_span =
      obs::begin_span(tracer_, "allocate_ip", "mobilityd", node_);
  auto ip = mobilityd_.allocate(req.imsi, kernel_.now());
  if (!ip.ok()) {
    obs::tag_span(tracer_, ip_span, "error", ip.error().message);
    obs::end_span(tracer_, ip_span);
    ++stats_.attach_rejected[static_cast<std::size_t>(ctx.rat)];
    note_attach_failure(req.imsi);
    ctx.fsm.handle(EmmEvent::kContextFailed);
    drop_context(req.imsi);
    done(ip.error());
    return;
  }
  obs::end_span(tracer_, ip_span);
  done(finish_establish(req, ctx, policy, ip.value(), false,
                        FederatedSession{}, agw_teid, common::Teid{0}));
}

common::Result<SessionInfo> Accessd::finish_establish(
    const EstablishRequest& req, UeContext& ctx, const core::Policy& policy,
    common::Ipv4 ue_ip, bool home_routed, const FederatedSession& fed,
    common::Teid agw_teid, common::Teid home_teid_local) {
  Sessiond::CreateRequest create;
  create.imsi = req.imsi;
  create.ue_ip = ue_ip;
  create.tunneled = ctx.rat != RanType::kWifi;
  create.agw_teid_ul = agw_teid;
  create.enb_teid_dl = req.enb_teid_dl;
  create.enb_address = req.enb_address;
  create.policy = policy;
  create.home_routed = home_routed;
  create.home_teid_remote = fed.home_teid_remote;
  create.home_agg_address = fed.home_agg_address;
  create.home_teid_local = home_teid_local;
  auto session = sessiond_.create_session(create);
  if (!session.ok()) {
    ++stats_.attach_rejected[static_cast<std::size_t>(ctx.rat)];
    note_attach_failure(req.imsi);
    if (!home_routed) mobilityd_.release(req.imsi, kernel_.now()).ok();
    ctx.fsm.handle(EmmEvent::kContextFailed);
    drop_context(req.imsi);
    return session.error();
  }

  ctx.fsm.handle(EmmEvent::kContextEstablished);
  kernel_.cancel(ctx.guard_timer);
  ++stats_.attach_completed[static_cast<std::size_t>(ctx.rat)];

  const core::PolicyTier& tier = policy.tier_at(0);
  SessionInfo info;
  info.session_id = session.value();
  info.ue_ip = ue_ip;
  info.agw_teid_ul = agw_teid;
  info.qci = policy.qci;
  info.ambr_dl_bps = tier.dl_rate_bps;
  info.ambr_ul_bps = tier.ul_rate_bps;
  return info;
}

// ---------------------------------------------------------------------------
// Public async entry points
// ---------------------------------------------------------------------------

void Accessd::begin_attach(
    const common::Imsi& imsi, RanType rat,
    std::function<void(common::Result<AuthChallenge>)> done) {
  // The stage span opens at submission, so it covers queue wait + CPU
  // charge + logic — the components of the MME bottleneck of Figure 6.
  const obs::TraceContext span =
      obs::begin_span(tracer_, "begin_attach", "accessd", node_);
  auto finish = [this, span,
                 done = std::move(done)](common::Result<AuthChallenge> r) {
    obs::end_span(tracer_, span);
    done(std::move(r));
  };
  submit_work(
      label_begin_, config_.cost_begin_attach, span,
      [this, imsi, rat, span, finish]() {
        obs::Tracer::Scope scope(tracer_, span);
        finish(do_begin(imsi, rat));
      },
      [this, span, finish]() {
        obs::tag_span(tracer_, span, "error", "overload");
        finish(common::Error{common::ErrorCode::kResourceExhausted,
                             "control plane overloaded"});
      });
}

void Accessd::verify_auth(
    const common::Imsi& imsi, common::BytesView response,
    std::function<void(common::Result<SecurityKeys>)> done) {
  common::Bytes copy(response.begin(), response.end());
  const obs::TraceContext span =
      obs::begin_span(tracer_, "verify_auth", "accessd", node_);
  auto finish = [this, span,
                 done = std::move(done)](common::Result<SecurityKeys> r) {
    obs::end_span(tracer_, span);
    done(std::move(r));
  };
  submit_work(
      label_verify_, config_.cost_verify_auth, span,
      [this, imsi, copy = std::move(copy), span, finish]() {
        obs::Tracer::Scope scope(tracer_, span);
        finish(do_verify(imsi, copy));
      },
      [this, span, finish]() {
        obs::tag_span(tracer_, span, "error", "overload");
        finish(common::Error{common::ErrorCode::kResourceExhausted,
                             "control plane overloaded"});
      });
}

void Accessd::establish(
    const EstablishRequest& req,
    std::function<void(common::Result<SessionInfo>)> done) {
  const obs::TraceContext span =
      obs::begin_span(tracer_, "establish", "accessd", node_);
  auto finish = [this, span,
                 done = std::move(done)](common::Result<SessionInfo> r) {
    obs::end_span(tracer_, span);
    done(std::move(r));
  };
  submit_work(
      label_establish_, config_.cost_establish, span,
      [this, req, span, finish]() {
        obs::Tracer::Scope scope(tracer_, span);
        do_establish(req, finish);
      },
      [this, span, finish]() {
        obs::tag_span(tracer_, span, "error", "overload");
        finish(common::Error{common::ErrorCode::kResourceExhausted,
                             "control plane overloaded"});
      });
}

void Accessd::detach(const common::Imsi& imsi,
                     std::function<void(common::Status)> done) {
  submit_work(
      label_detach_, config_.cost_detach, obs::current_context(tracer_),
      [this, imsi, done]() {
        auto it = contexts_.find(imsi);
        if (it == contexts_.end()) {
          done(common::Error{common::ErrorCode::kNotFound, "not attached"});
          return;
        }
        UeContext& ctx = it->second;
        if (ctx.fsm.state() == EmmState::kRegistered) {
          ctx.fsm.handle(EmmEvent::kDetachRequested);
          ctx.fsm.handle(EmmEvent::kDetachComplete);
        } else {
          ctx.fsm.handle(EmmEvent::kImplicitDetach);
        }
        if (sessiond_.find(imsi) != nullptr) sessiond_.end_session(imsi).ok();
        mobilityd_.release(imsi, kernel_.now()).ok();
        drop_context(imsi);
        ++stats_.detaches;
        done(common::Status::Ok());
      },
      [done]() {
        done(common::Error{common::ErrorCode::kResourceExhausted,
                           "control plane overloaded"});
      });
}

}  // namespace magma::agw
