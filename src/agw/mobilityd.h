// mobilityd — UE IP address management for one AGW.
//
// Each AGW owns an IP block and allocates addresses to UEs at session
// establishment; because runtime state is AGW-local (§3.2), no coordination
// with other AGWs or the orchestrator is needed on this path. Addresses
// recycle after release, with a quarantine period so a just-released
// address is not instantly reused (avoids misdelivery to a new UE while
// stale downlink flows drain).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "common/result.h"
#include "obs/status.h"
#include "sim/time.h"

namespace magma::agw {

struct IpBlock {
  common::Ipv4 base = common::Ipv4::from_octets(192, 168, 128, 0);
  std::uint8_t prefix_len = 24;

  std::uint32_t capacity() const {
    return prefix_len >= 31 ? 0 : (1u << (32 - prefix_len)) - 2;  // no net/bcast
  }
};

class Mobilityd {
 public:
  explicit Mobilityd(IpBlock block,
                     sim::Duration quarantine = 30 * sim::kSecond);

  common::Result<common::Ipv4> allocate(const common::Imsi& imsi,
                                        sim::TimePoint now);
  common::Status release(const common::Imsi& imsi, sim::TimePoint now);
  // Adopt an existing (imsi, ip) binding — used when a backup AGW instance
  // restores sessions from a checkpoint and must honour the addresses the
  // failed instance handed out.
  common::Status adopt(const common::Imsi& imsi, common::Ipv4 ip);
  std::optional<common::Ipv4> lookup(const common::Imsi& imsi) const;
  std::optional<common::Imsi> reverse_lookup(common::Ipv4 ip) const;

  std::size_t allocated() const { return by_imsi_.size(); }
  const IpBlock& block() const { return block_; }

  // Service303 handle (optional): allocate/release/adopt count requests and
  // errors. Re-set after restore() replaces the Mobilityd instance.
  void set_status(obs::Service303* status) { status_ = status; }

 private:
  obs::Service303* status_ = nullptr;
  IpBlock block_;
  sim::Duration quarantine_;
  std::uint32_t next_fresh_ = 1;  // host part of next never-used address
  std::unordered_map<common::Imsi, common::Ipv4> by_imsi_;
  std::unordered_map<common::Ipv4, common::Imsi> by_ip_;
  std::deque<std::pair<common::Ipv4, sim::TimePoint>> released_;  // FIFO
};

}  // namespace magma::agw
