// Message channels over simulated links.
//
// Two transports, mirroring the distinction the paper draws in §3.1:
//  * DatagramChannel — UDP-like, lossy, unordered. This is what 3GPP's GTP
//    runs over; it is fragile on bad backhaul.
//  * ReliableChannel — TCP-like: retransmission, cumulative ACKs, in-order
//    delivery. This is what gRPC inherits and why Magma's control traffic
//    survives satellite backhaul.
//
// The reliable transport is RFC 6298-faithful so that the backhaul
// experiments measure real TCP behaviour rather than a caricature:
//
//  * RTT estimation — every cumulative ACK of a never-retransmitted segment
//    yields a sample R. The first sample seeds SRTT = R, RTTVAR = R/2;
//    later samples update RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R| and
//    SRTT = 7/8·SRTT + 1/8·R (the RFC's alpha = 1/8, beta = 1/4).
//  * RTO — SRTT + max(G, 4·RTTVAR), clamped to [min_rto, max_rto]. Until
//    the first sample arrives, `initial_rto` is used. A segment whose timer
//    fires backs its own RTO off exponentially (bounded by max_rto);
//    fresh sends always start from the connection's current estimate.
//  * Karn's rule — segments that were ever retransmitted never contribute
//    RTT samples (their ACK is ambiguous between original and retry), so
//    one outage cannot poison the estimator.
//  * Fast retransmit — the receiver acks every DATA segment cumulatively;
//    `dupack_threshold` (default 3) duplicate ACKs for the same sequence
//    trigger one immediate retransmission of that segment without waiting
//    for the RTO, once per duplicate burst.
//  * Reset semantics — a segment exhausting `max_retries` resets the
//    connection (the RST-after-repeated-RTO analogue): every outstanding
//    message is handed to the `set_send_failure_handler` callback (never
//    silently dropped), the epoch is bumped, and an RST notification is
//    sent so the peer clears its reorder buffer for the dead epoch. Traffic
//    sent after the reset flows on the fresh epoch.
//
// Accounting invariant (property-tested): at quiescence every sent message
// is either acked or failed, i.e. messages_sent == messages_acked +
// failures on the sending endpoint, and everything acked was delivered
// in order, exactly once, at the peer. (A message can be *delivered* yet
// counted failed if its ACK was lost before a reset — TCP has the same
// ambiguity — so receiver-side messages_delivered >= sender-side
// messages_acked.)
//
// Channels carry discrete messages (the RPC layer does its own framing).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "sim/kernel.h"
#include "sim/link.h"
#include "sim/random.h"

namespace magma::net {

// One side of a bidirectional message pipe.
class Channel {
 public:
  virtual ~Channel() = default;
  // Fire-and-forget. Delivery semantics depend on the transport.
  virtual void send(common::Bytes message) = 0;
  virtual void set_receiver(std::function<void(common::Bytes)> receiver) = 0;
  // Invoked once per message the transport gives up on (connection reset),
  // with the original payload. Transports without failure detection
  // (datagrams) never invoke it; the default sink discards.
  virtual void set_send_failure_handler(
      std::function<void(common::Bytes)> handler) {
    (void)handler;
  }
};

// A duplex path: two unidirectional links with independent queues.
struct DuplexLink {
  DuplexLink(sim::Kernel& kernel, sim::Rng& rng, const sim::LinkConfig& cfg)
      : forward(kernel, rng.fork(), cfg), reverse(kernel, rng.fork(), cfg) {}
  sim::Link forward;
  sim::Link reverse;
};

struct ChannelPair {
  std::unique_ptr<Channel> a;  // sends on forward, receives on reverse
  std::unique_ptr<Channel> b;  // sends on reverse, receives on forward
};

// Unreliable transport. Per-message overhead models IP+UDP headers.
ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path);

struct ReliableConfig {
  // RTO before the first RTT sample (and forever when adaptive_rto=false).
  // RFC 6298 §2.1 mandates 1 s, and the value matters more than it looks:
  // with Karn's rule, an initial RTO below the path RTT retransmits every
  // segment before its ACK can arrive, so no segment ever yields a sample
  // and the estimator never seeds — the old fixed 200 ms default locked
  // satellite links (≥500 ms RTT) into a permanent spurious-retransmission
  // storm.
  sim::Duration initial_rto = 1 * sim::kSecond;
  // Clamp for the adaptive RTO estimate (RFC 6298 §2.4 uses 1 s for the
  // lower bound; we default lower because simulated control links are
  // cleaner than the 2004 Internet, and it is configurable).
  sim::Duration min_rto = 100 * sim::kMillisecond;
  sim::Duration max_rto = 30 * sim::kSecond;
  int max_retries = 12;  // after this, the connection resets
  std::uint64_t header_overhead = 40;  // IP+TCP
  // RFC 6298 SRTT/RTTVAR estimator with Karn's rule. false = the fixed-RTO
  // baseline (pure exponential backoff from initial_rto), kept for the
  // ablation benches.
  bool adaptive_rto = true;
  // Duplicate cumulative ACKs that trigger a fast retransmit.
  int dupack_threshold = 3;
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  // Receiver side: messages handed to the application (in order, once).
  std::uint64_t messages_delivered = 0;
  // Sender side: messages confirmed by a cumulative ACK.
  std::uint64_t messages_acked = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;  // subset of retransmissions
  // Receiver side: DATA segments that duplicated already-received data —
  // the wire-visible cost of a too-short RTO.
  std::uint64_t spurious_retransmits = 0;
  std::uint64_t failures = 0;  // messages abandoned by a connection reset
  std::uint64_t resets = 0;    // connection resets (epoch bumps)
  std::uint64_t rtt_samples = 0;
  sim::Duration srtt = 0;      // smoothed RTT; 0 until the first sample
  sim::Duration rttvar = 0;
  sim::Duration rto = 0;       // current connection RTO
};

// Reliable, in-order transport (simplified TCP). Returned channels expose
// stats via stats().
class ReliableChannel : public Channel {
 public:
  virtual const ReliableStats& stats() const = 0;
  // Out-of-order payloads currently buffered awaiting the in-order prefix.
  // A peer reset purges this via the RST notification; tests and telemetry
  // use it to catch stale payloads lingering from a dead epoch.
  virtual std::size_t reorder_backlog() const = 0;
};

struct ReliablePair {
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
};

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config = {});

}  // namespace magma::net
