// Message channels over simulated links.
//
// Two transports, mirroring the distinction the paper draws in §3.1:
//  * DatagramChannel — UDP-like, lossy, unordered. This is what 3GPP's GTP
//    runs over; it is fragile on bad backhaul.
//  * ReliableChannel — TCP-like: retransmission, cumulative ACKs, in-order
//    delivery. This is what gRPC inherits and why Magma's control traffic
//    survives satellite backhaul.
//
// Channels carry discrete messages (the RPC layer does its own framing).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "sim/kernel.h"
#include "sim/link.h"
#include "sim/random.h"

namespace magma::net {

// One side of a bidirectional message pipe.
class Channel {
 public:
  virtual ~Channel() = default;
  // Fire-and-forget. Delivery semantics depend on the transport.
  virtual void send(common::Bytes message) = 0;
  virtual void set_receiver(std::function<void(common::Bytes)> receiver) = 0;
};

// A duplex path: two unidirectional links with independent queues.
struct DuplexLink {
  DuplexLink(sim::Kernel& kernel, sim::Rng& rng, const sim::LinkConfig& cfg)
      : forward(kernel, rng.fork(), cfg), reverse(kernel, rng.fork(), cfg) {}
  sim::Link forward;
  sim::Link reverse;
};

struct ChannelPair {
  std::unique_ptr<Channel> a;  // sends on forward, receives on reverse
  std::unique_ptr<Channel> b;  // sends on reverse, receives on forward
};

// Unreliable transport. Per-message overhead models IP+UDP headers.
ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path);

struct ReliableConfig {
  sim::Duration initial_rto = 200 * sim::kMillisecond;
  sim::Duration max_rto = 30 * sim::kSecond;
  int max_retries = 12;  // after this, the message is dropped (conn reset)
  std::uint64_t header_overhead = 40;  // IP+TCP
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failures = 0;  // messages abandoned after max_retries
};

// Reliable, in-order transport (simplified TCP). Returned channels expose
// stats via reliable_stats().
class ReliableChannel : public Channel {
 public:
  virtual const ReliableStats& stats() const = 0;
};

struct ReliablePair {
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
};

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config = {});

}  // namespace magma::net
