// Message channels over simulated links.
//
// Two transports, mirroring the distinction the paper draws in §3.1:
//  * DatagramChannel — UDP-like, lossy, unordered. This is what 3GPP's GTP
//    runs over; it is fragile on bad backhaul.
//  * ReliableChannel — TCP-like: retransmission, cumulative ACKs, in-order
//    delivery. This is what gRPC inherits and why Magma's control traffic
//    survives satellite backhaul.
//
// The reliable transport is RFC-faithful so that the backhaul experiments
// measure real TCP behaviour rather than a caricature:
//
//  * RTT estimation (RFC 6298) — ACKs yield samples R. The first sample
//    seeds SRTT = R, RTTVAR = R/2; later samples update
//    RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R| and SRTT = 7/8·SRTT + 1/8·R
//    (alpha = 1/8, beta = 1/4).
//  * RTO — SRTT + max(G, 4·RTTVAR), clamped to [min_rto, max_rto]. Until
//    the first sample arrives, `initial_rto` is used. A segment whose timer
//    fires backs its own RTO off exponentially (bounded by max_rto; the
//    `rto_at_cap` counter records timeouts that fired with the backoff
//    already clamped — a gateway "sitting at max_rto" is page-worthy);
//    fresh sends always start from the connection's current estimate.
//  * Karn's rule / TSopt — without timestamps, segments that were ever
//    retransmitted never contribute RTT samples (their ACK is ambiguous
//    between original and retry). With `timestamps` on (the default, RFC
//    7323 TSopt analogue) every DATA segment carries its transmit time and
//    the ACK echoes it, so even retransmitted segments yield unambiguous
//    samples — Karn's rule is relaxed and the estimator reconverges within
//    a handful of samples after an outage instead of waiting for fresh,
//    never-retransmitted traffic.
//  * Congestion control (NewReno-style, gated by `congestion_control`) —
//    the window is counted in segments (one message = one segment = one
//    "MSS"). Slow start grows cwnd by one segment per newly acked segment
//    below ssthresh, congestion avoidance by one segment per window above
//    it. A fast retransmit halves ssthresh to max(flight/2, 2) and enters
//    fast recovery (cwnd = ssthresh + dupack_threshold, inflated per extra
//    dup ACK, deflated to ssthresh on the ACK that covers `recover`); a
//    retransmission timeout collapses cwnd to 1. New data is admitted only
//    while flight_size < cwnd (property-tested: `window_violations` stays
//    0 and cwnd never drops below 1 segment); messages beyond the window
//    queue in order and are released as ACKs open it — this is the
//    backpressure a satellite config push actually experiences.
//  * Fast retransmit — the receiver acks every DATA segment cumulatively;
//    `dupack_threshold` (default 3) duplicate ACKs for the same sequence
//    trigger one immediate retransmission of that segment without waiting
//    for the RTO, once per duplicate burst.
//  * Selective ACKs (gated by `sack`) — every ACK carries up to
//    `max_sack_blocks` ranges of out-of-order data held in the reorder
//    buffer. The sender marks sacked segments (they leave the flight and
//    are never retransmitted) and retransmits any hole with >=
//    dupack_threshold sacked segments above it immediately
//    (`sack_retransmits`), so a multi-loss burst repairs in about one RTT
//    where cumulative ACKs alone would pay one RTO per hole.
//  * Piggybacked ACKs — every DATA segment carries the sender's cumulative
//    receive point (plus the epoch it refers to), exactly as every TCP
//    segment carries the ACK field. Pure ACKs are unreliable; when a run
//    of them is lost, the reverse direction's data keeps the forward
//    direction's window moving. Without this, one stuck segment whose ACKs
//    keep getting unlucky backs its RTO off to max_rto and starves a
//    bidirectional RPC channel for minutes while the other direction is
//    perfectly healthy.
//  * Reset semantics — a segment exhausting `max_retries` resets the
//    connection (the RST-after-repeated-RTO analogue): every outstanding
//    message — including ones still queued behind the congestion window —
//    is handed to the `set_send_failure_handler` callback (never silently
//    dropped), the epoch is bumped, and an RST notification is sent so the
//    peer clears its reorder buffer for the dead epoch. Traffic sent after
//    the reset flows on the fresh epoch with fresh congestion state.
//
// Accounting invariant (property-tested): at quiescence every sent message
// is either acked or failed, i.e. messages_sent == messages_acked +
// failures on the sending endpoint, and everything acked was delivered
// in order, exactly once, at the peer. (A message can be *delivered* yet
// counted failed if its ACK was lost before a reset — TCP has the same
// ambiguity — so receiver-side messages_delivered >= sender-side
// messages_acked.)
//
// Channels carry discrete messages (the RPC layer does its own framing).
// Segment headers cross the simulated wire through the codec below
// (encode_segment_header / decode_segment_header): the sender encodes, the
// receiver decodes and drops anything malformed, and the TCP-equivalent
// option cost (10 B timestamps, 2+8n B SACK) is billed to the link.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/kernel.h"
#include "sim/link.h"
#include "sim/random.h"

namespace magma::net {

// One side of a bidirectional message pipe.
class Channel {
 public:
  virtual ~Channel() = default;
  // Fire-and-forget. Delivery semantics depend on the transport.
  virtual void send(common::Bytes message) = 0;
  virtual void set_receiver(std::function<void(common::Bytes)> receiver) = 0;
  // Invoked once per message the transport gives up on (connection reset),
  // with the original payload. Transports without failure detection
  // (datagrams) never invoke it; the default sink discards.
  virtual void set_send_failure_handler(
      std::function<void(common::Bytes)> handler) {
    (void)handler;
  }
  // Backpressure signal: messages accepted by send() but not yet
  // acknowledged (queued behind the congestion window or in flight).
  // Datagram transports have no queue and report 0. Applications shipping
  // best-effort traffic should shed when this grows — piling telemetry onto
  // a congested backhaul starves the control RPCs sharing the channel.
  virtual std::size_t send_backlog() const { return 0; }
};

// A duplex path: two unidirectional links with independent queues.
struct DuplexLink {
  DuplexLink(sim::Kernel& kernel, sim::Rng& rng, const sim::LinkConfig& cfg)
      : forward(kernel, rng.fork(), cfg), reverse(kernel, rng.fork(), cfg) {}
  sim::Link forward;
  sim::Link reverse;
};

struct ChannelPair {
  std::unique_ptr<Channel> a;  // sends on forward, receives on reverse
  std::unique_ptr<Channel> b;  // sends on reverse, receives on forward
};

// Unreliable transport. Per-message overhead models IP+UDP headers.
ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path);

struct ReliableConfig {
  // RTO before the first RTT sample (and forever when adaptive_rto=false).
  // RFC 6298 §2.1 mandates 1 s, and the value matters more than it looks:
  // with Karn's rule, an initial RTO below the path RTT retransmits every
  // segment before its ACK can arrive, so no segment ever yields a sample
  // and the estimator never seeds — the old fixed 200 ms default locked
  // satellite links (≥500 ms RTT) into a permanent spurious-retransmission
  // storm. (Timestamps break that deadlock, but the mandate stands.)
  sim::Duration initial_rto = 1 * sim::kSecond;
  // Clamp for the adaptive RTO estimate (RFC 6298 §2.4 uses 1 s for the
  // lower bound; we default lower because simulated control links are
  // cleaner than the 2004 Internet, and it is configurable).
  sim::Duration min_rto = 100 * sim::kMillisecond;
  sim::Duration max_rto = 30 * sim::kSecond;
  int max_retries = 12;  // after this, the connection resets
  std::uint64_t header_overhead = 40;  // IP+TCP (options billed separately)
  // RFC 6298 SRTT/RTTVAR estimator with Karn's rule. false = the fixed-RTO
  // baseline (pure exponential backoff from initial_rto), kept for the
  // ablation benches.
  bool adaptive_rto = true;
  // Duplicate cumulative ACKs that trigger a fast retransmit. Also the
  // SACK loss threshold: a hole with this many sacked segments above it is
  // considered lost and retransmitted.
  int dupack_threshold = 3;
  // --- congestion control (NewReno-style; window counted in segments) ----
  // false = the pre-cwnd transport: every message transmits the instant it
  // is sent, however many are in flight (kept for the ablation benches —
  // the "unbounded burst" a satellite config push must not be).
  bool congestion_control = true;
  std::uint64_t initial_cwnd = 4;       // IW (RFC 6928 spirit), segments
  std::uint64_t initial_ssthresh = 64;  // slow start until loss, in effect
  std::uint64_t max_cwnd = 256;         // receive-window stand-in
  // Selective acknowledgements on every ACK (RFC 2018 analogue).
  bool sack = true;
  int max_sack_blocks = 4;  // TCP fits 3-4 blocks in the options space
  // TSopt-style per-segment timestamps (RFC 7323 analogue): RTT samples
  // from retransmitted segments, relaxing Karn's rule.
  bool timestamps = true;
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  // Receiver side: messages handed to the application (in order, once).
  std::uint64_t messages_delivered = 0;
  // Sender side: messages confirmed by a cumulative ACK.
  std::uint64_t messages_acked = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;  // subset of retransmissions
  // Holes retransmitted from SACK information alone (no cumulative
  // progress, not the front hole) — also a subset of retransmissions.
  std::uint64_t sack_retransmits = 0;
  // Receiver side: DATA segments that duplicated already-received data —
  // the wire-visible cost of a too-short RTO.
  std::uint64_t spurious_retransmits = 0;
  std::uint64_t failures = 0;  // messages abandoned by a connection reset
  std::uint64_t resets = 0;    // connection resets (epoch bumps)
  std::uint64_t rtt_samples = 0;
  sim::Duration srtt = 0;      // smoothed RTT; 0 until the first sample
  sim::Duration rttvar = 0;
  sim::Duration rto = 0;       // current connection RTO
  // Timeouts that fired with their per-segment backoff already clamped at
  // max_rto — the control channel is "sitting at max_rto" (ROADMAP alert).
  std::uint64_t rto_at_cap = 0;
  // --- congestion state (segments; cwnd/ssthresh 0 when disabled) --------
  std::uint64_t cwnd = 0;
  std::uint64_t ssthresh = 0;
  std::uint64_t flight_size = 0;      // transmitted, neither acked nor sacked
  std::uint64_t max_flight_size = 0;  // high watermark over the connection
  std::uint64_t min_cwnd = 0;         // low watermark (invariant: >= 1)
  // New-data transmissions admitted while flight_size >= cwnd. The sender
  // checks the window at every send decision; this must stay 0.
  std::uint64_t window_violations = 0;
};

// Reliable, in-order transport (simplified TCP). Returned channels expose
// stats via stats().
class ReliableChannel : public Channel {
 public:
  virtual const ReliableStats& stats() const = 0;
  // Out-of-order payloads currently buffered awaiting the in-order prefix.
  // A peer reset purges this via the RST notification; tests and telemetry
  // (the transport_reorder_backlog gauge) use it to catch stale payloads
  // lingering from a dead epoch.
  virtual std::size_t reorder_backlog() const = 0;
};

struct ReliablePair {
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
};

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config = {});

// ---------------------------------------------------------------------------
// Segment header wire codec
// ---------------------------------------------------------------------------
//
// The reliable endpoints serialize every segment header through this codec
// before it crosses the simulated link and decode it on arrival (malformed
// headers are dropped like line noise), so the SACK and timestamp options
// are real wire state, not shared memory. Fuzzed in tests/fuzz_codec_test.

// Half-open range [start, end) of out-of-order sequence numbers the
// receiver holds beyond the cumulative ACK point.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool operator==(const SackBlock&) const = default;
};

struct SegmentHeader {
  std::uint64_t epoch = 0;  // incarnation of the seq/data stream
  std::uint64_t seq = 0;  // DATA only; 0 on ACK/RST
  // Cumulative acknowledgment: all seq < ack of the peer's data stream
  // received. Carried by pure ACKs *and piggybacked on every DATA segment*
  // (like TCP, where every segment has the ACK field) — without this, a
  // run of lost pure ACKs wedges one direction behind an exponentially
  // backed-off RTO even while the other direction flows normally.
  std::uint64_t ack = 0;
  // Incarnation of the stream `ack` refers to (the *peer's* epoch). The
  // receiver of the ack info ignores it unless this matches its own
  // epoch — sequence numbers restart at 0 after a reset, so a stale
  // in-flight ack would otherwise confirm fresh segments it never covered.
  std::uint64_t ack_epoch = 0;
  bool is_ack = false;
  bool is_rst = false;  // reset notification: peer drops the dead epoch
  bool has_ts = false;  // timestamp option present
  sim::TimePoint tsval = 0;  // transmit time of this segment
  sim::TimePoint tsecr = 0;  // ACK only: echoed tsval of the acked data
  std::vector<SackBlock> sack;  // ACK only: ascending, disjoint, non-empty
};

common::Bytes encode_segment_header(const SegmentHeader& header);
// Fail-soft: arbitrary bytes must never crash; structurally invalid input
// (reserved flags, unordered/empty SACK blocks, trailing bytes) is an error.
common::Result<SegmentHeader> decode_segment_header(common::BytesView data);
// TCP-equivalent option cost billed to the link on top of header_overhead:
// 10 bytes for the timestamp option, 2 + 8·n for n SACK blocks.
std::uint64_t segment_option_bytes(const SegmentHeader& header);

}  // namespace magma::net
