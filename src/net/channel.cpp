#include "net/channel.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "common/log.h"
#include "common/pool.h"
#include "obs/host_profiler.h"
#include "rpc/wire.h"

namespace magma::net {

namespace {

// Node-pooled ordered map: the retransmit and reorder windows churn one map
// node per segment in steady state, so their nodes cycle through a per-map
// freelist instead of the heap (DESIGN.md §9).
template <typename K, typename V>
using PooledMap =
    std::map<K, V, std::less<K>,
             common::PoolAllocator<std::pair<const K, V>>>;

constexpr std::uint64_t kDatagramOverhead = 28;  // IP + UDP headers

// Clock granularity G of RFC 6298: the minimum variance term in the RTO.
constexpr sim::Duration kRtoGranularity = 1 * sim::kMillisecond;

// Segment header flag bits (wire format).
constexpr std::uint8_t kFlagAck = 0x01;
constexpr std::uint8_t kFlagRst = 0x02;
constexpr std::uint8_t kFlagTs = 0x04;
constexpr std::uint8_t kFlagReservedMask =
    static_cast<std::uint8_t>(~(kFlagAck | kFlagRst | kFlagTs));

// Decoder bound on SACK blocks: more than TCP's option space could ever
// carry is wire garbage, not a bigger reorder buffer.
constexpr std::uint64_t kDecodeSackLimit = 16;

// Cap on RTO backoff doubling (2^20 ~ 1e6x) — max_rto clamps long before
// this; the cap only guards the shift against undefined behavior.
constexpr int kMaxBackoffShift = 20;

// ---------------------------------------------------------------------------
// Datagram transport
// ---------------------------------------------------------------------------

class DatagramEndpoint final : public Channel {
 public:
  explicit DatagramEndpoint(sim::Link& tx) : tx_(tx) {}

  void set_peer(DatagramEndpoint* peer) {
    peer_ = peer;
    peer_alive_ = peer ? std::weak_ptr<const void>(peer->alive_)
                       : std::weak_ptr<const void>();
  }

  void send(common::Bytes message) override {
    const std::uint64_t wire_size = message.size() + kDatagramOverhead;
    // The delivery closure outlives this call (it sits in the kernel's event
    // queue for the link's latency); the peer's liveness token turns a
    // delivery to a destroyed endpoint into a silent drop.
    tx_.transmit(wire_size, [peer = peer_, guard = peer_alive_,
                             msg = std::move(message)]() mutable {
      if (peer == nullptr || guard.expired()) return;
      if (peer->receiver_) peer->receiver_(std::move(msg));
    });
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

 private:
  sim::Link& tx_;
  DatagramEndpoint* peer_ = nullptr;
  // Liveness token: in-flight segments hold a weak reference and drop
  // themselves if the destination died before arrival.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
  std::weak_ptr<const void> peer_alive_;
  std::function<void(common::Bytes)> receiver_;
};

// ---------------------------------------------------------------------------
// Reliable transport
// ---------------------------------------------------------------------------
//
// Discrete-message simplification of TCP: every DATA segment carries a
// sequence number; the peer responds with a cumulative ACK (plus SACK
// blocks for out-of-order data); the oldest unacked segment retransmits on
// an RFC 6298 adaptive RTO. New data is admitted against a NewReno
// congestion window. See channel.h for the estimator, Karn's rule / TSopt,
// fast retransmit, SACK repair, and reset semantics. Messages deliver in
// order, exactly once per epoch.
//
// Like TCP (RFC 6298 §5), the connection keeps ONE retransmission timer,
// covering the oldest transmitted-and-unsacked segment, restarted whenever
// an ACK makes progress. Per-segment timers armed at transmit time look
// equivalent but are not: under a pipelined window, a hole that takes one
// RTT to repair leaves every later segment to expire on a timer measured
// from its own transmission, and the resulting retransmission storm
// collapses cwnd on perfectly healthy links. The single timer measures
// *silence*, which is the only thing an RTO is for.

class ReliableEndpoint final : public ReliableChannel {
 public:
  ReliableEndpoint(sim::Kernel& kernel, sim::Link& tx, ReliableConfig config)
      : kernel_(kernel), tx_(tx), config_(config) {
    stats_.rto = config_.initial_rto;
    if (config_.congestion_control) {
      cwnd_ = std::max<std::uint64_t>(config_.initial_cwnd, 1);
      ssthresh_ = std::max<std::uint64_t>(config_.initial_ssthresh, 2);
      stats_.min_cwnd = cwnd_;
    }
    sync_cc_stats();
  }

  ~ReliableEndpoint() override {
    // In-flight link deliveries are defused by the liveness token; the
    // retransmission timer still references `this` and must be cancelled.
    if (timer_armed_) kernel_.cancel(retx_timer_);
  }

  void set_peer(ReliableEndpoint* peer) {
    peer_ = peer;
    peer_alive_ = peer ? std::weak_ptr<const void>(peer->alive_)
                       : std::weak_ptr<const void>();
  }

  void send(common::Bytes message) override {
    ++stats_.messages_sent;
    const std::uint64_t seq = next_seq_++;
    Pending& pending = outstanding_[seq];
    pending.payload = std::move(message);
    send_queue_.push_back(seq);
    try_send();
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

  void set_send_failure_handler(
      std::function<void(common::Bytes)> handler) override {
    on_send_failed_ = std::move(handler);
  }

  const ReliableStats& stats() const override { return stats_; }

  std::size_t reorder_backlog() const override { return reorder_.size(); }

  // Everything sent but not yet cumulatively acked: segments in flight or
  // sacked plus messages still queued behind the congestion window.
  std::size_t send_backlog() const override { return outstanding_.size(); }

 private:
  struct Pending {
    common::Bytes payload;
    int retries = 0;
    bool transmitted = false;  // left the send queue at least once
    bool retransmitted = false;  // Karn's rule (non-timestamp mode)
    bool sacked = false;       // SACK-covered, awaiting cumulative ACK
    bool lost_marked = false;  // already loss-retransmitted this episode
    sim::TimePoint sent_at = 0;  // last (re)transmission time
  };

  bool cc_on() const { return config_.congestion_control; }

  sim::Duration current_rto() const {
    if (!config_.adaptive_rto || stats_.rtt_samples == 0) {
      return config_.initial_rto;
    }
    return stats_.rto;
  }

  // The armed timeout: the estimator's RTO doubled once per consecutive
  // timeout (exponential backoff), clamped to max_rto.
  sim::Duration backoff_rto() const {
    const int shift = std::min(consecutive_timeouts_, kMaxBackoffShift);
    const sim::Duration base = current_rto();
    sim::Duration rto = base;
    for (int i = 0; i < shift && rto < config_.max_rto; ++i) rto *= 2;
    return std::min(rto, config_.max_rto);
  }

  void sync_cc_stats() {
    stats_.flight_size = flight_;
    stats_.max_flight_size = std::max(stats_.max_flight_size, flight_);
    if (cc_on()) {
      stats_.cwnd = cwnd_;
      stats_.ssthresh = ssthresh_;
      stats_.min_cwnd = std::min(stats_.min_cwnd, cwnd_);
    }
  }

  void sample_rtt(sim::Duration r) {
    if (!config_.adaptive_rto) return;
    if (stats_.rtt_samples == 0) {
      stats_.srtt = r;
      stats_.rttvar = r / 2;
    } else {
      const sim::Duration err =
          stats_.srtt > r ? stats_.srtt - r : r - stats_.srtt;
      stats_.rttvar = (3 * stats_.rttvar + err) / 4;
      stats_.srtt = (7 * stats_.srtt + r) / 8;
    }
    ++stats_.rtt_samples;
    stats_.rto = std::clamp(
        stats_.srtt + std::max(kRtoGranularity, 4 * stats_.rttvar),
        config_.min_rto, config_.max_rto);
  }

  // Oldest segment the retransmission timer is responsible for: the lowest
  // transmitted, not-yet-SACKed sequence still outstanding.
  std::map<std::uint64_t, Pending>::iterator oldest_unsacked() {
    for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
      if (it->second.transmitted && !it->second.sacked) return it;
    }
    return outstanding_.end();
  }

  // RFC 6298 §5 timer management. start-if-idle after sends; restart on
  // ACK progress; stop when nothing transmitted-and-unsacked remains.
  void update_retx_timer(bool restart) {
    if (oldest_unsacked() == outstanding_.end()) {
      if (timer_armed_) kernel_.cancel(retx_timer_);
      timer_armed_ = false;
      return;
    }
    if (timer_armed_ && !restart) return;
    if (timer_armed_) kernel_.cancel(retx_timer_);
    timer_armed_ = true;
    retx_timer_ = kernel_.schedule(backoff_rto(), [this]() { on_timeout(); });
  }

  // Release queued messages while the congestion window has room. This is
  // the send decision the flight_size <= cwnd invariant is checked at.
  void try_send() {
    while (!send_queue_.empty()) {
      if (cc_on() && flight_ >= cwnd_) break;
      const std::uint64_t seq = send_queue_.front();
      send_queue_.pop_front();
      auto it = outstanding_.find(seq);
      if (it == outstanding_.end()) continue;  // failed by a reset
      if (cc_on() && flight_ >= cwnd_) ++stats_.window_violations;
      it->second.transmitted = true;
      ++flight_;
      highest_transmitted_ = std::max(highest_transmitted_, seq);
      transmit_data(seq);
    }
    sync_cc_stats();
    update_retx_timer(/*restart=*/false);
  }

  void transmit_data(std::uint64_t seq) {
    MAGMA_HOST_SCOPE("net.channel", "transmit_data");
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // already acked
    it->second.sent_at = kernel_.now();
    SegmentHeader header;
    header.epoch = epoch_;
    header.seq = seq;
    // Piggyback our cumulative receive point (TCP: every segment carries
    // the ACK field) so the peer's window moves even when its pure ACKs
    // toward us keep getting lost.
    header.ack = recv_next_;
    header.ack_epoch = recv_epoch_;
    if (config_.timestamps) {
      header.has_ts = true;
      header.tsval = kernel_.now();
    }
    const std::uint64_t wire = it->second.payload.size() +
                               config_.header_overhead +
                               segment_option_bytes(header);
    // The header crosses the wire encoded; the payload is copied so the
    // original stays in `outstanding_` for retransmission.
    tx_.transmit(wire, [peer = peer_, guard = peer_alive_,
                        bytes = encode_segment_header(header),
                        payload = it->second.payload]() mutable {
      if (peer == nullptr || guard.expired()) return;
      peer->on_segment(bytes, std::move(payload));
    });
  }

  void on_timeout() {
    timer_armed_ = false;
    auto it = oldest_unsacked();
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    if (++p.retries > config_.max_retries) {
      reset_connection();
      return;
    }
    ++stats_.retransmissions;
    p.retransmitted = true;
    p.lost_marked = false;  // the RTO owns recovery of this segment now
    consecutive_timeouts_ = std::min(consecutive_timeouts_ + 1,
                                     kMaxBackoffShift);
    if (backoff_rto() >= config_.max_rto) ++stats_.rto_at_cap;
    if (cc_on()) {
      // RFC 5681 §3.1: a timeout is a full loss event — collapse to one
      // segment and leave fast recovery (the retransmit below restarts it).
      ssthresh_ = std::max<std::uint64_t>(flight_ / 2, 2);
      cwnd_ = 1;
      ca_credit_ = 0;
      in_recovery_ = false;
      dup_acks_ = 0;
      sync_cc_stats();
    }
    transmit_data(it->first);
    update_retx_timer(/*restart=*/true);
  }

  // Connection reset (the TCP analogue of RST after repeated RTO): every
  // unacknowledged message on this incarnation — transmitted or still
  // queued behind the window — is handed to the failure callback (never
  // silently dropped) and a fresh epoch starts so post-outage traffic
  // isn't wedged behind the sequence gap. An RST notification tells the
  // peer to discard reorder state buffered for the dead epoch. Callers
  // above (RPC) fail outstanding calls immediately.
  void reset_connection() {
    stats_.failures += outstanding_.size();
    ++stats_.resets;
    std::vector<common::Bytes> failed;
    failed.reserve(outstanding_.size());
    for (auto& [seq, pending] : outstanding_) {
      failed.push_back(std::move(pending.payload));
    }
    outstanding_.clear();
    send_queue_.clear();
    if (timer_armed_) kernel_.cancel(retx_timer_);
    timer_armed_ = false;
    consecutive_timeouts_ = 0;
    ++epoch_;
    next_seq_ = 0;
    highest_ack_ = 0;
    highest_transmitted_ = 0;
    dup_acks_ = 0;
    flight_ = 0;
    in_recovery_ = false;
    ca_credit_ = 0;
    if (cc_on()) {
      cwnd_ = std::max<std::uint64_t>(config_.initial_cwnd, 1);
      ssthresh_ = std::max<std::uint64_t>(config_.initial_ssthresh, 2);
    }
    sync_cc_stats();
    send_rst();
    if (on_send_failed_) {
      // After the state above is clean: the handler may re-send.
      for (auto& payload : failed) on_send_failed_(std::move(payload));
    }
  }

  void send_rst() {
    SegmentHeader header;
    header.epoch = epoch_;
    header.is_rst = true;
    tx_.transmit(config_.header_overhead,
                 [peer = peer_, guard = peer_alive_,
                  bytes = encode_segment_header(header)]() {
                   if (peer == nullptr || guard.expired()) return;
                   peer->on_segment(bytes, {});
                 });
  }

  void send_ack(std::uint64_t trigger_seq) {
    SegmentHeader header;
    header.epoch = recv_epoch_;
    header.is_ack = true;
    header.ack = recv_next_;
    header.ack_epoch = recv_epoch_;
    if (have_ts_echo_) {
      header.has_ts = true;
      header.tsval = kernel_.now();
      header.tsecr = ts_recent_;
    }
    if (config_.sack) build_sack_blocks(trigger_seq, header.sack);
    tx_.transmit(config_.header_overhead + segment_option_bytes(header),
                 [peer = peer_, guard = peer_alive_,
                  bytes = encode_segment_header(header)]() {
                   if (peer == nullptr || guard.expired()) return;
                   peer->on_segment(bytes, {});
                 });
  }

  // Coalesce the reorder buffer into [start, end) ranges. Per RFC 2018 the
  // FIRST block must contain the segment that triggered this ACK — the
  // sender learns about the newest arrival even when the buffer holds more
  // ranges than max_sack_blocks can report; remaining slots are filled
  // lowest-first so the oldest holes' neighbors stay visible too.
  void build_sack_blocks(std::uint64_t trigger_seq,
                         std::vector<SackBlock>& out) const {
    std::vector<SackBlock> ranges;
    for (auto it = reorder_.begin(); it != reorder_.end();) {
      SackBlock block{it->first, it->first + 1};
      for (++it; it != reorder_.end() && it->first == block.end; ++it) {
        ++block.end;
      }
      ranges.push_back(block);
    }
    std::size_t first = ranges.size();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].start <= trigger_seq && trigger_seq < ranges[i].end) {
        first = i;
        break;
      }
    }
    const std::size_t cap = static_cast<std::size_t>(
        std::max(config_.max_sack_blocks, 1));
    if (first < ranges.size()) out.push_back(ranges[first]);
    for (std::size_t i = 0; i < ranges.size() && out.size() < cap; ++i) {
      if (i != first) out.push_back(ranges[i]);
    }
    // The wire format requires ascending, disjoint blocks; the trigger
    // block jumped the queue, so restore order.
    std::sort(out.begin(), out.end(),
              [](const SackBlock& a, const SackBlock& b) {
                return a.start < b.start;
              });
  }

  void enter_recovery() {
    if (!cc_on() || in_recovery_) return;
    ssthresh_ = std::max<std::uint64_t>(flight_ / 2, 2);
    cwnd_ = std::min<std::uint64_t>(
        ssthresh_ + static_cast<std::uint64_t>(config_.dupack_threshold),
        config_.max_cwnd);
    ca_credit_ = 0;
    in_recovery_ = true;
    // Recovery ends once the ACK passes the highest seq actually on the
    // wire when the loss was detected — NOT next_seq_, which also counts
    // messages still queued behind the window (using it would pin the
    // channel in recovery for the rest of the transfer and turn every
    // partial ACK into a spurious retransmission of healthy data).
    recover_ = highest_transmitted_;
    sync_cc_stats();
  }

  // Retransmit `seq` because loss was detected by feedback (dup ACKs, SACK,
  // or a partial ACK in recovery) rather than by the timer: no RTO backoff.
  // Returns false if the segment is gone, sacked, or already repaired.
  bool loss_retransmit(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return false;
    Pending& p = it->second;
    if (!p.transmitted || p.sacked || p.lost_marked) return false;
    p.retransmitted = true;
    p.lost_marked = true;
    ++stats_.retransmissions;
    transmit_data(seq);
    return true;
  }

  // A hole with >= dupack_threshold sacked segments above it is lost (the
  // RFC 6675 DupThresh rule): retransmit every such hole immediately,
  // without waiting for cumulative progress to expose them one at a time.
  void sack_loss_scan() {
    if (!config_.sack) return;
    std::vector<std::uint64_t> lost;
    int sacked_above = 0;
    for (auto it = outstanding_.rbegin(); it != outstanding_.rend(); ++it) {
      if (it->second.sacked) {
        ++sacked_above;
        continue;
      }
      if (!it->second.transmitted || it->second.lost_marked) continue;
      if (sacked_above >= config_.dupack_threshold) lost.push_back(it->first);
    }
    // Ascending order: repair the oldest hole first.
    for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
      enter_recovery();
      if (loss_retransmit(*it)) ++stats_.sack_retransmits;
    }
  }

  void on_ack(const SegmentHeader& seg) {
    process_ack_info(seg, /*pure=*/true);
  }

  // Consume the cumulative-ACK information a segment carries. Pure ACKs
  // (`pure` = true) drive the full machinery; piggybacked ack fields on DATA
  // segments (`pure` = false) advance the window, grow cwnd, and restart the
  // silence timer, but are excluded from dup-ACK counting (a DATA arrival is
  // not a "same cumulative point again" loss signal) and from TSopt RTT
  // sampling (a DATA segment's tsval is the peer's send time, not an echo of
  // ours). Piggybacking matters under asymmetric loss: when a run of pure
  // ACKs dies on the wire, the peer's own DATA flowing the other way still
  // confirms delivery — without it the stuck segment's RTO backs off toward
  // max_rto while perfectly healthy traffic crosses the same link.
  void process_ack_info(const SegmentHeader& seg, bool pure) {
    // The ack refers to an incarnation of *our* seq stream; ignore it unless
    // it is the current one (seqs restart at 0 on reset, so a stale ack
    // could otherwise confirm new-epoch segments it never saw).
    if (seg.ack_epoch != epoch_) return;
    // Cumulative ACK: everything below seg.ack is confirmed delivered.
    bool advanced = false;
    std::uint64_t newly_acked = 0;
    while (!outstanding_.empty() && outstanding_.begin()->first < seg.ack) {
      auto it = outstanding_.begin();
      if (it->second.transmitted && !it->second.sacked) --flight_;
      if (!config_.timestamps && !it->second.retransmitted) {
        sample_rtt(kernel_.now() - it->second.sent_at);
      }
      ++stats_.messages_acked;
      ++newly_acked;
      outstanding_.erase(it);
      advanced = true;
    }
    // TSopt: one unambiguous sample per advancing ACK, retransmitted or
    // not — this is what reconverges the estimator right after an outage.
    if (pure && config_.timestamps && seg.has_ts && advanced &&
        kernel_.now() >= seg.tsecr) {
      sample_rtt(kernel_.now() - seg.tsecr);
    }
    // SACK: out-of-order data held at the receiver leaves the flight and
    // is never retransmitted; it stays outstanding until cumulatively
    // acked (a reset before that still fails it — see channel.h).
    bool sack_progress = false;
    if (config_.sack) {
      for (const SackBlock& block : seg.sack) {
        for (auto it = outstanding_.lower_bound(block.start);
             it != outstanding_.end() && it->first < block.end; ++it) {
          Pending& p = it->second;
          if (!p.transmitted || p.sacked) continue;
          p.sacked = true;
          sack_progress = true;
          --flight_;
        }
      }
    }

    if (advanced) consecutive_timeouts_ = 0;

    if (seg.ack > highest_ack_ || advanced) {
      highest_ack_ = std::max(highest_ack_, seg.ack);
      dup_acks_ = 0;
      if (cc_on()) {
        if (in_recovery_) {
          if (seg.ack > recover_) {
            // Full ACK: recovery is over, deflate to ssthresh.
            in_recovery_ = false;
            cwnd_ = std::max<std::uint64_t>(ssthresh_, 1);
          } else if (!config_.sack) {
            // Partial ACK (NewReno): the next hole starts at seg.ack;
            // repair it immediately without leaving recovery. With SACK
            // on this blind retransmit is skipped — the scoreboard scan
            // below retransmits only holes the blocks prove lost, so a
            // segment that is merely still in flight isn't duplicated.
            if (loss_retransmit(seg.ack)) ++stats_.fast_retransmits;
          }
        } else if (cwnd_ < ssthresh_) {
          cwnd_ = std::min(cwnd_ + newly_acked, config_.max_cwnd);  // slow start
        } else {
          // Congestion avoidance: +1 segment per cwnd's worth of ACKs.
          ca_credit_ += newly_acked;
          while (ca_credit_ >= cwnd_ && cwnd_ < config_.max_cwnd) {
            ca_credit_ -= cwnd_;
            ++cwnd_;
          }
        }
      }
    } else if (pure && seg.ack == highest_ack_) {
      // Duplicate cumulative ACK for data still outstanding: the peer is
      // receiving *later* segments while this one is missing.
      auto hole = outstanding_.find(seg.ack);
      if (hole != outstanding_.end() && hole->second.transmitted &&
          !hole->second.sacked) {
        ++dup_acks_;
        if (cc_on() && in_recovery_) {
          // Inflation: each further dup ACK means a segment left the wire.
          cwnd_ = std::min(cwnd_ + 1, config_.max_cwnd);
        }
        if (dup_acks_ == config_.dupack_threshold) {
          enter_recovery();
          if (loss_retransmit(seg.ack)) ++stats_.fast_retransmits;
        }
      }
    }
    // else: reordered old ACK — ignore.

    sack_loss_scan();
    sync_cc_stats();
    // Progress of any kind (cumulative or SACK) restarts the silence
    // timer; a pure duplicate leaves the armed deadline in place.
    update_retx_timer(/*restart=*/advanced || sack_progress);
    try_send();
  }

  void on_segment(const common::Bytes& header_bytes, common::Bytes payload) {
    MAGMA_HOST_SCOPE("net.channel", "on_segment");
    // The header crossed the simulated wire encoded; anything that does
    // not decode is line noise and is dropped (fail-soft, like a bad TCP
    // checksum).
    common::Result<SegmentHeader> decoded =
        decode_segment_header(header_bytes);
    if (!decoded.ok()) return;
    const SegmentHeader& seg = decoded.value();
    if (seg.is_ack) {
      on_ack(seg);
      return;
    }
    if (seg.is_rst) {
      // Peer reset: drop everything buffered for the dead epoch so stale
      // payloads can't linger (they would otherwise sit in reorder_ until
      // the next DATA arrival, potentially forever on a quiet channel).
      if (seg.epoch > recv_epoch_) {
        recv_epoch_ = seg.epoch;
        recv_next_ = 0;
        reorder_.clear();
      }
      return;
    }
    // DATA path.
    if (seg.epoch < recv_epoch_) return;  // stale incarnation
    if (seg.epoch > recv_epoch_) {
      // Peer reset the connection: adopt the new incarnation.
      recv_epoch_ = seg.epoch;
      recv_next_ = 0;
      reorder_.clear();
    }
    // The ack fields piggybacked on every DATA segment confirm our own
    // outbound data — process them before the payload so the window and
    // the retransmission timer see the progress even if every pure ACK
    // toward us is being lost.
    process_ack_info(seg, /*pure=*/false);
    if (seg.has_ts) {
      ts_recent_ = seg.tsval;
      have_ts_echo_ = true;
    }
    if (seg.seq < recv_next_ || reorder_.find(seg.seq) != reorder_.end()) {
      // Duplicate of data we already hold: the sender's RTO fired although
      // the original arrived (or its ACK is still in flight).
      ++stats_.spurious_retransmits;
    }
    if (seg.seq >= recv_next_) {
      reorder_.emplace(seg.seq, std::move(payload));
      // Drain in-order prefix.
      while (!reorder_.empty() && reorder_.begin()->first == recv_next_) {
        auto node = reorder_.extract(reorder_.begin());
        ++recv_next_;
        ++stats_.messages_delivered;
        if (receiver_) receiver_(std::move(node.mapped()));
      }
    }
    send_ack(seg.seq);
  }

  sim::Kernel& kernel_;
  sim::Link& tx_;
  ReliableConfig config_;
  ReliableEndpoint* peer_ = nullptr;
  // Liveness token (see DatagramEndpoint): segments in flight toward an
  // endpoint destroyed before arrival are dropped instead of dereferencing
  // a dangling pointer.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
  std::weak_ptr<const void> peer_alive_;
  std::function<void(common::Bytes)> receiver_;
  std::function<void(common::Bytes)> on_send_failed_;

  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  PooledMap<std::uint64_t, Pending> outstanding_;
  std::deque<std::uint64_t> send_queue_;  // seqs awaiting first transmission
  std::uint64_t highest_ack_ = 0;
  std::uint64_t highest_transmitted_ = 0;  // highest seq ever on the wire
  int dup_acks_ = 0;

  // The connection's single retransmission timer (RFC 6298 §5).
  sim::EventId retx_timer_;
  bool timer_armed_ = false;
  int consecutive_timeouts_ = 0;  // backoff exponent, reset on progress

  // Congestion state (segments). cwnd_/ssthresh_ are live only when
  // config_.congestion_control; flight_ is tracked regardless.
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  std::uint64_t flight_ = 0;
  std::uint64_t ca_credit_ = 0;  // fractional cwnd growth accumulator
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  // highest seq on the wire at loss detection

  std::uint64_t recv_epoch_ = 0;
  std::uint64_t recv_next_ = 0;
  PooledMap<std::uint64_t, common::Bytes> reorder_;
  sim::TimePoint ts_recent_ = 0;  // tsval of the last DATA segment received
  bool have_ts_echo_ = false;

  ReliableStats stats_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Segment header wire codec
// ---------------------------------------------------------------------------

common::Bytes encode_segment_header(const SegmentHeader& header) {
  rpc::Writer w;
  // Exact encoded size: one reservation instead of log2(size) regrows.
  w.reserve(1 + 4 * 8 + (header.has_ts ? 16 : 0) + 1 + 16 * header.sack.size());
  std::uint8_t flags = 0;
  if (header.is_ack) flags |= kFlagAck;
  if (header.is_rst) flags |= kFlagRst;
  if (header.has_ts) flags |= kFlagTs;
  w.u8(flags);
  w.u64(header.epoch);
  w.u64(header.seq);
  w.u64(header.ack);
  w.u64(header.ack_epoch);
  if (header.has_ts) {
    w.i64(header.tsval);
    w.i64(header.tsecr);
  }
  w.u8(static_cast<std::uint8_t>(header.sack.size()));
  for (const SackBlock& block : header.sack) {
    w.u64(block.start);
    w.u64(block.end);
  }
  return std::move(w).take();
}

common::Result<SegmentHeader> decode_segment_header(common::BytesView data) {
  rpc::Reader r(data);
  SegmentHeader header;
  const std::uint8_t flags = r.u8();
  if ((flags & kFlagReservedMask) != 0) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "reserved segment flags"};
  }
  header.is_ack = (flags & kFlagAck) != 0;
  header.is_rst = (flags & kFlagRst) != 0;
  header.has_ts = (flags & kFlagTs) != 0;
  header.epoch = r.u64();
  header.seq = r.u64();
  header.ack = r.u64();
  header.ack_epoch = r.u64();
  if (header.has_ts) {
    header.tsval = r.i64();
    header.tsecr = r.i64();
  }
  const std::uint8_t blocks = r.u8();
  if (blocks > kDecodeSackLimit) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "oversized SACK list"};
  }
  std::uint64_t prev_end = 0;
  for (std::uint8_t i = 0; i < blocks && r.ok(); ++i) {
    SackBlock block;
    block.start = r.u64();
    block.end = r.u64();
    // Blocks must be non-empty, ascending, and disjoint.
    if (block.start >= block.end || (i > 0 && block.start < prev_end)) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "malformed SACK block"};
    }
    prev_end = block.end;
    header.sack.push_back(block);
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt segment header"};
  }
  return header;
}

std::uint64_t segment_option_bytes(const SegmentHeader& header) {
  std::uint64_t bytes = 0;
  if (header.has_ts) bytes += 10;  // kind + len + 2 x 32-bit timestamps
  if (!header.sack.empty()) bytes += 2 + 8 * header.sack.size();
  return bytes;
}

ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path) {
  (void)kernel;
  auto a = std::make_unique<DatagramEndpoint>(path.forward);
  auto b = std::make_unique<DatagramEndpoint>(path.reverse);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ChannelPair{std::move(a), std::move(b)};
}

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config) {
  auto a = std::make_unique<ReliableEndpoint>(kernel, path.forward, config);
  auto b = std::make_unique<ReliableEndpoint>(kernel, path.reverse, config);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ReliablePair{std::move(a), std::move(b)};
}

}  // namespace magma::net
