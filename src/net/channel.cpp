#include "net/channel.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/log.h"

namespace magma::net {

namespace {

constexpr std::uint64_t kDatagramOverhead = 28;  // IP + UDP headers

// Clock granularity G of RFC 6298: the minimum variance term in the RTO.
constexpr sim::Duration kRtoGranularity = 1 * sim::kMillisecond;

// ---------------------------------------------------------------------------
// Datagram transport
// ---------------------------------------------------------------------------

class DatagramEndpoint final : public Channel {
 public:
  explicit DatagramEndpoint(sim::Link& tx) : tx_(tx) {}

  void set_peer(DatagramEndpoint* peer) {
    peer_ = peer;
    peer_alive_ = peer ? std::weak_ptr<const void>(peer->alive_)
                       : std::weak_ptr<const void>();
  }

  void send(common::Bytes message) override {
    const std::uint64_t wire_size = message.size() + kDatagramOverhead;
    // The delivery closure outlives this call (it sits in the kernel's event
    // queue for the link's latency); the peer's liveness token turns a
    // delivery to a destroyed endpoint into a silent drop.
    tx_.transmit(wire_size, [peer = peer_, guard = peer_alive_,
                             msg = std::move(message)]() mutable {
      if (peer == nullptr || guard.expired()) return;
      if (peer->receiver_) peer->receiver_(std::move(msg));
    });
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

 private:
  sim::Link& tx_;
  DatagramEndpoint* peer_ = nullptr;
  // Liveness token: in-flight segments hold a weak reference and drop
  // themselves if the destination died before arrival.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
  std::weak_ptr<const void> peer_alive_;
  std::function<void(common::Bytes)> receiver_;
};

// ---------------------------------------------------------------------------
// Reliable transport
// ---------------------------------------------------------------------------
//
// Discrete-message simplification of TCP: every DATA segment carries a
// sequence number; the peer responds with a cumulative ACK; unacked segments
// retransmit on an RFC 6298 adaptive RTO (see channel.h for the estimator,
// Karn's rule, fast retransmit, and reset semantics). Messages deliver in
// order, exactly once per epoch.

struct Segment {
  std::uint64_t epoch;  // connection incarnation (bumped on reset)
  std::uint64_t seq;
  bool is_ack;
  bool is_rst;        // reset notification: peer drops the dead epoch's state
  std::uint64_t ack;  // cumulative: all seq < ack received
  common::Bytes payload;
};

class ReliableEndpoint final : public ReliableChannel {
 public:
  ReliableEndpoint(sim::Kernel& kernel, sim::Link& tx, ReliableConfig config)
      : kernel_(kernel), tx_(tx), config_(config) {
    stats_.rto = config_.initial_rto;
  }

  ~ReliableEndpoint() override {
    // In-flight link deliveries are defused by the liveness token; the
    // retransmission timers still reference `this` and must be cancelled.
    for (auto& [seq, pending] : outstanding_) kernel_.cancel(pending.timer);
  }

  void set_peer(ReliableEndpoint* peer) {
    peer_ = peer;
    peer_alive_ = peer ? std::weak_ptr<const void>(peer->alive_)
                       : std::weak_ptr<const void>();
  }

  void send(common::Bytes message) override {
    ++stats_.messages_sent;
    const std::uint64_t seq = next_seq_++;
    auto& pending = outstanding_[seq];
    pending.payload = std::move(message);
    pending.rto = current_rto();
    pending.retries = 0;
    pending.retransmitted = false;
    transmit_data(seq);
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

  void set_send_failure_handler(
      std::function<void(common::Bytes)> handler) override {
    on_send_failed_ = std::move(handler);
  }

  const ReliableStats& stats() const override { return stats_; }

  std::size_t reorder_backlog() const override { return reorder_.size(); }

 private:
  struct Pending {
    common::Bytes payload;
    sim::Duration rto;
    int retries;
    bool retransmitted;       // Karn's rule: ambiguous ACK, never sample
    sim::TimePoint sent_at;   // last (re)transmission time
    sim::EventId timer;
  };

  sim::Duration current_rto() const {
    if (!config_.adaptive_rto || stats_.rtt_samples == 0) {
      return config_.initial_rto;
    }
    return stats_.rto;
  }

  void sample_rtt(sim::Duration r) {
    if (!config_.adaptive_rto) return;
    if (stats_.rtt_samples == 0) {
      stats_.srtt = r;
      stats_.rttvar = r / 2;
    } else {
      const sim::Duration err =
          stats_.srtt > r ? stats_.srtt - r : r - stats_.srtt;
      stats_.rttvar = (3 * stats_.rttvar + err) / 4;
      stats_.srtt = (7 * stats_.srtt + r) / 8;
    }
    ++stats_.rtt_samples;
    stats_.rto = std::clamp(
        stats_.srtt + std::max(kRtoGranularity, 4 * stats_.rttvar),
        config_.min_rto, config_.max_rto);
  }

  void transmit_data(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // already acked
    const std::uint64_t wire =
        it->second.payload.size() + config_.header_overhead;
    it->second.sent_at = kernel_.now();
    // Copy the payload into the in-flight segment; the original stays in
    // `outstanding_` for retransmission.
    Segment seg{epoch_, seq, false, false, 0, it->second.payload};
    tx_.transmit(wire, [peer = peer_, guard = peer_alive_,
                        seg = std::move(seg)]() mutable {
      if (peer == nullptr || guard.expired()) return;
      peer->on_segment(std::move(seg));
    });
    arm_timer(seq);
  }

  void arm_timer(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    p.timer = kernel_.schedule(p.rto, [this, seq]() { on_timeout(seq); });
  }

  void on_timeout(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    if (++p.retries > config_.max_retries) {
      reset_connection();
      return;
    }
    ++stats_.retransmissions;
    p.retransmitted = true;
    p.rto = std::min<sim::Duration>(p.rto * 2, config_.max_rto);
    transmit_data(seq);
  }

  // Connection reset (the TCP analogue of RST after repeated RTO): every
  // unacknowledged message on this incarnation is handed to the failure
  // callback — never silently dropped — and a fresh epoch starts so
  // post-outage traffic isn't wedged behind the sequence gap. An RST
  // notification tells the peer to discard reorder state buffered for the
  // dead epoch. Callers above (RPC) fail outstanding calls immediately.
  void reset_connection() {
    stats_.failures += outstanding_.size();
    ++stats_.resets;
    std::vector<common::Bytes> failed;
    failed.reserve(outstanding_.size());
    for (auto& [seq, pending] : outstanding_) {
      kernel_.cancel(pending.timer);
      failed.push_back(std::move(pending.payload));
    }
    outstanding_.clear();
    ++epoch_;
    next_seq_ = 0;
    highest_ack_ = 0;
    dup_acks_ = 0;
    send_rst();
    if (on_send_failed_) {
      // After the state above is clean: the handler may re-send.
      for (auto& payload : failed) on_send_failed_(std::move(payload));
    }
  }

  void send_rst() {
    Segment seg{epoch_, 0, false, true, 0, {}};
    tx_.transmit(config_.header_overhead,
                 [peer = peer_, guard = peer_alive_, seg]() {
                   if (peer == nullptr || guard.expired()) return;
                   peer->on_segment(seg);
                 });
  }

  void send_ack() {
    Segment seg{recv_epoch_, 0, true, false, recv_next_, {}};
    tx_.transmit(config_.header_overhead,
                 [peer = peer_, guard = peer_alive_, seg]() {
                   if (peer == nullptr || guard.expired()) return;
                   peer->on_segment(seg);
                 });
  }

  void on_ack(const Segment& seg) {
    if (seg.epoch != epoch_) return;  // stale incarnation
    // Cumulative ACK: everything below seg.ack is confirmed delivered.
    bool advanced = false;
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      if (it->first < seg.ack) {
        kernel_.cancel(it->second.timer);
        if (!it->second.retransmitted) {
          sample_rtt(kernel_.now() - it->second.sent_at);
        }
        ++stats_.messages_acked;
        it = outstanding_.erase(it);
        advanced = true;
      } else {
        ++it;
      }
    }
    if (seg.ack > highest_ack_ || advanced) {
      highest_ack_ = std::max(highest_ack_, seg.ack);
      dup_acks_ = 0;
      return;
    }
    if (seg.ack < highest_ack_) return;  // reordered old ACK
    // Duplicate cumulative ACK for data still outstanding: the peer is
    // receiving *later* segments while this one is missing.
    if (outstanding_.find(seg.ack) == outstanding_.end()) return;
    if (++dup_acks_ == config_.dupack_threshold) {
      fast_retransmit(seg.ack);
    }
  }

  void fast_retransmit(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    kernel_.cancel(p.timer);
    p.retransmitted = true;
    ++stats_.retransmissions;
    ++stats_.fast_retransmits;
    // No RTO backoff: loss was detected by dupacks, not by the timer.
    transmit_data(seq);
  }

  void on_segment(Segment seg) {
    if (seg.is_ack) {
      on_ack(seg);
      return;
    }
    if (seg.is_rst) {
      // Peer reset: drop everything buffered for the dead epoch so stale
      // payloads can't linger (they would otherwise sit in reorder_ until
      // the next DATA arrival, potentially forever on a quiet channel).
      if (seg.epoch > recv_epoch_) {
        recv_epoch_ = seg.epoch;
        recv_next_ = 0;
        reorder_.clear();
      }
      return;
    }
    // DATA path.
    if (seg.epoch < recv_epoch_) return;  // stale incarnation
    if (seg.epoch > recv_epoch_) {
      // Peer reset the connection: adopt the new incarnation.
      recv_epoch_ = seg.epoch;
      recv_next_ = 0;
      reorder_.clear();
    }
    if (seg.seq < recv_next_ || reorder_.find(seg.seq) != reorder_.end()) {
      // Duplicate of data we already hold: the sender's RTO fired although
      // the original arrived (or its ACK is still in flight).
      ++stats_.spurious_retransmits;
    }
    if (seg.seq >= recv_next_) {
      reorder_.emplace(seg.seq, std::move(seg.payload));
      // Drain in-order prefix.
      while (!reorder_.empty() && reorder_.begin()->first == recv_next_) {
        auto node = reorder_.extract(reorder_.begin());
        ++recv_next_;
        ++stats_.messages_delivered;
        if (receiver_) receiver_(std::move(node.mapped()));
      }
    }
    send_ack();
  }

  sim::Kernel& kernel_;
  sim::Link& tx_;
  ReliableConfig config_;
  ReliableEndpoint* peer_ = nullptr;
  // Liveness token (see DatagramEndpoint): segments in flight toward an
  // endpoint destroyed before arrival are dropped instead of dereferencing
  // a dangling pointer.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
  std::weak_ptr<const void> peer_alive_;
  std::function<void(common::Bytes)> receiver_;
  std::function<void(common::Bytes)> on_send_failed_;

  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> outstanding_;
  std::uint64_t highest_ack_ = 0;
  int dup_acks_ = 0;

  std::uint64_t recv_epoch_ = 0;
  std::uint64_t recv_next_ = 0;
  std::map<std::uint64_t, common::Bytes> reorder_;

  ReliableStats stats_;
};

}  // namespace

ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path) {
  (void)kernel;
  auto a = std::make_unique<DatagramEndpoint>(path.forward);
  auto b = std::make_unique<DatagramEndpoint>(path.reverse);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ChannelPair{std::move(a), std::move(b)};
}

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config) {
  auto a = std::make_unique<ReliableEndpoint>(kernel, path.forward, config);
  auto b = std::make_unique<ReliableEndpoint>(kernel, path.reverse, config);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ReliablePair{std::move(a), std::move(b)};
}

}  // namespace magma::net
