#include "net/channel.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace magma::net {

namespace {

constexpr std::uint64_t kDatagramOverhead = 28;  // IP + UDP headers

// ---------------------------------------------------------------------------
// Datagram transport
// ---------------------------------------------------------------------------

class DatagramEndpoint final : public Channel {
 public:
  explicit DatagramEndpoint(sim::Link& tx) : tx_(tx) {}

  void set_peer(DatagramEndpoint* peer) { peer_ = peer; }

  void send(common::Bytes message) override {
    const std::uint64_t wire_size = message.size() + kDatagramOverhead;
    tx_.transmit(wire_size, [peer = peer_, msg = std::move(message)]() mutable {
      if (peer && peer->receiver_) peer->receiver_(std::move(msg));
    });
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

 private:
  sim::Link& tx_;
  DatagramEndpoint* peer_ = nullptr;
  std::function<void(common::Bytes)> receiver_;
};

// ---------------------------------------------------------------------------
// Reliable transport
// ---------------------------------------------------------------------------
//
// Discrete-message simplification of TCP: every DATA segment carries a
// sequence number; the peer responds with a cumulative ACK; unacked segments
// retransmit on an exponentially backed-off RTO. Messages deliver in order.

struct Segment {
  std::uint64_t epoch;  // connection incarnation (bumped on reset)
  std::uint64_t seq;
  bool is_ack;
  std::uint64_t ack;  // cumulative: all seq < ack received
  common::Bytes payload;
};

class ReliableEndpoint final : public ReliableChannel {
 public:
  ReliableEndpoint(sim::Kernel& kernel, sim::Link& tx, ReliableConfig config)
      : kernel_(kernel), tx_(tx), config_(config) {}

  void set_peer(ReliableEndpoint* peer) { peer_ = peer; }

  void send(common::Bytes message) override {
    ++stats_.messages_sent;
    const std::uint64_t seq = next_seq_++;
    auto& pending = outstanding_[seq];
    pending.payload = std::move(message);
    pending.rto = config_.initial_rto;
    pending.retries = 0;
    transmit_data(seq);
  }

  void set_receiver(std::function<void(common::Bytes)> receiver) override {
    receiver_ = std::move(receiver);
  }

  const ReliableStats& stats() const override { return stats_; }

 private:
  struct Pending {
    common::Bytes payload;
    sim::Duration rto;
    int retries;
    sim::EventId timer;
  };

  void transmit_data(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // already acked
    const std::uint64_t wire =
        it->second.payload.size() + config_.header_overhead;
    // Copy the payload into the in-flight segment; the original stays in
    // `outstanding_` for retransmission.
    Segment seg{epoch_, seq, false, 0, it->second.payload};
    tx_.transmit(wire, [this, seg = std::move(seg)]() mutable {
      if (peer_) peer_->on_segment(std::move(seg));
    });
    arm_timer(seq);
  }

  void arm_timer(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    p.timer = kernel_.schedule(p.rto, [this, seq]() { on_timeout(seq); });
  }

  void on_timeout(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    Pending& p = it->second;
    if (++p.retries > config_.max_retries) {
      // Connection reset (the TCP analogue of RST after repeated RTO):
      // every unacknowledged message on this incarnation is lost, and a
      // fresh epoch starts so post-outage traffic isn't wedged behind the
      // sequence gap. Callers above (RPC) see deadline failures and retry.
      stats_.failures += outstanding_.size();
      for (auto& [_, pending] : outstanding_) {
        kernel_.cancel(pending.timer);
      }
      outstanding_.clear();
      ++epoch_;
      next_seq_ = 0;
      return;
    }
    ++stats_.retransmissions;
    p.rto = std::min<sim::Duration>(p.rto * 2, config_.max_rto);
    transmit_data(seq);
  }

  void send_ack() {
    Segment seg{recv_epoch_, 0, true, recv_next_, {}};
    tx_.transmit(config_.header_overhead, [this, seg]() {
      if (peer_) peer_->on_segment(seg);
    });
  }

  void on_segment(Segment seg) {
    if (seg.is_ack) {
      if (seg.epoch != epoch_) return;  // stale incarnation
      // Cumulative ACK: everything below seg.ack is delivered.
      for (auto it = outstanding_.begin(); it != outstanding_.end();) {
        if (it->first < seg.ack) {
          kernel_.cancel(it->second.timer);
          it = outstanding_.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }
    // DATA path.
    if (seg.epoch < recv_epoch_) return;  // stale incarnation
    if (seg.epoch > recv_epoch_) {
      // Peer reset the connection: adopt the new incarnation.
      recv_epoch_ = seg.epoch;
      recv_next_ = 0;
      reorder_.clear();
    }
    if (seg.seq >= recv_next_) {
      reorder_.emplace(seg.seq, std::move(seg.payload));
      // Drain in-order prefix.
      while (!reorder_.empty() && reorder_.begin()->first == recv_next_) {
        auto node = reorder_.extract(reorder_.begin());
        ++recv_next_;
        ++stats_.messages_delivered;
        if (receiver_) receiver_(std::move(node.mapped()));
      }
    }
    send_ack();
  }

  sim::Kernel& kernel_;
  sim::Link& tx_;
  ReliableConfig config_;
  ReliableEndpoint* peer_ = nullptr;
  std::function<void(common::Bytes)> receiver_;

  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> outstanding_;

  std::uint64_t recv_epoch_ = 0;
  std::uint64_t recv_next_ = 0;
  std::map<std::uint64_t, common::Bytes> reorder_;

  ReliableStats stats_;
};

}  // namespace

ChannelPair make_datagram_pair(sim::Kernel& kernel, DuplexLink& path) {
  (void)kernel;
  auto a = std::make_unique<DatagramEndpoint>(path.forward);
  auto b = std::make_unique<DatagramEndpoint>(path.reverse);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ChannelPair{std::move(a), std::move(b)};
}

ReliablePair make_reliable_pair(sim::Kernel& kernel, DuplexLink& path,
                                ReliableConfig config) {
  auto a = std::make_unique<ReliableEndpoint>(kernel, path.forward, config);
  auto b = std::make_unique<ReliableEndpoint>(kernel, path.reverse, config);
  a->set_peer(b.get());
  b->set_peer(a.get());
  return ReliablePair{std::move(a), std::move(b)};
}

}  // namespace magma::net
