// Deployment cost model — reproduces the economics the paper argues from:
// Table 2 (RAN CapEx for a typical Magma site) and Table 3 (AccessParks's
// per-site installed cost, traditional core vs Magma, −43%).
//
// The numbers are the paper's own (they are inputs, not measurements); the
// model exists so the examples and benches can compute per-site and
// per-network costs for arbitrary deployments, including the scale-down
// story (§2.2): how cost varies with site count under a traditional core's
// large fixed cost versus Magma's per-site AGW.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace magma::cost {

struct LineItem {
  std::string item;
  double unit_cost_usd = 0;
  int quantity = 1;
  std::string notes;

  double total() const { return unit_cost_usd * quantity; }
};

struct BillOfMaterials {
  std::string title;
  std::vector<LineItem> items;

  double total() const;
  // Formatted like the paper's tables (markdown-ish, fixed columns).
  std::string to_table() const;
};

// Table 2: active RAN equipment for a typical Magma site (3x Baicells Nova
// 233, one AGW, accessories) — US$18,760 as printed (the paper's stated
// total; see bench/table2_site_cost for the line-item arithmetic).
BillOfMaterials typical_site_capex();

// Table 3 rows: per-site installed cost for AccessParks-like deployments.
BillOfMaterials accessparks_traditional();
BillOfMaterials accessparks_magma();

struct CostComparison {
  double traditional_usd = 0;
  double magma_usd = 0;
  double savings_usd() const { return traditional_usd - magma_usd; }
  double savings_fraction() const {
    return traditional_usd == 0 ? 0 : savings_usd() / traditional_usd;
  }
};

CostComparison accessparks_comparison();

// Scale-down model (§2.2): a traditional packet core has a large fixed cost
// amortized over sites; Magma adds a small per-site AGW instead. Returns
// per-site cost at the given network size.
struct CoreCostModel {
  double traditional_core_fixed_usd = 150000;  // EPC appliance + licenses
  double traditional_per_site_usd = 3200;      // per-site core HW/SW share
  // A minimal orchestrator is "three virtual machine instances in a cloud"
  // (§3.2) — ~$300/month; the FreedomFi-scale deployment of §4.3.2 costs
  // ~$4,000/month for 5,370 AGWs (set this field accordingly per scenario).
  double magma_orchestrator_monthly_usd = 300;
  double magma_agw_per_site_usd = 450 + 600;  // AGW HW + support share
};

double traditional_per_site_cost(const CoreCostModel& model, int sites);
double magma_per_site_cost(const CoreCostModel& model, int sites,
                           int amortization_months = 36);

}  // namespace magma::cost
