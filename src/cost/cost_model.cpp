#include "cost/cost_model.h"

#include <cstdio>

namespace magma::cost {

double BillOfMaterials::total() const {
  double sum = 0;
  for (const LineItem& item : items) sum += item.total();
  return sum;
}

std::string BillOfMaterials::to_table() const {
  std::string out = title + "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-22s %12s %5s %12s  %s\n", "Item",
                "Unit (US$)", "Qty", "Total (US$)", "Notes");
  out += line;
  for (const LineItem& item : items) {
    std::snprintf(line, sizeof(line), "  %-22s %12.0f %5d %12.0f  %s\n",
                  item.item.c_str(), item.unit_cost_usd, item.quantity,
                  item.total(), item.notes.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-22s %12s %5s %12.0f\n", "TOTAL", "",
                "", total());
  out += line;
  return out;
}

BillOfMaterials typical_site_capex() {
  BillOfMaterials bom;
  bom.title = "Table 2: RAN CapEx for a typical Magma site";
  bom.items = {
      {"LTE eNodeB", 4000, 3,
       "Baicells Nova 233: 1W, 3.5GHz, 96 user, 2x2 MIMO"},
      {"AGW", 450, 1, "Same as used in experiments"},
      {"Accessories", 450, 3,
       "18dBi sector antenna, RF cables, connectors, grounding"},
  };
  return bom;
}

BillOfMaterials accessparks_traditional() {
  BillOfMaterials bom;
  bom.title = "AccessParks per-site installed cost (traditional core)";
  bom.items = {
      {"RAN", 7950, 1, "Identical RAN and backup power"},
      {"Core HW", 1200, 1, ""},
      {"Core SW", 2000, 1, "Licenses/support"},
      {"Field Eng.", 200, 1, "Installation"},
      {"LTE Eng.", 5000, 1, "Planning, core config"},
  };
  return bom;
}

BillOfMaterials accessparks_magma() {
  BillOfMaterials bom;
  bom.title = "AccessParks per-site installed cost (Magma)";
  bom.items = {
      {"RAN", 7950, 1, "Identical RAN and backup power"},
      {"Core HW", 300, 1, ""},
      {"Core SW", 600, 1, "Licenses/support"},
      {"Field Eng.", 200, 1, "Installation"},
      {"LTE Eng.", 330, 1, "Planning, core config"},
  };
  return bom;
}

CostComparison accessparks_comparison() {
  CostComparison cmp;
  cmp.traditional_usd = accessparks_traditional().total();
  cmp.magma_usd = accessparks_magma().total();
  return cmp;
}

double traditional_per_site_cost(const CoreCostModel& model, int sites) {
  if (sites <= 0) return 0;
  return model.traditional_core_fixed_usd / sites +
         model.traditional_per_site_usd;
}

double magma_per_site_cost(const CoreCostModel& model, int sites,
                           int amortization_months) {
  if (sites <= 0) return 0;
  return model.magma_orchestrator_monthly_usd * amortization_months / sites +
         model.magma_agw_per_site_usd;
}

}  // namespace magma::cost
