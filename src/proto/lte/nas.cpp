#include "proto/lte/nas.h"

namespace magma::proto::lte {

namespace {

using rpc::Reader;
using rpc::Writer;

enum class Tag : std::uint8_t {
  kAttachRequest = 1,
  kAuthenticationRequest,
  kAuthenticationResponse,
  kAuthenticationFailure,
  kSecurityModeCommand,
  kSecurityModeComplete,
  kAttachAccept,
  kAttachComplete,
  kAttachReject,
  kDetachRequest,
  kDetachAccept,
  kServiceRequest,
  kServiceReject,
  kServiceAccept,
};

template <std::size_t N>
void put_array(Writer& w, const std::array<std::uint8_t, N>& a) {
  w.bytes(common::BytesView(a.data(), a.size()));
}

template <std::size_t N>
bool get_array(Reader& r, std::array<std::uint8_t, N>& a) {
  const common::Bytes b = r.bytes();
  if (b.size() != N) return false;
  std::copy(b.begin(), b.end(), a.begin());
  return true;
}

void encode_bearer(Writer& w, const DefaultBearer& b) {
  w.u8(b.ebi);
  w.str(b.apn);
  w.u32(b.pdn_address.addr);
  w.u8(b.qci);
  w.u64(b.ambr_dl_bps);
  w.u64(b.ambr_ul_bps);
}

DefaultBearer decode_bearer(Reader& r) {
  DefaultBearer b;
  b.ebi = r.u8();
  b.apn = r.str();
  b.pdn_address.addr = r.u32();
  b.qci = r.u8();
  b.ambr_dl_bps = r.u64();
  b.ambr_ul_bps = r.u64();
  return b;
}

struct Encoder {
  Writer& w;

  void operator()(const AttachRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAttachRequest));
    w.str(m.imsi.value);
    w.boolean(m.capability.supports_eea2);
    w.boolean(m.capability.supports_eia2);
  }
  void operator()(const AuthenticationRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAuthenticationRequest));
    put_array(w, m.rand);
    put_array(w, m.autn);
  }
  void operator()(const AuthenticationResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAuthenticationResponse));
    put_array(w, m.res);
  }
  void operator()(const AuthenticationFailure& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAuthenticationFailure));
    w.u8(static_cast<std::uint8_t>(m.cause));
    put_array(w, m.auts);
  }
  void operator()(const SecurityModeCommand& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kSecurityModeCommand));
    w.u8(m.ciphering_alg);
    w.u8(m.integrity_alg);
    w.u32(m.mac);
  }
  void operator()(const SecurityModeComplete& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kSecurityModeComplete));
    w.u32(m.mac);
  }
  void operator()(const AttachAccept& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAttachAccept));
    w.u32(m.m_tmsi);
    encode_bearer(w, m.bearer);
    w.u32(m.mac);
  }
  void operator()(const AttachComplete& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAttachComplete));
    w.u32(m.mac);
  }
  void operator()(const AttachReject& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAttachReject));
    w.u8(static_cast<std::uint8_t>(m.cause));
  }
  void operator()(const DetachRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDetachRequest));
    w.boolean(m.switch_off);
  }
  void operator()(const DetachAccept&) {
    w.u8(static_cast<std::uint8_t>(Tag::kDetachAccept));
  }
  void operator()(const ServiceRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kServiceRequest));
    w.u32(m.m_tmsi);
    w.u32(m.mac);
  }
  void operator()(const ServiceReject& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kServiceReject));
    w.u8(static_cast<std::uint8_t>(m.cause));
  }
  void operator()(const ServiceAccept& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kServiceAccept));
    w.u32(m.mac);
  }
};

}  // namespace

common::Bytes encode_nas(const NasMessage& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

common::Result<NasMessage> decode_nas(common::BytesView data) {
  Reader r(data);
  const auto tag = static_cast<Tag>(r.u8());
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument, "empty NAS pdu"};
  }
  auto fail = []() -> common::Result<NasMessage> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed NAS pdu"};
  };

  switch (tag) {
    case Tag::kAttachRequest: {
      AttachRequest m;
      m.imsi.value = r.str();
      m.capability.supports_eea2 = r.boolean();
      m.capability.supports_eia2 = r.boolean();
      if (!r.ok() || !m.imsi.valid()) return fail();
      return NasMessage{m};
    }
    case Tag::kAuthenticationRequest: {
      AuthenticationRequest m;
      if (!get_array(r, m.rand) || !get_array(r, m.autn) || !r.ok()) {
        return fail();
      }
      return NasMessage{m};
    }
    case Tag::kAuthenticationResponse: {
      AuthenticationResponse m;
      if (!get_array(r, m.res) || !r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kAuthenticationFailure: {
      AuthenticationFailure m;
      m.cause = static_cast<EmmCause>(r.u8());
      if (!get_array(r, m.auts) || !r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kSecurityModeCommand: {
      SecurityModeCommand m;
      m.ciphering_alg = r.u8();
      m.integrity_alg = r.u8();
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kSecurityModeComplete: {
      SecurityModeComplete m;
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kAttachAccept: {
      AttachAccept m;
      m.m_tmsi = r.u32();
      m.bearer = decode_bearer(r);
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kAttachComplete: {
      AttachComplete m;
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kAttachReject: {
      AttachReject m;
      m.cause = static_cast<EmmCause>(r.u8());
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kDetachRequest: {
      DetachRequest m;
      m.switch_off = r.boolean();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kDetachAccept:
      return NasMessage{DetachAccept{}};
    case Tag::kServiceRequest: {
      ServiceRequest m;
      m.m_tmsi = r.u32();
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kServiceReject: {
      ServiceReject m;
      m.cause = static_cast<EmmCause>(r.u8());
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
    case Tag::kServiceAccept: {
      ServiceAccept m;
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return NasMessage{m};
    }
  }
  return fail();
}

std::string nas_message_name(const NasMessage& msg) {
  struct Namer {
    std::string operator()(const AttachRequest&) { return "AttachRequest"; }
    std::string operator()(const AuthenticationRequest&) {
      return "AuthenticationRequest";
    }
    std::string operator()(const AuthenticationResponse&) {
      return "AuthenticationResponse";
    }
    std::string operator()(const AuthenticationFailure&) {
      return "AuthenticationFailure";
    }
    std::string operator()(const SecurityModeCommand&) {
      return "SecurityModeCommand";
    }
    std::string operator()(const SecurityModeComplete&) {
      return "SecurityModeComplete";
    }
    std::string operator()(const AttachAccept&) { return "AttachAccept"; }
    std::string operator()(const AttachComplete&) { return "AttachComplete"; }
    std::string operator()(const AttachReject&) { return "AttachReject"; }
    std::string operator()(const DetachRequest&) { return "DetachRequest"; }
    std::string operator()(const DetachAccept&) { return "DetachAccept"; }
    std::string operator()(const ServiceRequest&) { return "ServiceRequest"; }
    std::string operator()(const ServiceReject&) { return "ServiceReject"; }
    std::string operator()(const ServiceAccept&) { return "ServiceAccept"; }
  };
  return std::visit(Namer{}, msg);
}

}  // namespace magma::proto::lte
