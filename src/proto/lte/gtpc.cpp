#include "proto/lte/gtpc.h"

#include "rpc/wire.h"

namespace magma::proto::lte {

namespace {

using rpc::Reader;
using rpc::Writer;

enum class Tag : std::uint8_t {
  kCreateSessionRequest = 32,   // real GTP-C message type numbers
  kCreateSessionResponse = 33,
  kModifyBearerRequest = 34,
  kModifyBearerResponse = 35,
  kDeleteSessionRequest = 36,
  kDeleteSessionResponse = 37,
};

struct Encoder {
  Writer& w;

  void operator()(const CreateSessionRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kCreateSessionRequest));
    w.str(m.imsi.value);
    w.str(m.apn);
    w.u32(m.sender_teid_c.value);
    w.u32(m.sender_address.addr);
    w.u32(m.sequence);
  }
  void operator()(const CreateSessionResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kCreateSessionResponse));
    w.u8(m.cause);
    w.u32(m.pgw_teid_c.value);
    w.u32(m.pgw_teid_u.value);
    w.u32(m.pgw_address.addr);
    w.u32(m.pdn_address.addr);
    w.u32(m.sequence);
  }
  void operator()(const ModifyBearerRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kModifyBearerRequest));
    w.u32(m.teid.value);
    w.u32(m.enb_teid_u.value);
    w.u32(m.enb_address.addr);
    w.u32(m.sequence);
  }
  void operator()(const ModifyBearerResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kModifyBearerResponse));
    w.u8(m.cause);
    w.u32(m.sequence);
  }
  void operator()(const DeleteSessionRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDeleteSessionRequest));
    w.u32(m.teid.value);
    w.u32(m.sequence);
  }
  void operator()(const DeleteSessionResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDeleteSessionResponse));
    w.u8(m.cause);
    w.u32(m.sequence);
  }
};

}  // namespace

common::Bytes encode_gtpc(const GtpcMessage& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

common::Result<GtpcMessage> decode_gtpc(common::BytesView data) {
  Reader r(data);
  const auto tag = static_cast<Tag>(r.u8());
  auto fail = []() -> common::Result<GtpcMessage> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed GTP-C pdu"};
  };
  if (!r.ok()) return fail();

  switch (tag) {
    case Tag::kCreateSessionRequest: {
      CreateSessionRequest m;
      m.imsi.value = r.str();
      m.apn = r.str();
      m.sender_teid_c.value = r.u32();
      m.sender_address.addr = r.u32();
      m.sequence = r.u32();
      if (!r.ok() || !m.imsi.valid()) return fail();
      return GtpcMessage{m};
    }
    case Tag::kCreateSessionResponse: {
      CreateSessionResponse m;
      m.cause = r.u8();
      m.pgw_teid_c.value = r.u32();
      m.pgw_teid_u.value = r.u32();
      m.pgw_address.addr = r.u32();
      m.pdn_address.addr = r.u32();
      m.sequence = r.u32();
      if (!r.ok()) return fail();
      return GtpcMessage{m};
    }
    case Tag::kModifyBearerRequest: {
      ModifyBearerRequest m;
      m.teid.value = r.u32();
      m.enb_teid_u.value = r.u32();
      m.enb_address.addr = r.u32();
      m.sequence = r.u32();
      if (!r.ok()) return fail();
      return GtpcMessage{m};
    }
    case Tag::kModifyBearerResponse: {
      ModifyBearerResponse m;
      m.cause = r.u8();
      m.sequence = r.u32();
      if (!r.ok()) return fail();
      return GtpcMessage{m};
    }
    case Tag::kDeleteSessionRequest: {
      DeleteSessionRequest m;
      m.teid.value = r.u32();
      m.sequence = r.u32();
      if (!r.ok()) return fail();
      return GtpcMessage{m};
    }
    case Tag::kDeleteSessionResponse: {
      DeleteSessionResponse m;
      m.cause = r.u8();
      m.sequence = r.u32();
      if (!r.ok()) return fail();
      return GtpcMessage{m};
    }
  }
  return fail();
}

std::string gtpc_message_name(const GtpcMessage& msg) {
  struct Namer {
    std::string operator()(const CreateSessionRequest&) {
      return "CreateSessionRequest";
    }
    std::string operator()(const CreateSessionResponse&) {
      return "CreateSessionResponse";
    }
    std::string operator()(const ModifyBearerRequest&) {
      return "ModifyBearerRequest";
    }
    std::string operator()(const ModifyBearerResponse&) {
      return "ModifyBearerResponse";
    }
    std::string operator()(const DeleteSessionRequest&) {
      return "DeleteSessionRequest";
    }
    std::string operator()(const DeleteSessionResponse&) {
      return "DeleteSessionResponse";
    }
  };
  return std::visit(Namer{}, msg);
}

std::uint32_t gtpc_sequence(const GtpcMessage& msg) {
  return std::visit([](const auto& m) { return m.sequence; }, msg);
}

}  // namespace magma::proto::lte
