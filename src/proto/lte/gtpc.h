// GTP-C v2 messages (TS 29.274), subset for session management.
//
// Used in two places: the Federation Gateway speaks GTP-C toward an MNO's
// P-GW (§3.6), and the ablation bench A2 runs GTP-C over a lossy backhaul
// with its own standards-style naive retransmission (T3-RESPONSE timer, N3
// retries) to demonstrate why Magma terminates GTP at the AGW instead
// (§3.1: GTP "struggles to operate over lower quality or congested backhaul
// links").
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::proto::lte {

// GTP-C retransmission parameters (TS 29.274 §7.6): the protocol's own
// reliability, which performs poorly at high loss/latency.
struct GtpcTimers {
  static constexpr std::int64_t kT3Response_ms = 3000;
  static constexpr int kN3Requests = 3;
};

struct CreateSessionRequest {
  common::Imsi imsi;
  std::string apn = "internet";
  common::Teid sender_teid_c;  // control TEID the peer should reply to
  common::Ipv4 sender_address;
  std::uint32_t sequence = 0;
  bool operator==(const CreateSessionRequest&) const = default;
};

struct CreateSessionResponse {
  std::uint8_t cause = 16;  // 16 = accepted
  common::Teid pgw_teid_c;
  common::Teid pgw_teid_u;   // user-plane tunnel at the P-GW / GTP-A
  common::Ipv4 pgw_address;
  common::Ipv4 pdn_address;  // UE address allocated by the P-GW
  std::uint32_t sequence = 0;
  bool operator==(const CreateSessionResponse&) const = default;
};

struct ModifyBearerRequest {
  common::Teid teid;  // peer's control TEID
  common::Teid enb_teid_u;
  common::Ipv4 enb_address;
  std::uint32_t sequence = 0;
  bool operator==(const ModifyBearerRequest&) const = default;
};

struct ModifyBearerResponse {
  std::uint8_t cause = 16;
  std::uint32_t sequence = 0;
  bool operator==(const ModifyBearerResponse&) const = default;
};

struct DeleteSessionRequest {
  common::Teid teid;
  std::uint32_t sequence = 0;
  bool operator==(const DeleteSessionRequest&) const = default;
};

struct DeleteSessionResponse {
  std::uint8_t cause = 16;
  std::uint32_t sequence = 0;
  bool operator==(const DeleteSessionResponse&) const = default;
};

using GtpcMessage =
    std::variant<CreateSessionRequest, CreateSessionResponse,
                 ModifyBearerRequest, ModifyBearerResponse,
                 DeleteSessionRequest, DeleteSessionResponse>;

common::Bytes encode_gtpc(const GtpcMessage& msg);
common::Result<GtpcMessage> decode_gtpc(common::BytesView data);
std::string gtpc_message_name(const GtpcMessage& msg);

// Sequence number accessor (retransmission matching).
std::uint32_t gtpc_sequence(const GtpcMessage& msg);

}  // namespace magma::proto::lte
