// LTE Non-Access Stratum messages (TS 24.301, EMM + ESM).
//
// These are the radio-specific control messages the AGW's LTE front-end
// terminates (§3.1, Figure 4 left side). Field sets follow the standard; the
// byte encoding is our own wire format (DESIGN.md "Known non-goals").
//
// The attach flow implemented end-to-end (UE ↔ eNodeB ↔ AGW):
//   AttachRequest → AuthenticationRequest → AuthenticationResponse →
//   SecurityModeCommand → SecurityModeComplete →
//   AttachAccept (carrying the ESM ActivateDefaultEpsBearer) →
//   AttachComplete
// plus AuthenticationFailure/AttachReject error legs, and Detach / Service
// Request flows.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"
#include "rpc/wire.h"

namespace magma::proto::lte {

// EMM cause values (TS 24.301 §9.9.3.9), subset we use.
enum class EmmCause : std::uint8_t {
  kImsiUnknownInHss = 2,
  kIllegalUe = 3,
  kPlmnNotAllowed = 11,
  kNetworkFailure = 17,
  kCongestion = 22,
  kSecurityModeRejected = 24,
  kSynchFailure = 21,
};

struct UeNetworkCapability {
  bool supports_eea2 = true;  // AES ciphering
  bool supports_eia2 = true;  // AES integrity
  bool operator==(const UeNetworkCapability&) const = default;
};

struct AttachRequest {
  common::Imsi imsi;
  UeNetworkCapability capability;
  bool operator==(const AttachRequest&) const = default;
};

struct AuthenticationRequest {
  std::array<std::uint8_t, 16> rand{};
  std::array<std::uint8_t, 16> autn{};  // SQN^AK(6) || AMF(2) || MAC-A(8)
  bool operator==(const AuthenticationRequest&) const = default;
};

struct AuthenticationResponse {
  std::array<std::uint8_t, 8> res{};
  bool operator==(const AuthenticationResponse&) const = default;
};

struct AuthenticationFailure {
  EmmCause cause = EmmCause::kSynchFailure;
  std::array<std::uint8_t, 14> auts{};  // resync token (SQNms^AK* || MAC-S)
  bool operator==(const AuthenticationFailure&) const = default;
};

struct SecurityModeCommand {
  std::uint8_t ciphering_alg = 2;  // EEA2
  std::uint8_t integrity_alg = 2;  // EIA2
  std::uint32_t mac = 0;           // integrity-protected by K_NASint
  bool operator==(const SecurityModeCommand&) const = default;
};

struct SecurityModeComplete {
  std::uint32_t mac = 0;
  bool operator==(const SecurityModeComplete&) const = default;
};

// ESM payload carried inside AttachAccept: default EPS bearer activation.
struct DefaultBearer {
  std::uint8_t ebi = 5;  // EPS bearer id
  std::string apn = "internet";
  common::Ipv4 pdn_address;
  std::uint8_t qci = 9;
  std::uint64_t ambr_dl_bps = 0;  // 0 = unlimited
  std::uint64_t ambr_ul_bps = 0;
  bool operator==(const DefaultBearer&) const = default;
};

struct AttachAccept {
  std::uint32_t m_tmsi = 0;  // GUTI short form
  DefaultBearer bearer;
  std::uint32_t mac = 0;
  bool operator==(const AttachAccept&) const = default;
};

struct AttachComplete {
  std::uint32_t mac = 0;
  bool operator==(const AttachComplete&) const = default;
};

struct AttachReject {
  EmmCause cause = EmmCause::kNetworkFailure;
  bool operator==(const AttachReject&) const = default;
};

struct DetachRequest {
  bool switch_off = false;  // no DetachAccept expected when true
  bool operator==(const DetachRequest&) const = default;
};

struct DetachAccept {
  bool operator==(const DetachAccept&) const = default;
};

// Idle→active transition for a UE with an existing context.
struct ServiceRequest {
  std::uint32_t m_tmsi = 0;
  std::uint32_t mac = 0;
  bool operator==(const ServiceRequest&) const = default;
};

struct ServiceReject {
  EmmCause cause = EmmCause::kNetworkFailure;
  bool operator==(const ServiceReject&) const = default;
};

// Confirms the idle→active transition (bearers re-established).
struct ServiceAccept {
  std::uint32_t mac = 0;
  bool operator==(const ServiceAccept&) const = default;
};

using NasMessage =
    std::variant<AttachRequest, AuthenticationRequest, AuthenticationResponse,
                 AuthenticationFailure, SecurityModeCommand,
                 SecurityModeComplete, AttachAccept, AttachComplete,
                 AttachReject, DetachRequest, DetachAccept, ServiceRequest,
                 ServiceReject, ServiceAccept>;

common::Bytes encode_nas(const NasMessage& msg);
common::Result<NasMessage> decode_nas(common::BytesView data);

// Human-readable message name (tracing, Figure-1 bench).
std::string nas_message_name(const NasMessage& msg);

}  // namespace magma::proto::lte
