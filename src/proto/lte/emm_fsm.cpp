#include "proto/lte/emm_fsm.h"

namespace magma::proto::lte {

const char* emm_state_name(EmmState state) {
  switch (state) {
    case EmmState::kDeregistered: return "DEREGISTERED";
    case EmmState::kAuthPending: return "AUTH_PENDING";
    case EmmState::kSecurityPending: return "SECURITY_PENDING";
    case EmmState::kContextPending: return "CONTEXT_PENDING";
    case EmmState::kRegistered: return "REGISTERED";
    case EmmState::kDeregisterPending: return "DEREGISTER_PENDING";
  }
  return "?";
}

const char* emm_event_name(EmmEvent event) {
  switch (event) {
    case EmmEvent::kAttachRequested: return "ATTACH_REQUESTED";
    case EmmEvent::kAuthSucceeded: return "AUTH_SUCCEEDED";
    case EmmEvent::kAuthFailed: return "AUTH_FAILED";
    case EmmEvent::kSecurityEstablished: return "SECURITY_ESTABLISHED";
    case EmmEvent::kSecurityRejected: return "SECURITY_REJECTED";
    case EmmEvent::kContextEstablished: return "CONTEXT_ESTABLISHED";
    case EmmEvent::kContextFailed: return "CONTEXT_FAILED";
    case EmmEvent::kDetachRequested: return "DETACH_REQUESTED";
    case EmmEvent::kDetachComplete: return "DETACH_COMPLETE";
    case EmmEvent::kImplicitDetach: return "IMPLICIT_DETACH";
  }
  return "?";
}

bool EmmFsm::valid(EmmState from, EmmEvent event, EmmState* to) {
  EmmState next = from;
  bool ok = true;
  switch (event) {
    case EmmEvent::kAttachRequested:
      ok = from == EmmState::kDeregistered;
      next = EmmState::kAuthPending;
      break;
    case EmmEvent::kAuthSucceeded:
      ok = from == EmmState::kAuthPending;
      next = EmmState::kSecurityPending;
      break;
    case EmmEvent::kAuthFailed:
      ok = from == EmmState::kAuthPending;
      next = EmmState::kDeregistered;
      break;
    case EmmEvent::kSecurityEstablished:
      ok = from == EmmState::kSecurityPending;
      next = EmmState::kContextPending;
      break;
    case EmmEvent::kSecurityRejected:
      ok = from == EmmState::kSecurityPending;
      next = EmmState::kDeregistered;
      break;
    case EmmEvent::kContextEstablished:
      ok = from == EmmState::kContextPending;
      next = EmmState::kRegistered;
      break;
    case EmmEvent::kContextFailed:
      ok = from == EmmState::kContextPending;
      next = EmmState::kDeregistered;
      break;
    case EmmEvent::kDetachRequested:
      ok = from == EmmState::kRegistered;
      next = EmmState::kDeregisterPending;
      break;
    case EmmEvent::kDetachComplete:
      ok = from == EmmState::kDeregisterPending;
      next = EmmState::kDeregistered;
      break;
    case EmmEvent::kImplicitDetach:
      ok = true;  // always allowed: the network can give up on any UE
      next = EmmState::kDeregistered;
      break;
  }
  if (ok && to != nullptr) *to = next;
  return ok;
}

bool EmmFsm::handle(EmmEvent event) {
  EmmState next;
  if (!valid(state_, event, &next)) {
    ++invalid_;
    return false;
  }
  state_ = next;
  return true;
}

}  // namespace magma::proto::lte
