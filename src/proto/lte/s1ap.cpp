#include "proto/lte/s1ap.h"

#include "rpc/wire.h"

namespace magma::proto::lte {

namespace {

using rpc::Reader;
using rpc::Writer;

enum class Tag : std::uint8_t {
  kS1SetupRequest = 1,
  kS1SetupResponse,
  kS1SetupFailure,
  kInitialUeMessage,
  kUplinkNasTransport,
  kDownlinkNasTransport,
  kInitialContextSetupRequest,
  kInitialContextSetupResponse,
  kInitialContextSetupFailure,
  kUeContextReleaseCommand,
  kUeContextReleaseComplete,
  kUeContextReleaseRequest,
  kPathSwitchRequest,
  kPathSwitchRequestAcknowledge,
  kPaging,
};

struct Encoder {
  Writer& w;

  void operator()(const S1SetupRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kS1SetupRequest));
    w.u32(m.enb_id.value);
    w.str(m.enb_name);
    w.str(m.plmn);
    w.u16(m.tac);
  }
  void operator()(const S1SetupResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kS1SetupResponse));
    w.str(m.mme_name);
    w.u8(m.relative_capacity);
  }
  void operator()(const S1SetupFailure& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kS1SetupFailure));
    w.str(m.cause);
  }
  void operator()(const InitialUeMessage& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInitialUeMessage));
    w.u32(m.enb_ue_s1ap_id);
    w.u16(m.tac);
    w.bytes(m.nas_pdu);
  }
  void operator()(const UplinkNasTransport& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUplinkNasTransport));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.bytes(m.nas_pdu);
  }
  void operator()(const DownlinkNasTransport& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDownlinkNasTransport));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.bytes(m.nas_pdu);
  }
  void operator()(const InitialContextSetupRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInitialContextSetupRequest));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.u32(m.agw_teid_ul.value);
    w.u32(m.agw_address.addr);
    w.bytes(common::BytesView(m.kenb.data(), m.kenb.size()));
    w.bytes(m.nas_pdu);
  }
  void operator()(const InitialContextSetupResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInitialContextSetupResponse));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.u32(m.enb_teid_dl.value);
    w.u32(m.enb_address.addr);
  }
  void operator()(const InitialContextSetupFailure& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInitialContextSetupFailure));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.str(m.cause);
  }
  void operator()(const UeContextReleaseCommand& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUeContextReleaseCommand));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.str(m.cause);
  }
  void operator()(const UeContextReleaseComplete& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUeContextReleaseComplete));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
  }
  void operator()(const UeContextReleaseRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUeContextReleaseRequest));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.str(m.cause);
  }
  void operator()(const PathSwitchRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPathSwitchRequest));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
    w.u32(m.enb_teid_dl.value);
    w.u32(m.enb_address.addr);
  }
  void operator()(const PathSwitchRequestAcknowledge& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPathSwitchRequestAcknowledge));
    w.u32(m.enb_ue_s1ap_id);
    w.u32(m.mme_ue_s1ap_id);
  }
  void operator()(const PagingMessage& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPaging));
    w.str(m.imsi.value);
  }
};

}  // namespace

common::Bytes encode_s1ap(const S1apMessage& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

common::Result<S1apMessage> decode_s1ap(common::BytesView data) {
  Reader r(data);
  const auto tag = static_cast<Tag>(r.u8());
  auto fail = []() -> common::Result<S1apMessage> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed S1AP pdu"};
  };
  if (!r.ok()) return fail();

  switch (tag) {
    case Tag::kS1SetupRequest: {
      S1SetupRequest m;
      m.enb_id.value = r.u32();
      m.enb_name = r.str();
      m.plmn = r.str();
      m.tac = r.u16();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kS1SetupResponse: {
      S1SetupResponse m;
      m.mme_name = r.str();
      m.relative_capacity = r.u8();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kS1SetupFailure: {
      S1SetupFailure m;
      m.cause = r.str();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kInitialUeMessage: {
      InitialUeMessage m;
      m.enb_ue_s1ap_id = r.u32();
      m.tac = r.u16();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kUplinkNasTransport: {
      UplinkNasTransport m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kDownlinkNasTransport: {
      DownlinkNasTransport m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kInitialContextSetupRequest: {
      InitialContextSetupRequest m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.agw_teid_ul.value = r.u32();
      m.agw_address.addr = r.u32();
      const common::Bytes kenb = r.bytes();
      if (kenb.size() != m.kenb.size()) return fail();
      std::copy(kenb.begin(), kenb.end(), m.kenb.begin());
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kInitialContextSetupResponse: {
      InitialContextSetupResponse m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.enb_teid_dl.value = r.u32();
      m.enb_address.addr = r.u32();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kInitialContextSetupFailure: {
      InitialContextSetupFailure m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.cause = r.str();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kUeContextReleaseCommand: {
      UeContextReleaseCommand m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.cause = r.str();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kUeContextReleaseComplete: {
      UeContextReleaseComplete m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kUeContextReleaseRequest: {
      UeContextReleaseRequest m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.cause = r.str();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kPathSwitchRequest: {
      PathSwitchRequest m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      m.enb_teid_dl.value = r.u32();
      m.enb_address.addr = r.u32();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kPathSwitchRequestAcknowledge: {
      PathSwitchRequestAcknowledge m;
      m.enb_ue_s1ap_id = r.u32();
      m.mme_ue_s1ap_id = r.u32();
      if (!r.ok()) return fail();
      return S1apMessage{m};
    }
    case Tag::kPaging: {
      PagingMessage m;
      m.imsi.value = r.str();
      if (!r.ok() || !m.imsi.valid()) return fail();
      return S1apMessage{m};
    }
  }
  return fail();
}

std::string s1ap_message_name(const S1apMessage& msg) {
  struct Namer {
    std::string operator()(const S1SetupRequest&) { return "S1SetupRequest"; }
    std::string operator()(const S1SetupResponse&) { return "S1SetupResponse"; }
    std::string operator()(const S1SetupFailure&) { return "S1SetupFailure"; }
    std::string operator()(const InitialUeMessage&) {
      return "InitialUeMessage";
    }
    std::string operator()(const UplinkNasTransport&) {
      return "UplinkNasTransport";
    }
    std::string operator()(const DownlinkNasTransport&) {
      return "DownlinkNasTransport";
    }
    std::string operator()(const InitialContextSetupRequest&) {
      return "InitialContextSetupRequest";
    }
    std::string operator()(const InitialContextSetupResponse&) {
      return "InitialContextSetupResponse";
    }
    std::string operator()(const InitialContextSetupFailure&) {
      return "InitialContextSetupFailure";
    }
    std::string operator()(const UeContextReleaseCommand&) {
      return "UeContextReleaseCommand";
    }
    std::string operator()(const UeContextReleaseComplete&) {
      return "UeContextReleaseComplete";
    }
    std::string operator()(const UeContextReleaseRequest&) {
      return "UeContextReleaseRequest";
    }
    std::string operator()(const PathSwitchRequest&) {
      return "PathSwitchRequest";
    }
    std::string operator()(const PathSwitchRequestAcknowledge&) {
      return "PathSwitchRequestAcknowledge";
    }
    std::string operator()(const PagingMessage&) { return "Paging"; }
  };
  return std::visit(Namer{}, msg);
}

}  // namespace magma::proto::lte
