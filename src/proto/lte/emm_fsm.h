// EMM (EPS Mobility Management) state machine, TS 24.301 §5.
//
// §3.4: "Backwards compatibility with existing user devices and RAN
// equipment requires Magma to implement standards-defined state machines."
// Both sides of the NAS dialogue use this validated FSM: the UE model in
// src/ran/ue.cpp and the MME role inside the AGW's access management
// service. Invalid transitions are rejected (and counted), never applied —
// a malformed or replayed message must not corrupt a UE context.
#pragma once

#include <cstdint>
#include <string>

namespace magma::proto::lte {

enum class EmmState : std::uint8_t {
  kDeregistered = 0,
  kAuthPending,       // AuthenticationRequest outstanding
  kSecurityPending,   // SecurityModeCommand outstanding
  kContextPending,    // bearer/context setup in flight (network side)
  kRegistered,
  kDeregisterPending,
};

const char* emm_state_name(EmmState state);

enum class EmmEvent : std::uint8_t {
  kAttachRequested = 0,  // Deregistered -> AuthPending
  kAuthSucceeded,        // AuthPending -> SecurityPending
  kAuthFailed,           // AuthPending -> Deregistered
  kSecurityEstablished,  // SecurityPending -> ContextPending
  kSecurityRejected,     // SecurityPending -> Deregistered
  kContextEstablished,   // ContextPending -> Registered
  kContextFailed,        // ContextPending -> Deregistered
  kDetachRequested,      // Registered -> DeregisterPending
  kDetachComplete,       // DeregisterPending -> Deregistered
  kImplicitDetach,       // any -> Deregistered (timeout / failure)
};

const char* emm_event_name(EmmEvent event);

// NAS retransmission/guard timers (TS 24.301 §10.2). These bound how long
// an attach attempt can remain outstanding before it is counted as failed —
// load-bearing in the Figure 6 CSR experiment.
struct EmmTimers {
  // T3410: attach attempt guard (UE side).
  static constexpr std::int64_t kT3410_ms = 15000;
  // T3460: authentication/security procedure guard (network side).
  static constexpr std::int64_t kT3460_ms = 6000;
  // T3450: attach-complete guard (network side).
  static constexpr std::int64_t kT3450_ms = 6000;
  // Mobile-reachable / implicit detach (network side), shortened from the
  // standard's ~58 min to keep simulations brisk; behaviourally identical.
  static constexpr std::int64_t kImplicitDetach_ms = 120000;
};

class EmmFsm {
 public:
  EmmState state() const { return state_; }

  // Apply the event if valid; returns false (and leaves the state unchanged)
  // otherwise.
  bool handle(EmmEvent event);
  static bool valid(EmmState from, EmmEvent event, EmmState* to = nullptr);

  std::uint32_t invalid_transitions() const { return invalid_; }

 private:
  EmmState state_ = EmmState::kDeregistered;
  std::uint32_t invalid_ = 0;
};

}  // namespace magma::proto::lte
