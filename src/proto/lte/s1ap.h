// S1 Application Protocol messages (TS 36.413), eNodeB ↔ AGW.
//
// In a traditional EPC these run over SCTP between the eNodeB and a distant
// MME; in Magma the S1 interface terminates in the AGW co-located with the
// radio (§3), so these messages only ever cross one LAN hop. The subset here
// covers S1 setup, NAS transport, initial context (bearer) setup, and UE
// context release — everything the attach/detach/service flows need.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::proto::lte {

struct S1SetupRequest {
  common::RanNodeId enb_id;
  std::string enb_name;
  std::string plmn = "00101";
  std::uint16_t tac = 1;
  bool operator==(const S1SetupRequest&) const = default;
};

struct S1SetupResponse {
  std::string mme_name;
  std::uint8_t relative_capacity = 255;
  bool operator==(const S1SetupResponse&) const = default;
};

struct S1SetupFailure {
  std::string cause;
  bool operator==(const S1SetupFailure&) const = default;
};

struct InitialUeMessage {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint16_t tac = 1;
  common::Bytes nas_pdu;
  bool operator==(const InitialUeMessage&) const = default;
};

struct UplinkNasTransport {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  common::Bytes nas_pdu;
  bool operator==(const UplinkNasTransport&) const = default;
};

struct DownlinkNasTransport {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  common::Bytes nas_pdu;
  bool operator==(const DownlinkNasTransport&) const = default;
};

// Sets up the radio-side of the default bearer: the eNodeB learns the AGW's
// GTP-U endpoint and the AS security key, and relays the piggybacked
// AttachAccept to the UE.
struct InitialContextSetupRequest {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  common::Teid agw_teid_ul;        // uplink GTP-U TEID at the AGW
  common::Ipv4 agw_address;        // AGW GTP-U endpoint
  std::array<std::uint8_t, 32> kenb{};  // AS root key (K_eNB)
  common::Bytes nas_pdu;           // piggybacked AttachAccept
  bool operator==(const InitialContextSetupRequest&) const = default;
};

struct InitialContextSetupResponse {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  common::Teid enb_teid_dl;  // downlink GTP-U TEID at the eNodeB
  common::Ipv4 enb_address;
  bool operator==(const InitialContextSetupResponse&) const = default;
};

struct InitialContextSetupFailure {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  std::string cause;
  bool operator==(const InitialContextSetupFailure&) const = default;
};

struct UeContextReleaseCommand {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  std::string cause;
  bool operator==(const UeContextReleaseCommand&) const = default;
};

// eNodeB-initiated release (TS 36.413 §8.3.2), e.g. user inactivity: the
// UE drops to ECM-IDLE but stays EMM-REGISTERED — its session survives.
struct UeContextReleaseRequest {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  std::string cause = "user-inactivity";
  bool operator==(const UeContextReleaseRequest&) const = default;
};

// X2-style intra-AGW handover completion: the *target* eNodeB asks the core
// to switch the downlink path to its tunnel endpoint (TS 36.413 §8.4.4).
struct PathSwitchRequest {
  std::uint32_t enb_ue_s1ap_id = 0;  // id at the target eNodeB
  std::uint32_t mme_ue_s1ap_id = 0;
  common::Teid enb_teid_dl;  // target's downlink tunnel endpoint
  common::Ipv4 enb_address;
  bool operator==(const PathSwitchRequest&) const = default;
};

struct PathSwitchRequestAcknowledge {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  bool operator==(const PathSwitchRequestAcknowledge&) const = default;
};

// Paging (TS 36.413 §8.5): wake an ECM-IDLE UE for pending downlink.
struct PagingMessage {
  common::Imsi imsi;  // real paging uses S-TMSI; the identity role is the same
  bool operator==(const PagingMessage&) const = default;
};

struct UeContextReleaseComplete {
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint32_t mme_ue_s1ap_id = 0;
  bool operator==(const UeContextReleaseComplete&) const = default;
};

using S1apMessage =
    std::variant<S1SetupRequest, S1SetupResponse, S1SetupFailure,
                 InitialUeMessage, UplinkNasTransport, DownlinkNasTransport,
                 InitialContextSetupRequest, InitialContextSetupResponse,
                 InitialContextSetupFailure, UeContextReleaseCommand,
                 UeContextReleaseComplete, UeContextReleaseRequest,
                 PathSwitchRequest, PathSwitchRequestAcknowledge,
                 PagingMessage>;

common::Bytes encode_s1ap(const S1apMessage& msg);
common::Result<S1apMessage> decode_s1ap(common::BytesView data);
std::string s1ap_message_name(const S1apMessage& msg);

}  // namespace magma::proto::lte
