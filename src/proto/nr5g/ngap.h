// NGAP messages (TS 38.413), gNB ↔ AGW — the 5G analogue of S1AP.
//
// As with NAS, the structural parallel to proto/lte/s1ap.h is the point: the
// AGW's NR front-end terminates NGAP next to the radio and the generic
// services behind it never see the difference (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::proto::nr5g {

struct NgSetupRequest {
  common::RanNodeId gnb_id;
  std::string gnb_name;
  std::string plmn = "00101";
  bool operator==(const NgSetupRequest&) const = default;
};

struct NgSetupResponse {
  std::string amf_name;
  bool operator==(const NgSetupResponse&) const = default;
};

struct InitialUeMessage5g {
  std::uint32_t ran_ue_ngap_id = 0;
  common::Bytes nas_pdu;
  bool operator==(const InitialUeMessage5g&) const = default;
};

struct UplinkNasTransport5g {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  common::Bytes nas_pdu;
  bool operator==(const UplinkNasTransport5g&) const = default;
};

struct DownlinkNasTransport5g {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  common::Bytes nas_pdu;
  bool operator==(const DownlinkNasTransport5g&) const = default;
};

// 5G separates the PDU session resource setup from initial context setup;
// this carries the user-plane tunnel info for one PDU session.
struct PduSessionResourceSetupRequest {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  std::uint8_t pdu_session_id = 1;
  common::Teid agw_teid_ul;
  common::Ipv4 agw_address;
  common::Bytes nas_pdu;  // piggybacked PduSessionEstablishmentAccept
  bool operator==(const PduSessionResourceSetupRequest&) const = default;
};

struct PduSessionResourceSetupResponse {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  std::uint8_t pdu_session_id = 1;
  common::Teid gnb_teid_dl;
  common::Ipv4 gnb_address;
  bool operator==(const PduSessionResourceSetupResponse&) const = default;
};

struct UeContextReleaseCommand5g {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  std::string cause;
  bool operator==(const UeContextReleaseCommand5g&) const = default;
};

struct UeContextReleaseComplete5g {
  std::uint32_t ran_ue_ngap_id = 0;
  std::uint32_t amf_ue_ngap_id = 0;
  bool operator==(const UeContextReleaseComplete5g&) const = default;
};

using NgapMessage =
    std::variant<NgSetupRequest, NgSetupResponse, InitialUeMessage5g,
                 UplinkNasTransport5g, DownlinkNasTransport5g,
                 PduSessionResourceSetupRequest,
                 PduSessionResourceSetupResponse, UeContextReleaseCommand5g,
                 UeContextReleaseComplete5g>;

common::Bytes encode_ngap(const NgapMessage& msg);
common::Result<NgapMessage> decode_ngap(common::BytesView data);
std::string ngap_message_name(const NgapMessage& msg);

}  // namespace magma::proto::nr5g
