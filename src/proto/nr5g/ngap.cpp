#include "proto/nr5g/ngap.h"

#include "rpc/wire.h"

namespace magma::proto::nr5g {

namespace {

using rpc::Reader;
using rpc::Writer;

enum class Tag : std::uint8_t {
  kNgSetupRequest = 1,
  kNgSetupResponse,
  kInitialUeMessage,
  kUplinkNasTransport,
  kDownlinkNasTransport,
  kPduSessionResourceSetupRequest,
  kPduSessionResourceSetupResponse,
  kUeContextReleaseCommand,
  kUeContextReleaseComplete,
};

struct Encoder {
  Writer& w;

  void operator()(const NgSetupRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kNgSetupRequest));
    w.u32(m.gnb_id.value);
    w.str(m.gnb_name);
    w.str(m.plmn);
  }
  void operator()(const NgSetupResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kNgSetupResponse));
    w.str(m.amf_name);
  }
  void operator()(const InitialUeMessage5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInitialUeMessage));
    w.u32(m.ran_ue_ngap_id);
    w.bytes(m.nas_pdu);
  }
  void operator()(const UplinkNasTransport5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUplinkNasTransport));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
    w.bytes(m.nas_pdu);
  }
  void operator()(const DownlinkNasTransport5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDownlinkNasTransport));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
    w.bytes(m.nas_pdu);
  }
  void operator()(const PduSessionResourceSetupRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPduSessionResourceSetupRequest));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
    w.u8(m.pdu_session_id);
    w.u32(m.agw_teid_ul.value);
    w.u32(m.agw_address.addr);
    w.bytes(m.nas_pdu);
  }
  void operator()(const PduSessionResourceSetupResponse& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPduSessionResourceSetupResponse));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
    w.u8(m.pdu_session_id);
    w.u32(m.gnb_teid_dl.value);
    w.u32(m.gnb_address.addr);
  }
  void operator()(const UeContextReleaseCommand5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUeContextReleaseCommand));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
    w.str(m.cause);
  }
  void operator()(const UeContextReleaseComplete5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kUeContextReleaseComplete));
    w.u32(m.ran_ue_ngap_id);
    w.u32(m.amf_ue_ngap_id);
  }
};

}  // namespace

common::Bytes encode_ngap(const NgapMessage& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

common::Result<NgapMessage> decode_ngap(common::BytesView data) {
  Reader r(data);
  const auto tag = static_cast<Tag>(r.u8());
  auto fail = []() -> common::Result<NgapMessage> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed NGAP pdu"};
  };
  if (!r.ok()) return fail();

  switch (tag) {
    case Tag::kNgSetupRequest: {
      NgSetupRequest m;
      m.gnb_id.value = r.u32();
      m.gnb_name = r.str();
      m.plmn = r.str();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kNgSetupResponse: {
      NgSetupResponse m;
      m.amf_name = r.str();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kInitialUeMessage: {
      InitialUeMessage5g m;
      m.ran_ue_ngap_id = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kUplinkNasTransport: {
      UplinkNasTransport5g m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kDownlinkNasTransport: {
      DownlinkNasTransport5g m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kPduSessionResourceSetupRequest: {
      PduSessionResourceSetupRequest m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      m.pdu_session_id = r.u8();
      m.agw_teid_ul.value = r.u32();
      m.agw_address.addr = r.u32();
      m.nas_pdu = r.bytes();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kPduSessionResourceSetupResponse: {
      PduSessionResourceSetupResponse m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      m.pdu_session_id = r.u8();
      m.gnb_teid_dl.value = r.u32();
      m.gnb_address.addr = r.u32();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kUeContextReleaseCommand: {
      UeContextReleaseCommand5g m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      m.cause = r.str();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
    case Tag::kUeContextReleaseComplete: {
      UeContextReleaseComplete5g m;
      m.ran_ue_ngap_id = r.u32();
      m.amf_ue_ngap_id = r.u32();
      if (!r.ok()) return fail();
      return NgapMessage{m};
    }
  }
  return fail();
}

std::string ngap_message_name(const NgapMessage& msg) {
  struct Namer {
    std::string operator()(const NgSetupRequest&) { return "NgSetupRequest"; }
    std::string operator()(const NgSetupResponse&) { return "NgSetupResponse"; }
    std::string operator()(const InitialUeMessage5g&) {
      return "InitialUeMessage(5G)";
    }
    std::string operator()(const UplinkNasTransport5g&) {
      return "UplinkNasTransport(5G)";
    }
    std::string operator()(const DownlinkNasTransport5g&) {
      return "DownlinkNasTransport(5G)";
    }
    std::string operator()(const PduSessionResourceSetupRequest&) {
      return "PduSessionResourceSetupRequest";
    }
    std::string operator()(const PduSessionResourceSetupResponse&) {
      return "PduSessionResourceSetupResponse";
    }
    std::string operator()(const UeContextReleaseCommand5g&) {
      return "UeContextReleaseCommand(5G)";
    }
    std::string operator()(const UeContextReleaseComplete5g&) {
      return "UeContextReleaseComplete(5G)";
    }
  };
  return std::visit(Namer{}, msg);
}

}  // namespace magma::proto::nr5g
