#include "proto/nr5g/nas5g.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::proto::nr5g {

namespace {

using rpc::Reader;
using rpc::Writer;

enum class Tag : std::uint8_t {
  kRegistrationRequest = 1,
  kAuthenticationRequest,
  kAuthenticationResponse,
  kSecurityModeCommand,
  kSecurityModeComplete,
  kRegistrationAccept,
  kRegistrationComplete,
  kRegistrationReject,
  kPduSessionEstablishmentRequest,
  kPduSessionEstablishmentAccept,
  kPduSessionEstablishmentReject,
  kDeregistrationRequest,
  kDeregistrationAccept,
};

template <std::size_t N>
void put_array(Writer& w, const std::array<std::uint8_t, N>& a) {
  w.bytes(common::BytesView(a.data(), a.size()));
}

template <std::size_t N>
bool get_array(Reader& r, std::array<std::uint8_t, N>& a) {
  const common::Bytes b = r.bytes();
  if (b.size() != N) return false;
  std::copy(b.begin(), b.end(), a.begin());
  return true;
}

struct Encoder {
  Writer& w;

  void operator()(const RegistrationRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRegistrationRequest));
    w.str(m.supi.value);
  }
  void operator()(const AuthenticationRequest5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAuthenticationRequest));
    put_array(w, m.rand);
    put_array(w, m.autn);
  }
  void operator()(const AuthenticationResponse5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAuthenticationResponse));
    put_array(w, m.res_star);
  }
  void operator()(const SecurityModeCommand5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kSecurityModeCommand));
    w.u8(m.ciphering_alg);
    w.u8(m.integrity_alg);
    w.u32(m.mac);
  }
  void operator()(const SecurityModeComplete5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kSecurityModeComplete));
    w.u32(m.mac);
  }
  void operator()(const RegistrationAccept& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRegistrationAccept));
    w.u32(m.fg_tmsi);
    w.u32(m.mac);
  }
  void operator()(const RegistrationComplete& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRegistrationComplete));
    w.u32(m.mac);
  }
  void operator()(const RegistrationReject& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRegistrationReject));
    w.u8(static_cast<std::uint8_t>(m.cause));
  }
  void operator()(const PduSessionEstablishmentRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPduSessionEstablishmentRequest));
    w.u8(m.pdu_session_id);
    w.str(m.dnn);
  }
  void operator()(const PduSessionEstablishmentAccept& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPduSessionEstablishmentAccept));
    w.u8(m.pdu_session_id);
    w.u32(m.ue_address.addr);
    w.u8(m.fiveqi);
    w.u64(m.ambr_dl_bps);
    w.u64(m.ambr_ul_bps);
  }
  void operator()(const PduSessionEstablishmentReject& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kPduSessionEstablishmentReject));
    w.u8(m.pdu_session_id);
    w.u8(static_cast<std::uint8_t>(m.cause));
  }
  void operator()(const DeregistrationRequest5g& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kDeregistrationRequest));
    w.boolean(m.switch_off);
  }
  void operator()(const DeregistrationAccept5g&) {
    w.u8(static_cast<std::uint8_t>(Tag::kDeregistrationAccept));
  }
};

}  // namespace

common::Bytes encode_nas5g(const Nas5gMessage& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

common::Result<Nas5gMessage> decode_nas5g(common::BytesView data) {
  Reader r(data);
  const auto tag = static_cast<Tag>(r.u8());
  auto fail = []() -> common::Result<Nas5gMessage> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed 5G NAS pdu"};
  };
  if (!r.ok()) return fail();

  switch (tag) {
    case Tag::kRegistrationRequest: {
      RegistrationRequest m;
      m.supi.value = r.str();
      if (!r.ok() || !m.supi.valid()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kAuthenticationRequest: {
      AuthenticationRequest5g m;
      if (!get_array(r, m.rand) || !get_array(r, m.autn) || !r.ok()) {
        return fail();
      }
      return Nas5gMessage{m};
    }
    case Tag::kAuthenticationResponse: {
      AuthenticationResponse5g m;
      if (!get_array(r, m.res_star) || !r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kSecurityModeCommand: {
      SecurityModeCommand5g m;
      m.ciphering_alg = r.u8();
      m.integrity_alg = r.u8();
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kSecurityModeComplete: {
      SecurityModeComplete5g m;
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kRegistrationAccept: {
      RegistrationAccept m;
      m.fg_tmsi = r.u32();
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kRegistrationComplete: {
      RegistrationComplete m;
      m.mac = r.u32();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kRegistrationReject: {
      RegistrationReject m;
      m.cause = static_cast<FgmmCause>(r.u8());
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kPduSessionEstablishmentRequest: {
      PduSessionEstablishmentRequest m;
      m.pdu_session_id = r.u8();
      m.dnn = r.str();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kPduSessionEstablishmentAccept: {
      PduSessionEstablishmentAccept m;
      m.pdu_session_id = r.u8();
      m.ue_address.addr = r.u32();
      m.fiveqi = r.u8();
      m.ambr_dl_bps = r.u64();
      m.ambr_ul_bps = r.u64();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kPduSessionEstablishmentReject: {
      PduSessionEstablishmentReject m;
      m.pdu_session_id = r.u8();
      m.cause = static_cast<FgmmCause>(r.u8());
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kDeregistrationRequest: {
      DeregistrationRequest5g m;
      m.switch_off = r.boolean();
      if (!r.ok()) return fail();
      return Nas5gMessage{m};
    }
    case Tag::kDeregistrationAccept:
      return Nas5gMessage{DeregistrationAccept5g{}};
  }
  return fail();
}

std::string nas5g_message_name(const Nas5gMessage& msg) {
  struct Namer {
    std::string operator()(const RegistrationRequest&) {
      return "RegistrationRequest";
    }
    std::string operator()(const AuthenticationRequest5g&) {
      return "AuthenticationRequest(5G)";
    }
    std::string operator()(const AuthenticationResponse5g&) {
      return "AuthenticationResponse(5G)";
    }
    std::string operator()(const SecurityModeCommand5g&) {
      return "SecurityModeCommand(5G)";
    }
    std::string operator()(const SecurityModeComplete5g&) {
      return "SecurityModeComplete(5G)";
    }
    std::string operator()(const RegistrationAccept&) {
      return "RegistrationAccept";
    }
    std::string operator()(const RegistrationComplete&) {
      return "RegistrationComplete";
    }
    std::string operator()(const RegistrationReject&) {
      return "RegistrationReject";
    }
    std::string operator()(const PduSessionEstablishmentRequest&) {
      return "PduSessionEstablishmentRequest";
    }
    std::string operator()(const PduSessionEstablishmentAccept&) {
      return "PduSessionEstablishmentAccept";
    }
    std::string operator()(const PduSessionEstablishmentReject&) {
      return "PduSessionEstablishmentReject";
    }
    std::string operator()(const DeregistrationRequest5g&) {
      return "DeregistrationRequest(5G)";
    }
    std::string operator()(const DeregistrationAccept5g&) {
      return "DeregistrationAccept(5G)";
    }
  };
  return std::visit(Namer{}, msg);
}

}  // namespace magma::proto::nr5g
