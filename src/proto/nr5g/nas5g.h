// 5G NAS messages (TS 24.501): registration + PDU session establishment.
//
// Deliberately parallel to proto/lte/nas.h — the message *shapes* differ
// (SUPI vs IMSI naming, PDU sessions vs EPS bearers, RES* vs RES) but the
// functions are the same, which is the observation behind Table 1: the
// Magma AGW terminates either dialect in a thin front-end and drives the
// same generic access/subscriber/session services.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::proto::nr5g {

enum class FgmmCause : std::uint8_t {
  kIllegalUe = 3,
  kPlmnNotAllowed = 11,
  kNetworkFailure = 17,
  kCongestion = 22,
};

struct RegistrationRequest {
  common::Imsi supi;  // SUPI in IMSI format
  bool operator==(const RegistrationRequest&) const = default;
};

struct AuthenticationRequest5g {
  std::array<std::uint8_t, 16> rand{};
  std::array<std::uint8_t, 16> autn{};
  bool operator==(const AuthenticationRequest5g&) const = default;
};

struct AuthenticationResponse5g {
  // RES* (TS 33.501 A.4) is 16 bytes, vs LTE's 8-byte RES.
  std::array<std::uint8_t, 16> res_star{};
  bool operator==(const AuthenticationResponse5g&) const = default;
};

struct SecurityModeCommand5g {
  std::uint8_t ciphering_alg = 2;  // NEA2
  std::uint8_t integrity_alg = 2;  // NIA2
  std::uint32_t mac = 0;
  bool operator==(const SecurityModeCommand5g&) const = default;
};

struct SecurityModeComplete5g {
  std::uint32_t mac = 0;
  bool operator==(const SecurityModeComplete5g&) const = default;
};

struct RegistrationAccept {
  std::uint32_t fg_tmsi = 0;
  std::uint32_t mac = 0;
  bool operator==(const RegistrationAccept&) const = default;
};

struct RegistrationComplete {
  std::uint32_t mac = 0;
  bool operator==(const RegistrationComplete&) const = default;
};

struct RegistrationReject {
  FgmmCause cause = FgmmCause::kNetworkFailure;
  bool operator==(const RegistrationReject&) const = default;
};

// 5G separates session management from registration (Figure 1: SMF vs AMF);
// the PDU session is requested after registration completes.
struct PduSessionEstablishmentRequest {
  std::uint8_t pdu_session_id = 1;
  std::string dnn = "internet";  // 5G name for APN
  bool operator==(const PduSessionEstablishmentRequest&) const = default;
};

struct PduSessionEstablishmentAccept {
  std::uint8_t pdu_session_id = 1;
  common::Ipv4 ue_address;
  std::uint8_t fiveqi = 9;
  std::uint64_t ambr_dl_bps = 0;
  std::uint64_t ambr_ul_bps = 0;
  bool operator==(const PduSessionEstablishmentAccept&) const = default;
};

struct PduSessionEstablishmentReject {
  std::uint8_t pdu_session_id = 1;
  FgmmCause cause = FgmmCause::kNetworkFailure;
  bool operator==(const PduSessionEstablishmentReject&) const = default;
};

struct DeregistrationRequest5g {
  bool switch_off = false;
  bool operator==(const DeregistrationRequest5g&) const = default;
};

struct DeregistrationAccept5g {
  bool operator==(const DeregistrationAccept5g&) const = default;
};

using Nas5gMessage = std::variant<
    RegistrationRequest, AuthenticationRequest5g, AuthenticationResponse5g,
    SecurityModeCommand5g, SecurityModeComplete5g, RegistrationAccept,
    RegistrationComplete, RegistrationReject, PduSessionEstablishmentRequest,
    PduSessionEstablishmentAccept, PduSessionEstablishmentReject,
    DeregistrationRequest5g, DeregistrationAccept5g>;

common::Bytes encode_nas5g(const Nas5gMessage& msg);
common::Result<Nas5gMessage> decode_nas5g(common::BytesView data);
std::string nas5g_message_name(const Nas5gMessage& msg);

}  // namespace magma::proto::nr5g
