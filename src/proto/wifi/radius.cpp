#include "proto/wifi/radius.h"

namespace magma::proto::wifi {

namespace {

// RFC 2865 attribute type codes.
constexpr std::uint8_t kAttrUserName = 1;
constexpr std::uint8_t kAttrChapPassword = 3;
constexpr std::uint8_t kAttrFramedIp = 8;
constexpr std::uint8_t kAttrCallingStationId = 31;
constexpr std::uint8_t kAttrAcctStatus = 40;
constexpr std::uint8_t kAttrAcctInputOctets = 42;
constexpr std::uint8_t kAttrAcctOutputOctets = 43;
constexpr std::uint8_t kAttrAcctSessionId = 44;
constexpr std::uint8_t kAttrChapChallenge = 60;

void put_tlv(common::Bytes& out, std::uint8_t type, common::BytesView value) {
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(2 + value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

void put_tlv_u32(common::Bytes& out, std::uint8_t type, std::uint32_t v) {
  const std::uint8_t be[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  put_tlv(out, type, common::BytesView(be, 4));
}

void put_tlv_str(common::Bytes& out, std::uint8_t type, const std::string& s) {
  put_tlv(out, type,
          common::BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()));
}

std::uint32_t read_u32(common::BytesView v) {
  if (v.size() != 4) return 0;
  return (std::uint32_t(v[0]) << 24) | (std::uint32_t(v[1]) << 16) |
         (std::uint32_t(v[2]) << 8) | std::uint32_t(v[3]);
}

}  // namespace

common::Bytes encode_radius(const RadiusPacket& pkt) {
  common::Bytes out;
  out.push_back(static_cast<std::uint8_t>(pkt.code));
  out.push_back(pkt.identifier);
  // Length placeholder (filled below).
  out.push_back(0);
  out.push_back(0);

  const RadiusAttributes& a = pkt.attributes;
  if (a.user_name) put_tlv_str(out, kAttrUserName, *a.user_name);
  if (a.chap_password) put_tlv(out, kAttrChapPassword, *a.chap_password);
  if (a.framed_ip) put_tlv_u32(out, kAttrFramedIp, a.framed_ip->addr);
  if (a.calling_station_id) {
    put_tlv_str(out, kAttrCallingStationId, *a.calling_station_id);
  }
  if (a.acct_status) {
    put_tlv_u32(out, kAttrAcctStatus,
                static_cast<std::uint32_t>(*a.acct_status));
  }
  if (a.acct_input_octets) {
    put_tlv_u32(out, kAttrAcctInputOctets, *a.acct_input_octets);
  }
  if (a.acct_output_octets) {
    put_tlv_u32(out, kAttrAcctOutputOctets, *a.acct_output_octets);
  }
  if (a.acct_session_id) put_tlv_str(out, kAttrAcctSessionId, *a.acct_session_id);
  if (a.chap_challenge) put_tlv(out, kAttrChapChallenge, *a.chap_challenge);

  out[2] = static_cast<std::uint8_t>(out.size() >> 8);
  out[3] = static_cast<std::uint8_t>(out.size());
  return out;
}

common::Result<RadiusPacket> decode_radius(common::BytesView data) {
  auto fail = []() -> common::Result<RadiusPacket> {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "malformed RADIUS packet"};
  };
  if (data.size() < 4) return fail();

  RadiusPacket pkt;
  pkt.code = static_cast<RadiusCode>(data[0]);
  pkt.identifier = data[1];
  const std::size_t length = (std::size_t(data[2]) << 8) | data[3];
  if (length != data.size()) return fail();

  std::size_t pos = 4;
  while (pos < data.size()) {
    if (pos + 2 > data.size()) return fail();
    const std::uint8_t type = data[pos];
    const std::uint8_t len = data[pos + 1];
    if (len < 2 || pos + len > data.size()) return fail();
    const common::BytesView value = data.subspan(pos + 2, len - 2);
    RadiusAttributes& a = pkt.attributes;
    switch (type) {
      case kAttrUserName:
        a.user_name = std::string(value.begin(), value.end());
        break;
      case kAttrChapPassword:
        a.chap_password = common::Bytes(value.begin(), value.end());
        break;
      case kAttrFramedIp:
        if (value.size() != 4) return fail();
        a.framed_ip = common::Ipv4{read_u32(value)};
        break;
      case kAttrCallingStationId:
        a.calling_station_id = std::string(value.begin(), value.end());
        break;
      case kAttrAcctStatus:
        if (value.size() != 4) return fail();
        a.acct_status = static_cast<AcctStatus>(read_u32(value));
        break;
      case kAttrAcctInputOctets:
        if (value.size() != 4) return fail();
        a.acct_input_octets = read_u32(value);
        break;
      case kAttrAcctOutputOctets:
        if (value.size() != 4) return fail();
        a.acct_output_octets = read_u32(value);
        break;
      case kAttrAcctSessionId:
        a.acct_session_id = std::string(value.begin(), value.end());
        break;
      case kAttrChapChallenge:
        a.chap_challenge = common::Bytes(value.begin(), value.end());
        break;
      default:
        break;  // unknown attributes are skipped, per RFC
    }
    pos += len;
  }
  return pkt;
}

std::string radius_code_name(RadiusCode code) {
  switch (code) {
    case RadiusCode::kAccessRequest: return "Access-Request";
    case RadiusCode::kAccessAccept: return "Access-Accept";
    case RadiusCode::kAccessReject: return "Access-Reject";
    case RadiusCode::kAccountingRequest: return "Accounting-Request";
    case RadiusCode::kAccountingResponse: return "Accounting-Response";
    case RadiusCode::kAccessChallenge: return "Access-Challenge";
  }
  return "?";
}

}  // namespace magma::proto::wifi
