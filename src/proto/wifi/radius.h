// RADIUS (RFC 2865/2866) — the WiFi world's AAA protocol.
//
// Table 1: for WiFi, access control, subscriber management, and session
// management all correspond to "RADIUS AAA". Magma's WiFi front-end
// terminates RADIUS from access points and maps it onto the same generic
// services the LTE/5G front-ends use. Attributes are encoded as real RFC
// TLVs (type, length, value) and round-trip through encode/decode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::proto::wifi {

enum class RadiusCode : std::uint8_t {
  kAccessRequest = 1,
  kAccessAccept = 2,
  kAccessReject = 3,
  kAccountingRequest = 4,
  kAccountingResponse = 5,
  kAccessChallenge = 11,
};

enum class AcctStatus : std::uint32_t {
  kStart = 1,
  kStop = 2,
  kInterimUpdate = 3,
};

// Attribute set used by the Magma WiFi front-end (absent = not included).
struct RadiusAttributes {
  std::optional<std::string> user_name;           // 1
  std::optional<common::Bytes> chap_password;     // 3 (response to challenge)
  std::optional<common::Ipv4> framed_ip;          // 8
  std::optional<std::string> calling_station_id;  // 31 (client MAC)
  std::optional<AcctStatus> acct_status;          // 40
  std::optional<std::uint32_t> acct_input_octets;   // 42
  std::optional<std::uint32_t> acct_output_octets;  // 43
  std::optional<std::string> acct_session_id;     // 44
  std::optional<common::Bytes> chap_challenge;    // 60

  bool operator==(const RadiusAttributes&) const = default;
};

struct RadiusPacket {
  RadiusCode code = RadiusCode::kAccessRequest;
  std::uint8_t identifier = 0;
  RadiusAttributes attributes;

  bool operator==(const RadiusPacket&) const = default;
};

common::Bytes encode_radius(const RadiusPacket& pkt);
common::Result<RadiusPacket> decode_radius(common::BytesView data);
std::string radius_code_name(RadiusCode code);

}  // namespace magma::proto::wifi
