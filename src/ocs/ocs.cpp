#include "ocs/ocs.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::ocs {

void Ocs::create_account(const common::Imsi& imsi,
                         std::uint64_t balance_bytes) {
  accounts_[imsi] = OcsAccount{balance_bytes, 0, 0};
}

QuotaGrant Ocs::request_quota(const common::Imsi& imsi,
                              std::uint64_t requested) {
  auto it = accounts_.find(imsi);
  if (it == accounts_.end()) return QuotaGrant{0};
  OcsAccount& acct = it->second;
  const std::uint64_t granted = std::min(requested, acct.balance_bytes);
  acct.balance_bytes -= granted;
  acct.outstanding_bytes += granted;
  return QuotaGrant{granted};
}

common::Status Ocs::reconcile(const common::Imsi& imsi, std::uint64_t granted,
                              std::uint64_t used) {
  auto it = accounts_.find(imsi);
  if (it == accounts_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no account"};
  }
  OcsAccount& acct = it->second;
  const std::uint64_t settled = std::min(granted, acct.outstanding_bytes);
  acct.outstanding_bytes -= settled;
  // Under-use returns to the balance; over-use (double-spend across AGWs)
  // is recorded as consumed but cannot be recovered — that is the business
  // cost the quota size caps.
  if (used < settled) acct.balance_bytes += settled - used;
  acct.consumed_bytes += used;
  return common::Status::Ok();
}

const OcsAccount* Ocs::account(const common::Imsi& imsi) const {
  auto it = accounts_.find(imsi);
  return it == accounts_.end() ? nullptr : &it->second;
}

void Ocs::bind(rpc::RpcNode& node) {
  node.register_method(
      kService, kRequestQuota,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        rpc::Reader r(request);
        common::Imsi imsi{r.str()};
        const std::uint64_t requested = r.u64();
        if (!r.ok()) {
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad request"});
          return;
        }
        const QuotaGrant grant = request_quota(imsi, requested);
        rpc::Writer w;
        w.u64(grant.granted_bytes);
        respond(std::move(w).take());
      });

  node.register_method(
      kService, kReconcile,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        rpc::Reader r(request);
        common::Imsi imsi{r.str()};
        const std::uint64_t granted = r.u64();
        const std::uint64_t used = r.u64();
        if (!r.ok()) {
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad request"});
          return;
        }
        const common::Status status = reconcile(imsi, granted, used);
        if (!status.ok()) {
          respond(rpc::Error{status.error()});
          return;
        }
        respond(rpc::Bytes{});
      });
}

}  // namespace magma::ocs
