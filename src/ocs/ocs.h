// Online Charging System (OCS) — the third-party billing counterpart.
//
// §3.4: "The OCS tracks a user's account balance ... and then authorizes
// small quotas of data (e.g., 1MB) to the user via Magma; when the user
// nears completion of their quota, Magma requests another quota on the
// user's behalf from the OCS, which makes the decision on whether to grant
// or deny the request."
//
// The OCS is not part of Magma — it integrates over the network. We expose
// both a direct API (tests) and RPC bindings (sessiond's Gy-like client).
// Grants *reserve* balance immediately; unused quota is returned at session
// teardown. A user who moves between AGWs can therefore overdraw by at most
// (outstanding grants − actual use), i.e. the double-spend bound the paper
// states, measured by bench/ablation_double_spend.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/result.h"
#include "rpc/rpc.h"

namespace magma::ocs {

struct QuotaGrant {
  std::uint64_t granted_bytes = 0;  // 0 = denied (balance empty)
};

struct OcsAccount {
  std::uint64_t balance_bytes = 0;      // unreserved balance
  std::uint64_t outstanding_bytes = 0;  // granted, not yet reconciled
  std::uint64_t consumed_bytes = 0;     // reconciled actual usage
};

class Ocs {
 public:
  void create_account(const common::Imsi& imsi, std::uint64_t balance_bytes);

  // Grant up to `requested` from the remaining balance (partial grants when
  // the balance is nearly empty; zero when exhausted).
  QuotaGrant request_quota(const common::Imsi& imsi, std::uint64_t requested);

  // Reconcile a grant at session end: `used` of the previously granted
  // bytes were actually consumed; the rest returns to the balance.
  common::Status reconcile(const common::Imsi& imsi, std::uint64_t granted,
                           std::uint64_t used);

  const OcsAccount* account(const common::Imsi& imsi) const;

  // RPC service "ocs": RequestQuota{imsi, bytes} and
  // Reconcile{imsi, granted, used}.
  void bind(rpc::RpcNode& node);

  static constexpr const char* kService = "ocs";
  static constexpr const char* kRequestQuota = "RequestQuota";
  static constexpr const char* kReconcile = "Reconcile";

 private:
  std::unordered_map<common::Imsi, OcsAccount> accounts_;
};

}  // namespace magma::ocs
