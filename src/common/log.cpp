#include "common/log.h"

#include <cstdio>
#include <iomanip>

namespace magma::common {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  };
}

void Logger::set_sink(std::function<void(std::string_view)> sink) {
  sink_ = std::move(sink);
}

void Logger::set_time_source(std::function<double()> now_seconds) {
  now_seconds_ = std::move(now_seconds);
}

std::uint64_t Logger::add_event_hook(EventHook hook) {
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Logger::remove_event_hook(std::uint64_t id) {
  std::erase_if(hooks_, [id](const auto& kv) { return kv.first == id; });
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (level < level_ || level_ == LogLevel::kOff) return;
  if (level >= LogLevel::kWarn && level != LogLevel::kOff && !in_hook_ &&
      !hooks_.empty()) {
    in_hook_ = true;
    // By index: a hook may register/remove hooks while running.
    for (std::size_t i = 0; i < hooks_.size(); ++i) {
      if (hooks_[i].second) hooks_[i].second(level, component, msg);
    }
    in_hook_ = false;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::ostringstream line;
  if (now_seconds_) {
    line << '[' << std::fixed << std::setprecision(6) << now_seconds_()
         << "] ";
  }
  line << kNames[static_cast<int>(level)] << ' ' << component << ": " << msg;
  if (sink_) sink_(line.str());
}

}  // namespace magma::common
