#include "common/log.h"

#include <cstdio>
#include <iomanip>

namespace magma::common {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  };
}

void Logger::set_sink(std::function<void(std::string_view)> sink) {
  sink_ = std::move(sink);
}

void Logger::set_time_source(std::function<double()> now_seconds) {
  now_seconds_ = std::move(now_seconds);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (level < level_ || level_ == LogLevel::kOff) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::ostringstream line;
  if (now_seconds_) {
    line << '[' << std::fixed << std::setprecision(6) << now_seconds_()
         << "] ";
  }
  line << kNames[static_cast<int>(level)] << ' ' << component << ": " << msg;
  if (sink_) sink_(line.str());
}

}  // namespace magma::common
