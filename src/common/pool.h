// Freelist pools for the simulator's steady-state hot paths.
//
// The host profiler's per-label allocation counts (PR 7) showed where the
// heap traffic lives: reliable-channel retransmit/reorder map nodes, the
// datapath microflow-cache nodes, and event closures. Pools turn that
// steady-state churn into freelist pushes and pops. Three layers:
//
//  * BlockPool — untyped fixed-size blocks carved from geometrically grown
//    chunks, recycled through a non-intrusive freelist (the free stack lives
//    outside the blocks so released memory can be fully poisoned).
//  * Pool<T> — typed construct/destroy veneer over a BlockPool.
//  * PoolAllocator<T> — std::allocator adapter so node containers
//    (std::map, std::unordered_map) draw their nodes from a BlockPool
//    without restructuring the container code.
//
// Memory discipline (DESIGN.md §9):
//  * Poison-on-release: every released block is filled with kPoisonByte and
//    (under ASan) marked unaddressable, so a use-after-release either trips
//    the sanitizer or corrupts the pattern; acquire verifies the pattern and
//    counts violations (PoolStats::poison_violations) — a nonzero count is
//    a lifetime bug, full stop.
//  * Heap fallback is legal but counted: pool exhaustion (bounded pools),
//    size mismatch (an allocator asked for an array), or the global
//    MAGMA_DISABLE_POOLS toggle all route to plain operator new, tagged in
//    a per-block header so release always returns memory where it came
//    from. PoolStats::heap_fallbacks growing in steady state means the pool
//    is mis-sized — the bench wall catches it as reappearing *_allocs.
//  * Determinism: pooling on vs. off must be behavior-invisible. Nothing a
//    pool does may feed back into simulation state; the same-seed
//    pools-on/pools-off diff test asserts it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace magma::common {

// Global runtime toggle (shared with InplaceFunction's inline storage).
// Resolved once from the environment: MAGMA_DISABLE_POOLS set to anything
// but "0" disables pooling process-wide; set_memory_pooling_enabled
// overrides it (tests flip it to run the same scenario both ways).
bool memory_pooling_enabled() noexcept;
void set_memory_pooling_enabled(bool enabled) noexcept;

// Process-wide heap-fallback count summed over every BlockPool (pools are
// private to their owners; telemetry reads this aggregate — see the
// pool_heap_fallbacks gauge).
std::uint64_t total_pool_heap_fallbacks() noexcept;

struct PoolStats {
  std::uint64_t acquired = 0;         // allocate calls served (any path)
  std::uint64_t released = 0;         // deallocate calls
  std::uint64_t pool_hits = 0;        // served by freelist or fresh carve
  std::uint64_t heap_fallbacks = 0;   // exhausted / mismatched / disabled
  std::uint64_t poison_violations = 0;  // released block mutated before reuse
  std::size_t live = 0;               // blocks currently out
  std::size_t live_hwm = 0;
  std::size_t free_blocks = 0;        // parked on the freelist
  std::size_t capacity = 0;           // blocks ever carved from chunks
};

// Fixed-block-size raw pool. `block_size` 0 binds lazily to the first
// pooled request (what PoolAllocator needs: the node size is only known at
// the container's first insert). `max_blocks` bounds the carved capacity;
// 0 means grow without bound. Single-threaded, like the simulator.
class BlockPool {
 public:
  explicit BlockPool(std::size_t block_size = 0, std::size_t max_blocks = 0)
      : block_size_(block_size), max_blocks_(max_blocks) {}
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;
  ~BlockPool();

  // A block of `size` bytes. Pool-served when size matches the (bound)
  // block size and capacity allows; heap otherwise. Never returns nullptr
  // (heap path throws bad_alloc like operator new).
  void* allocate(std::size_t size);
  // Return a block. Safe for any block this pool's allocate() returned,
  // pooled or heap-tagged; blocks are poisoned before parking.
  void deallocate(void* p) noexcept;

  const PoolStats& stats() const { return stats_; }
  std::size_t block_size() const { return block_size_; }

  // Test hook: flip one byte inside the newest parked block (ASan-safely),
  // so the next acquire of it must report a poison violation. Returns false
  // when the freelist is empty.
  bool corrupt_newest_free_for_test();

  static constexpr std::uint8_t kPoisonByte = 0xEF;

 private:
  // Every block is prefixed by its owner pointer (nullptr = plain heap), so
  // deallocate routes correctly even after the global toggle flips or a
  // node handle migrates between same-typed containers.
  struct alignas(std::max_align_t) Header {
    BlockPool* owner;
  };

  void* payload_from_heap(std::size_t size);
  void carve_chunk();
  void poison(void* payload) noexcept;
  bool verify_poison(void* payload) noexcept;  // false → violation counted

  std::size_t block_size_ = 0;   // payload bytes per pooled block
  std::size_t max_blocks_ = 0;
  std::vector<void*> free_;      // payload pointers, poisoned while parked
  // Chunk base pointer + byte size (needed to lift ASan poison at teardown).
  std::vector<std::pair<void*, std::size_t>> chunks_;
  std::size_t next_chunk_blocks_ = 8;  // geometric chunk growth
  PoolStats stats_;
};

// Typed object pool: acquire constructs, release destroys, memory cycles
// through a dedicated BlockPool.
template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t max_objects = 0)
      : blocks_(sizeof(T), max_objects) {}

  template <typename... Args>
  T* acquire(Args&&... args) {
    void* p = blocks_.allocate(sizeof(T));
    try {
      return ::new (p) T(std::forward<Args>(args)...);
    } catch (...) {
      blocks_.deallocate(p);
      throw;
    }
  }

  void release(T* obj) noexcept {
    obj->~T();
    blocks_.deallocate(obj);
  }

  const PoolStats& stats() const { return blocks_.stats(); }
  BlockPool& blocks() { return blocks_; }

 private:
  BlockPool blocks_;
};

// std::allocator adapter over a shared BlockPool. Single-element requests
// (container nodes) are pooled; array requests (hash-table bucket vectors)
// go straight to the heap. Rebound copies share the pool, so one map's
// nodes all cycle through one freelist.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() : pool_(std::make_shared<BlockPool>()) {}
  explicit PoolAllocator(std::shared_ptr<BlockPool> pool)
      : pool_(std::move(pool)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(pool_->allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      pool_->deallocate(p);
      return;
    }
    ::operator delete(p);
  }

  const std::shared_ptr<BlockPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }

 private:
  std::shared_ptr<BlockPool> pool_;
};

}  // namespace magma::common
