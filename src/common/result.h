// Result<T>: error handling without exceptions on RPC and protocol paths.
//
// Most failures in this codebase are *expected* outcomes (a lost message, a
// rejected attach, a quota denial), not programming errors, so they travel as
// values. Programming errors use assertions.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace magma::common {

// Canonical error codes, loosely mirroring gRPC status codes since the real
// Magma uses gRPC everywhere.
enum class ErrorCode {
  kOk = 0,
  kCancelled,
  kUnknown,
  kInvalidArgument,
  kDeadlineExceeded,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kUnavailable,
  kUnauthenticated,
  kInternal,
};

const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;

  std::string to_string() const {
    std::string out = error_code_name(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kUnknown: return "UNKNOWN";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kUnauthenticated: return "UNAUTHENTICATED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "?";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : value_(std::move(error)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : value_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : error().code;
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT
  Status(ErrorCode code, std::string message)
      : error_{code, std::move(message)}, ok_(false) {}

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }
  ErrorCode code() const { return ok_ ? ErrorCode::kOk : error_.code; }
  std::string to_string() const {
    return ok_ ? std::string("OK") : error_.to_string();
  }

 private:
  Error error_;
  bool ok_ = true;
};

}  // namespace magma::common
