#include "common/bytes.h"

#include <cassert>

namespace magma::common {

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  assert(hex.size() % 2 == 0);
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    assert(hi >= 0 && lo >= 0);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView data) {
  return std::string(data.begin(), data.end());
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::uint64_t fnv1a(BytesView data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace magma::common
