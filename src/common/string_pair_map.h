// Transparent comparator for (service, op)-style string-pair map keys.
//
// A std::map keyed by std::pair<std::string, std::string> allocates twice on
// every lookup-by-temporary: find({service, op}) materializes two string
// copies just to compare and throw away. With a transparent comparator the
// same map accepts a pair of string_views, so hot lookups (label interning
// in sim::CpuModel, per-method label/handler dispatch in rpc) touch no heap
// at all. The host profiler's per-label alloc attribution is the regression
// test: see AllocDiscipline.LabelLookupIsAllocationFree.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace magma::common {

// Lookup key: views over caller-owned strings, nothing copied.
using StringPairView = std::pair<std::string_view, std::string_view>;

struct StringPairLess {
  using is_transparent = void;

  template <typename A, typename B, typename C, typename D>
  bool operator()(const std::pair<A, B>& x, const std::pair<C, D>& y) const {
    const std::string_view xf{x.first};
    const std::string_view yf{y.first};
    if (xf != yf) return xf < yf;
    return std::string_view{x.second} < std::string_view{y.second};
  }
};

}  // namespace magma::common
