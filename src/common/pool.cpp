#include "common/pool.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SANITIZE_ADDRESS__)
#define MAGMA_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MAGMA_POOL_ASAN 1
#endif
#endif

#if defined(MAGMA_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace magma::common {

namespace {

// ASan-aware addressability shims: parked pool blocks are unaddressable so a
// use-after-release trips the sanitizer exactly like a real use-after-free.
// No-ops in plain builds, where the 0xEF poison pattern is the only tripwire.
inline void mark_unaddressable(void* p, std::size_t n) {
#if defined(MAGMA_POOL_ASAN)
  ASAN_POISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline void mark_addressable(void* p, std::size_t n) {
#if defined(MAGMA_POOL_ASAN)
  ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

// -1 = unresolved; resolved lazily from MAGMA_DISABLE_POOLS on first query.
std::atomic<int> g_pooling_state{-1};

// Process-wide heap-fallback tally across every BlockPool. Individual pools
// are private members of their owners (channel maps, microflow cache), so
// fleet telemetry reads this instead of chasing pointers — the same pattern
// as the process-wide host_alloc_bytes gauge.
std::uint64_t g_total_heap_fallbacks = 0;

int resolve_pooling_from_env() {
  const char* env = std::getenv("MAGMA_DISABLE_POOLS");
  const bool disabled = env != nullptr && env[0] != '\0' &&
                        !(env[0] == '0' && env[1] == '\0');
  return disabled ? 0 : 1;
}

}  // namespace

bool memory_pooling_enabled() noexcept {
  int state = g_pooling_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_pooling_from_env();
    g_pooling_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_memory_pooling_enabled(bool enabled) noexcept {
  g_pooling_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t total_pool_heap_fallbacks() noexcept {
  return g_total_heap_fallbacks;
}

BlockPool::~BlockPool() {
  for (const auto& [base, bytes] : chunks_) {
    // Chunks were carved into poisoned blocks; lift the ASan poison before
    // the allocator reclaims the pages.
    mark_addressable(base, bytes);
    ::operator delete(base);
  }
}

void* BlockPool::payload_from_heap(std::size_t size) {
  auto* header =
      static_cast<Header*>(::operator new(sizeof(Header) + size));
  header->owner = nullptr;
  ++stats_.heap_fallbacks;
  ++g_total_heap_fallbacks;
  return header + 1;
}

void BlockPool::carve_chunk() {
  // One operator-new per chunk, amortized over geometrically more blocks;
  // each block within is poisoned and parked on the freelist.
  std::size_t blocks = next_chunk_blocks_;
  if (max_blocks_ != 0) {
    const std::size_t room = max_blocks_ - stats_.capacity;
    if (blocks > room) blocks = room;
  }
  if (blocks == 0) return;
  // Round the per-block stride up so every Header (and payload) keeps
  // max_align_t alignment across the chunk.
  constexpr std::size_t kAlign = alignof(std::max_align_t);
  const std::size_t stride =
      (sizeof(Header) + block_size_ + kAlign - 1) / kAlign * kAlign;
  const std::size_t bytes = blocks * stride;
  auto* base = static_cast<unsigned char*>(::operator new(bytes));
  chunks_.emplace_back(base, bytes);
  free_.reserve(free_.size() + blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    auto* header = reinterpret_cast<Header*>(base + i * stride);
    header->owner = this;
    void* payload = header + 1;
    poison(payload);
    free_.push_back(payload);
  }
  stats_.capacity += blocks;
  if (next_chunk_blocks_ < 1024) next_chunk_blocks_ *= 2;
}

void BlockPool::poison(void* payload) noexcept {
  std::memset(payload, kPoisonByte, block_size_);
  mark_unaddressable(payload, block_size_);
}

bool BlockPool::verify_poison(void* payload) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(payload);
  for (std::size_t i = 0; i < block_size_; ++i) {
    if (bytes[i] != kPoisonByte) {
      ++stats_.poison_violations;
      return false;
    }
  }
  return true;
}

void* BlockPool::allocate(std::size_t size) {
  ++stats_.acquired;
  void* payload = nullptr;
  if (memory_pooling_enabled()) {
    if (block_size_ == 0) block_size_ = size;  // lazy bind to first request
    if (size == block_size_) {
      if (free_.empty() &&
          (max_blocks_ == 0 || stats_.capacity < max_blocks_)) {
        carve_chunk();
      }
      if (!free_.empty()) {
        payload = free_.back();
        free_.pop_back();
        mark_addressable(payload, block_size_);
        verify_poison(payload);
        ++stats_.pool_hits;
      }
    }
  }
  if (payload == nullptr) payload = payload_from_heap(size);
  ++stats_.live;
  if (stats_.live > stats_.live_hwm) stats_.live_hwm = stats_.live;
  stats_.free_blocks = free_.size();
  return payload;
}

void BlockPool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  Header* header = static_cast<Header*>(p) - 1;
  BlockPool* owner = header->owner;
  if (owner == nullptr) {
    ::operator delete(header);
    ++stats_.released;
    if (stats_.live > 0) --stats_.live;
    return;
  }
  // Route to the owning pool: correct even if the block migrated through a
  // container node handle or the global toggle flipped mid-lifetime.
  owner->poison(p);
  owner->free_.push_back(p);
  ++owner->stats_.released;
  if (owner->stats_.live > 0) --owner->stats_.live;
  owner->stats_.free_blocks = owner->free_.size();
}

bool BlockPool::corrupt_newest_free_for_test() {
  if (free_.empty() || block_size_ == 0) return false;
  void* payload = free_.back();
  mark_addressable(payload, block_size_);
  static_cast<std::uint8_t*>(payload)[block_size_ / 2] =
      static_cast<std::uint8_t>(~kPoisonByte);
  mark_unaddressable(payload, block_size_);
  return true;
}

}  // namespace magma::common
