// Identifier types used across the system.
//
// 3GPP identifiers (IMSI, TEID, eNB IDs, ...) plus Magma-internal handles.
// These are thin value types; the point is to avoid mixing them up.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace magma::common {

// International Mobile Subscriber Identity. Stored as the canonical
// "IMSI001010000000001"-style string Magma uses as subscriber key.
struct Imsi {
  std::string value;

  bool operator==(const Imsi&) const = default;
  auto operator<=>(const Imsi&) const = default;
  bool valid() const {
    if (value.rfind("IMSI", 0) != 0) return false;
    if (value.size() < 4 + 5 || value.size() > 4 + 15) return false;
    for (std::size_t i = 4; i < value.size(); ++i) {
      if (value[i] < '0' || value[i] > '9') return false;
    }
    return true;
  }
  static Imsi from_digits(std::uint64_t digits) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "IMSI%015llu",
                  static_cast<unsigned long long>(digits));
    return Imsi{buf};
  }
};

// GTP Tunnel Endpoint Identifier.
struct Teid {
  std::uint32_t value = 0;
  bool operator==(const Teid&) const = default;
  auto operator<=>(const Teid&) const = default;
};

// IPv4 address in host byte order.
struct Ipv4 {
  std::uint32_t addr = 0;
  bool operator==(const Ipv4&) const = default;
  auto operator<=>(const Ipv4&) const = default;

  static Ipv4 from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                          std::uint8_t d) {
    return Ipv4{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                (std::uint32_t(c) << 8) | std::uint32_t(d)};
  }
  std::string to_string() const {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                  (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
    return buf;
  }
};

// Identifies a gateway (AGW) within a Magma network.
struct GatewayId {
  std::string value;
  bool operator==(const GatewayId&) const = default;
  auto operator<=>(const GatewayId&) const = default;
};

// Identifies an eNodeB / gNB / AP.
struct RanNodeId {
  std::uint32_t value = 0;
  bool operator==(const RanNodeId&) const = default;
  auto operator<=>(const RanNodeId&) const = default;
};

// Per-UE, per-AGW session handle.
struct SessionId {
  std::uint64_t value = 0;
  bool operator==(const SessionId&) const = default;
  auto operator<=>(const SessionId&) const = default;
};

}  // namespace magma::common

namespace std {
template <>
struct hash<magma::common::Imsi> {
  size_t operator()(const magma::common::Imsi& id) const {
    return hash<string>()(id.value);
  }
};
template <>
struct hash<magma::common::Teid> {
  size_t operator()(const magma::common::Teid& id) const {
    return hash<uint32_t>()(id.value);
  }
};
template <>
struct hash<magma::common::Ipv4> {
  size_t operator()(const magma::common::Ipv4& ip) const {
    return hash<uint32_t>()(ip.addr);
  }
};
template <>
struct hash<magma::common::GatewayId> {
  size_t operator()(const magma::common::GatewayId& id) const {
    return hash<string>()(id.value);
  }
};
template <>
struct hash<magma::common::SessionId> {
  size_t operator()(const magma::common::SessionId& id) const {
    return hash<uint64_t>()(id.value);
  }
};
template <>
struct hash<magma::common::RanNodeId> {
  size_t operator()(const magma::common::RanNodeId& id) const {
    return hash<uint32_t>()(id.value);
  }
};
}  // namespace std
