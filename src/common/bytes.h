// Byte-buffer helpers shared by the wire format, crypto, and packet code.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace magma::common {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Hex encoding/decoding, used for keys and debugging output.
std::string to_hex(BytesView data);
Bytes from_hex(std::string_view hex);  // asserts on malformed input

Bytes to_bytes(std::string_view s);
std::string to_string(BytesView data);

// Constant-time comparison (for MAC verification).
bool constant_time_equal(BytesView a, BytesView b);

// FNV-1a, used for cheap non-cryptographic hashing (flow keys, sharding).
std::uint64_t fnv1a(BytesView data);

}  // namespace magma::common
