// Small-buffer-optimized callable: the event-closure replacement for
// std::function on the simulator's hottest path.
//
// Every scheduled event used to cost one heap allocation: std::function's
// small-object buffer (16 bytes on libstdc++) is too small for the closures
// the transport and CPU model capture (a peer pointer, a liveness guard, a
// payload — 50-100 bytes), so each schedule() heap-allocated ~200 bytes and
// each dispatch freed them. BENCH_host.json priced that at 1 alloc per
// event. InplaceFunction stores the callable inline up to `Capacity` bytes
// and only falls back to the heap for oversized closures; the kernel counts
// those fallbacks (KernelStats::closure_heap_fallbacks) so a capture that
// quietly outgrows the buffer shows up in the bench wall instead of
// silently re-inflating the alloc rate.
//
// Differences from std::function, all deliberate:
//  * move-only — events are scheduled once and fired once; requiring
//    copyability would forbid move-only captures (e.g. a unique_ptr the
//    callback consumes), which std::function forces callers to shared_ptr
//    around;
//  * callables must be nothrow-move-constructible (statically asserted) —
//    the kernel's binary heap relocates events during sifts and a throwing
//    move would corrupt it;
//  * invoking an empty InplaceFunction is an assert, not std::bad_function_call
//    — an empty event in the kernel queue is a bug, not a recoverable state.
//
// Memory-discipline toggle: when common::memory_pooling_enabled() is false
// (MAGMA_DISABLE_POOLS, or set_memory_pooling_enabled(false)), every
// construction takes the heap path even when the callable would fit inline.
// Behavior is bit-identical either way — the determinism suite runs the
// same seed through both modes and diffs the results — the toggle exists
// precisely so that test can exist.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace magma::common {

// Defined in pool.cpp (shared with common::Pool): false disables all inline
// storage / pooling fast paths at runtime.
bool memory_pooling_enabled() noexcept;
void set_memory_pooling_enabled(bool enabled) noexcept;

template <typename Signature, std::size_t Capacity = 64>
class InplaceFunction;  // primary template: only the R(Args...) form exists

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT: match std::function's = nullptr

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT: implicit, like std::function
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event closures must be nothrow-move-constructible: the "
                  "kernel heap relocates them during sifts");
    if constexpr (sizeof(D) <= Capacity && alignof(D) <= alignof(Storage)) {
      if (memory_pooling_enabled()) {
        ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
        ops_ = &kInlineOps<D>;
        return;
      }
    }
    ::new (static_cast<void*>(&storage_))
        D*(new D(std::forward<F>(f)));
    ops_ = &kHeapOps<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    move_from(std::move(other));
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    destroy();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the callable lives on the heap (oversized for Capacity, or
  // pooling disabled). The kernel surfaces this as a stats counter.
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->on_heap; }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty InplaceFunction");
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

 private:
  using Storage = std::aligned_storage_t<
      (Capacity < sizeof(void*) ? sizeof(void*) : Capacity),
      alignof(std::max_align_t)>;

  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move the callable from src storage into dst storage, then destroy the
    // src (one virtual hop for the common relocate-on-heap-sift path).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool on_heap;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* storage, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      },
      false};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* storage, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<D**>(storage));
      },
      true};

  void move_from(InplaceFunction&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  Storage storage_;
};

}  // namespace magma::common
