// Lightweight leveled logger.
//
// Magma's real AGW ships logs to the orchestrator; gateways reproduce that
// by registering an event hook (see src/obs/events.h) that turns WARN/ERROR
// lines into structured events shipped over the control channel. The logger
// itself stays synchronous and deterministic (no wall-clock timestamps by
// default) so that test output is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace magma::common {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global log configuration. Not thread-safe by design: the simulator is
// single-threaded and deterministic.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirect output (used by tests to capture logs). The sink receives fully
  // formatted lines without a trailing newline.
  void set_sink(std::function<void(std::string_view)> sink);

  // Optional clock: when set, each line is prefixed with the simulated time.
  void set_time_source(std::function<double()> now_seconds);
  void clear_time_source() { now_seconds_ = nullptr; }

  // Event hooks observe every WARN/ERROR line regardless of sink (gateways
  // use this to ship logs to the orchestrator as structured events). Hooks
  // receive the raw component and message, not the formatted line. The
  // registrant must remove its hook before its captures die. Hooks are not
  // re-entered: a log line emitted *from* a hook skips hook delivery.
  using EventHook =
      std::function<void(LogLevel, std::string_view component,
                         std::string_view message)>;
  std::uint64_t add_event_hook(EventHook hook);
  void remove_event_hook(std::uint64_t id);

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::function<void(std::string_view)> sink_;
  std::function<double()> now_seconds_;
  std::vector<std::pair<std::uint64_t, EventHook>> hooks_;
  std::uint64_t next_hook_id_ = 1;
  bool in_hook_ = false;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace magma::common

#define MAGMA_LOG(level_, component_)                                     \
  if (::magma::common::Logger::instance().level() <= (level_))            \
  ::magma::common::detail::LogLine((level_), (component_))

#define MLOG_DEBUG(component) \
  MAGMA_LOG(::magma::common::LogLevel::kDebug, (component))
#define MLOG_INFO(component) \
  MAGMA_LOG(::magma::common::LogLevel::kInfo, (component))
#define MLOG_WARN(component) \
  MAGMA_LOG(::magma::common::LogLevel::kWarn, (component))
#define MLOG_ERROR(component) \
  MAGMA_LOG(::magma::common::LogLevel::kError, (component))
