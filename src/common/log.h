// Lightweight leveled logger.
//
// Magma's real AGW ships logs to the orchestrator; here logging is a local
// concern used by services and the simulation harness. The logger is
// deliberately synchronous and deterministic (no wall-clock timestamps by
// default) so that test output is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace magma::common {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global log configuration. Not thread-safe by design: the simulator is
// single-threaded and deterministic.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirect output (used by tests to capture logs). The sink receives fully
  // formatted lines without a trailing newline.
  void set_sink(std::function<void(std::string_view)> sink);

  // Optional clock: when set, each line is prefixed with the simulated time.
  void set_time_source(std::function<double()> now_seconds);
  void clear_time_source() { now_seconds_ = nullptr; }

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::function<void(std::string_view)> sink_;
  std::function<double()> now_seconds_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace magma::common

#define MAGMA_LOG(level_, component_)                                     \
  if (::magma::common::Logger::instance().level() <= (level_))            \
  ::magma::common::detail::LogLine((level_), (component_))

#define MLOG_DEBUG(component) \
  MAGMA_LOG(::magma::common::LogLevel::kDebug, (component))
#define MLOG_INFO(component) \
  MAGMA_LOG(::magma::common::LogLevel::kInfo, (component))
#define MLOG_WARN(component) \
  MAGMA_LOG(::magma::common::LogLevel::kWarn, (component))
#define MLOG_ERROR(component) \
  MAGMA_LOG(::magma::common::LogLevel::kError, (component))
