#include "core/policy.h"

#include "rpc/wire.h"

namespace magma::core {

const PolicyTier& Policy::tier_at(std::uint64_t used_bytes) const {
  for (std::size_t i = 0; i + 1 < tiers.size(); ++i) {
    if (used_bytes < tiers[i].until_usage_bytes) return tiers[i];
  }
  return tiers.back();
}

common::Bytes Policy::serialize() const {
  rpc::Writer w;
  w.str(name);
  w.u32(static_cast<std::uint32_t>(tiers.size()));
  for (const PolicyTier& t : tiers) {
    w.u64(t.dl_rate_bps);
    w.u64(t.ul_rate_bps);
    w.u64(t.until_usage_bytes);
  }
  w.u8(static_cast<std::uint8_t>(charging));
  w.u64(quota_bytes);
  w.i64(interval_ns);
  w.u8(qci);
  return std::move(w).take();
}

common::Result<Policy> Policy::deserialize(common::BytesView data) {
  rpc::Reader r(data);
  Policy p;
  p.name = r.str();
  const std::uint32_t tier_count = r.u32();
  if (tier_count == 0 || tier_count > 64) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "bad tier count"};
  }
  p.tiers.clear();
  for (std::uint32_t i = 0; i < tier_count && r.ok(); ++i) {
    PolicyTier t;
    t.dl_rate_bps = r.u64();
    t.ul_rate_bps = r.u64();
    t.until_usage_bytes = r.u64();
    p.tiers.push_back(t);
  }
  p.charging = static_cast<ChargingMode>(r.u8());
  p.quota_bytes = r.u64();
  p.interval_ns = r.i64();
  p.qci = r.u8();
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt policy"};
  }
  return p;
}

Policy unlimited_policy() {
  Policy p;
  p.name = "unlimited";
  return p;
}

Policy rate_limited_policy(std::uint64_t dl_bps, std::uint64_t ul_bps) {
  Policy p;
  p.name = "rate_limited";
  p.tiers = {PolicyTier{dl_bps, ul_bps, 0}};
  return p;
}

Policy tiered_policy(std::uint64_t x_bps, std::uint64_t y_bytes,
                     std::uint64_t z_bps) {
  Policy p;
  p.name = "tiered";
  p.tiers = {PolicyTier{x_bps, x_bps, y_bytes}, PolicyTier{z_bps, z_bps, 0}};
  return p;
}

Policy quota_billed_policy(std::uint64_t quota_bytes) {
  Policy p;
  p.name = "quota_billed";
  p.charging = ChargingMode::kOcsQuota;
  p.quota_bytes = quota_bytes;
  return p;
}

}  // namespace magma::core
