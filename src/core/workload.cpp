#include "core/workload.h"

#include <cmath>

namespace magma::core {

// ---------------------------------------------------------------------------
// AttachRamp
// ---------------------------------------------------------------------------

AttachRamp::AttachRamp(Network& network, std::vector<ran::UeLte*> ues,
                       ran::EnodeB& enb, double rate_per_second,
                       sim::Duration start_delay) {
  records_.resize(ues.size());
  const sim::Duration spacing =
      rate_per_second > 0 ? sim::from_seconds(1.0 / rate_per_second) : 0;
  for (std::size_t i = 0; i < ues.size(); ++i) {
    const sim::Duration when =
        start_delay + static_cast<sim::Duration>(i) * spacing;
    ran::UeLte* ue = ues[i];
    ran::EnodeB* enb_ptr = &enb;
    AttachRecord* record = &records_[i];
    network.kernel().schedule(when, [ue, enb_ptr, record,
                                     &kernel = network.kernel()]() {
      record->requested = kernel.now();
      ue->attach(*enb_ptr, [record](const ran::AttachOutcome& outcome) {
        record->done = true;
        record->outcome = outcome;
      });
    });
  }
}

std::size_t AttachRamp::completed() const {
  std::size_t n = 0;
  for (const AttachRecord& r : records_) n += r.done ? 1 : 0;
  return n;
}

std::size_t AttachRamp::succeeded() const {
  std::size_t n = 0;
  for (const AttachRecord& r : records_) {
    n += (r.done && r.outcome.success) ? 1 : 0;
  }
  return n;
}

double AttachRamp::csr() const {
  std::size_t requested = 0;
  std::size_t success = 0;
  for (const AttachRecord& r : records_) {
    if (r.requested == 0 && !r.done) continue;  // not yet fired
    ++requested;
    success += (r.done && r.outcome.success) ? 1 : 0;
  }
  return requested == 0 ? 1.0
                        : static_cast<double>(success) /
                              static_cast<double>(requested);
}

double AttachRamp::csr_in_window(sim::TimePoint from,
                                 sim::TimePoint to) const {
  std::size_t requested = 0;
  std::size_t success = 0;
  for (const AttachRecord& r : records_) {
    if (r.requested < from || r.requested >= to) continue;
    ++requested;
    success += (r.done && r.outcome.success) ? 1 : 0;
  }
  return requested == 0 ? 1.0
                        : static_cast<double>(success) /
                              static_cast<double>(requested);
}

// ---------------------------------------------------------------------------
// DownlinkFlow
// ---------------------------------------------------------------------------

DownlinkFlow::DownlinkFlow(Network& network, agw::AccessGateway& agw,
                           common::Ipv4 ue_ip, double rate_bps,
                           sim::Duration interval, std::uint32_t packet_bytes)
    : network_(network),
      agw_(agw),
      ue_ip_(ue_ip),
      rate_bps_(rate_bps),
      interval_(interval),
      packet_bytes_(packet_bytes) {}

void DownlinkFlow::start(sim::Duration phase) {
  if (running_) return;
  running_ = true;
  if (phase > 0) {
    network_.kernel().schedule(phase, [this]() { tick(); });
  } else {
    tick();
  }
}

void DownlinkFlow::tick() {
  if (!running_) return;
  const double interval_s = sim::to_seconds(interval_);
  carry_bytes_ += rate_bps_ * interval_s / 8.0;
  const double per_packet = static_cast<double>(packet_bytes_) +
                            28.0;  // UDP/IP overhead on the wire
  const auto count = static_cast<std::uint64_t>(carry_bytes_ / per_packet);
  if (count > 0) {
    carry_bytes_ -= static_cast<double>(count) * per_packet;
    network_.inject_downlink(agw_, ue_ip_, packet_bytes_, count);
  }
  network_.kernel().schedule(interval_, [this]() { tick(); });
}

// ---------------------------------------------------------------------------
// DiurnalWorkload
// ---------------------------------------------------------------------------

DiurnalWorkload::DiurnalWorkload(Network& network, agw::AccessGateway& agw,
                                 std::vector<common::Ipv4> subscriber_ips,
                                 DiurnalConfig config, sim::Rng rng)
    : network_(network),
      agw_(agw),
      ips_(std::move(subscriber_ips)),
      config_(config),
      rng_(rng) {}

void DiurnalWorkload::start() {
  tick();
}

double DiurnalWorkload::activity_at(double hour_of_day) const {
  // Smooth day/night cycle peaking at peak_hour.
  const double phase =
      (hour_of_day - config_.peak_hour) * 2.0 * 3.14159265358979 / 24.0;
  const double wave = 0.5 * (1.0 + std::cos(phase));  // 1 at peak, 0 opposite
  return config_.trough_active_fraction +
         (config_.peak_active_fraction - config_.trough_active_fraction) *
             wave;
}

void DiurnalWorkload::tick() {
  const double hour =
      std::fmod(sim::to_seconds(network_.kernel().now()) / 3600.0, 24.0);
  const double activity = activity_at(hour);

  const int active = static_cast<int>(
      static_cast<double>(ips_.size()) *
      std::min(1.0, std::max(0.0, activity + rng_.normal(0, 0.03))));

  const double interval_s = sim::to_seconds(config_.sample_interval);
  double offered_bytes = 0;
  for (int i = 0; i < active; ++i) {
    const common::Ipv4 ip = ips_[rng_.uniform_int(ips_.size())];
    // Per-subscriber hourly volume, scaled by the activity level with
    // multiplicative noise.
    double rate = config_.peak_rate_bps * activity;
    rate *= std::exp(rng_.normal(0, config_.rate_noise));
    const double bytes = rate * interval_s / 8.0;
    // Inject as one aggregate batch for the hour (coarse but sufficient
    // for per-hour reporting).
    const std::uint32_t packet = 1400;
    const auto count =
        static_cast<std::uint64_t>(bytes / (packet + 28.0));
    if (count > 0) network_.inject_downlink(agw_, ip, packet, count);
    offered_bytes += bytes;
  }

  DiurnalSample sample;
  sample.time = network_.kernel().now();
  sample.active_subscribers = active;
  sample.offered_gbytes = offered_bytes / 1e9;
  samples_.push_back(sample);

  network_.kernel().schedule(config_.sample_interval, [this]() { tick(); });
}

}  // namespace magma::core
