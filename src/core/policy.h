// Network policy model — the "rich policy support" Magma preserves from
// cellular cores (§1, §2.1).
//
// A policy names what a class of subscribers may do: rate limits (AMBR),
// usage caps with throttling ("rate limit customer C to X Mbps until they
// have sent Y GB in interval t1, then limit to Z Mbps" — §2.1's example is
// expressible directly as a TieredPolicy), and volume-based quota billing
// against an online charging system (§3.4).
//
// Policies are *configuration state*: authored at the orchestrator, synced
// to AGW subscriber caches, and enforced in the AGW data plane via meters
// and drop rules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace magma::core {

// One enforcement tier: applies `dl/ul_rate_bps` until the subscriber has
// moved `until_usage_bytes` in the accounting interval, then the next tier
// takes over. The last tier's `until_usage_bytes` is ignored (applies
// forever / until interval reset).
struct PolicyTier {
  std::uint64_t dl_rate_bps = 0;  // 0 = unlimited
  std::uint64_t ul_rate_bps = 0;
  std::uint64_t until_usage_bytes = 0;

  bool operator==(const PolicyTier&) const = default;
};

enum class ChargingMode : std::uint8_t {
  kUnmetered = 0,   // no usage accounting consequences (e.g. backhaul UEs)
  // Hard stop: traffic is blocked once usage reaches the last tier's
  // `until_usage_bytes` (which must be non-zero for this mode).
  kCapped,
  kOcsQuota,        // volume billing: usage authorized in quanta by an OCS
};

struct Policy {
  std::string name = "default";
  std::vector<PolicyTier> tiers{PolicyTier{}};  // at least one tier
  ChargingMode charging = ChargingMode::kUnmetered;
  // kOcsQuota: size of each quota grant requested from the OCS.
  std::uint64_t quota_bytes = 1 << 20;  // 1 MB, the paper's example
  // Accounting interval after which usage (and tier position) resets.
  std::int64_t interval_ns = 0;  // 0 = never reset
  std::uint8_t qci = 9;          // QoS class identifier for the bearer

  bool operator==(const Policy&) const = default;

  // Tier in force at the given cumulative usage.
  const PolicyTier& tier_at(std::uint64_t used_bytes) const;

  common::Bytes serialize() const;
  static common::Result<Policy> deserialize(common::BytesView data);
};

// Common presets used by examples, tests, and benches.
Policy unlimited_policy();                       // AccessParks backhaul UEs
Policy rate_limited_policy(std::uint64_t dl_bps, std::uint64_t ul_bps);
// The paper's §2.1 example: X Mbps until Y bytes, then Z Mbps.
Policy tiered_policy(std::uint64_t x_bps, std::uint64_t y_bytes,
                     std::uint64_t z_bps);
Policy quota_billed_policy(std::uint64_t quota_bytes);

}  // namespace magma::core
