// Workload generation — the role Spirent Landslide plays in §4.1.
//
//  * AttachRamp     — N UEs attach at a configurable rate (the paper's
//                     "288 UEs connect at 3 UE/sec"), recording per-attach
//                     outcomes for CSR computation.
//  * DownlinkFlow   — constant-bitrate downlink per UE (the 1.5 Mbps HTTP
//                     download of Figure 5), injected at the SGi in batches.
//  * DiurnalWorkload— the Figure 9 generator: a day/night activity cycle
//                     across a fleet of fixed-wireless subscribers,
//                     producing per-hour active-user counts and volumes
//                     shaped like the AccessParks production network.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/network.h"
#include "ran/ue.h"
#include "sim/random.h"

namespace magma::core {

// ---------------------------------------------------------------------------
// Attach ramp
// ---------------------------------------------------------------------------

struct AttachRecord {
  sim::TimePoint requested = 0;
  bool done = false;
  ran::AttachOutcome outcome;
};

class AttachRamp {
 public:
  // Attach each UE in `ues` through `enb`, spaced 1/rate seconds apart,
  // starting at kernel-now + start_delay.
  AttachRamp(Network& network, std::vector<ran::UeLte*> ues,
             ran::EnodeB& enb, double rate_per_second,
             sim::Duration start_delay = 0);

  const std::vector<AttachRecord>& records() const { return records_; }
  std::size_t completed() const;
  std::size_t succeeded() const;
  // Connection success rate over everything requested so far.
  double csr() const;
  // CSR within [from, to) by request time — the paper's 5-second bins.
  double csr_in_window(sim::TimePoint from, sim::TimePoint to) const;

 private:
  std::vector<AttachRecord> records_;
};

// ---------------------------------------------------------------------------
// Downlink CBR flow
// ---------------------------------------------------------------------------

class DownlinkFlow {
 public:
  // Inject `rate_bps` of downlink toward `ue_ip` at `agw`'s SGi, in batches
  // every `interval`. Runs until stop() or the network stops running.
  DownlinkFlow(Network& network, agw::AccessGateway& agw, common::Ipv4 ue_ip,
               double rate_bps, sim::Duration interval = 100 * sim::kMillisecond,
               std::uint32_t packet_bytes = 1400);
  // `phase` delays the first tick; stagger flows across the interval so a
  // cell's batches don't all land on the radio scheduler in one burst.
  void start(sim::Duration phase = 0);
  void stop() { running_ = false; }
  void set_rate(double rate_bps) { rate_bps_ = rate_bps; }

 private:
  void tick();

  Network& network_;
  agw::AccessGateway& agw_;
  common::Ipv4 ue_ip_;
  double rate_bps_;
  sim::Duration interval_;
  std::uint32_t packet_bytes_;
  bool running_ = false;
  double carry_bytes_ = 0;  // fractional-packet remainder across ticks
};

// ---------------------------------------------------------------------------
// Diurnal workload (Figure 9)
// ---------------------------------------------------------------------------

struct DiurnalConfig {
  int subscribers = 450;
  // Fraction of subscribers active at the daily peak / trough.
  double peak_active_fraction = 0.85;
  double trough_active_fraction = 0.45;
  // Local hour of the activity peak (AccessParks: evenings in parks).
  double peak_hour = 20.0;
  // Per-active-subscriber average downlink rate at peak.
  double peak_rate_bps = 800e3;
  double rate_noise = 0.25;  // lognormal-ish spread across hours
  sim::Duration sample_interval = 1 * sim::kHour;
};

struct DiurnalSample {
  sim::TimePoint time = 0;
  int active_subscribers = 0;
  double offered_gbytes = 0;  // volume offered during this interval
};

class DiurnalWorkload {
 public:
  DiurnalWorkload(Network& network, agw::AccessGateway& agw,
                  std::vector<common::Ipv4> subscriber_ips,
                  DiurnalConfig config, sim::Rng rng);
  void start();
  const std::vector<DiurnalSample>& samples() const { return samples_; }

 private:
  void tick();
  double activity_at(double hour_of_day) const;

  Network& network_;
  agw::AccessGateway& agw_;
  std::vector<common::Ipv4> ips_;
  DiurnalConfig config_;
  sim::Rng rng_;
  std::vector<DiurnalSample> samples_;
};

}  // namespace magma::core
