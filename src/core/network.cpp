#include "core/network.h"

#include <cassert>
#include <cstring>

namespace magma::core {

Network::Network(NetworkConfig config)
    : config_(config), kernel_(), rng_(config.seed) {
  orchestrator_ = std::make_unique<orc8r::Orchestrator>(kernel_);
  orchestrator_->set_tracer(&tracer_);
  // Re-install the transport alerting with this deployment's engineered
  // SRTT baseline (idempotent by rule name).
  orc8r::install_default_transport_rules(orchestrator_->metrics(),
                                         config_.srtt_alert_baseline_s);
  // Gateway health plane: judge checkin freshness against the cadence the
  // AGWs are actually configured with, and start the periodic sweep.
  orc8r::StatusdConfig statusd = config_.statusd;
  statusd.checkin_interval = config_.magmad.checkin_interval;
  orchestrator_->statusd().configure(statusd);
  orchestrator_->statusd().start();
  // SLO evaluation (derived histogram SLIs) rides its own periodic tick.
  orchestrator_->start_slo_tick();
  if (config_.with_ocs) ocs_ = std::make_unique<ocs::Ocs>();
  add_policy(unlimited_policy());
}

Network::~Network() = default;

Network::AgwNode* Network::node_for(agw::AccessGateway& agw) {
  for (auto& node : agws_) {
    if (node->agw.get() == &agw) return node.get();
  }
  return nullptr;
}

agw::AccessGateway& Network::add_agw(
    agw::AgwProfile profile, std::optional<sim::LinkConfig> backhaul) {
  auto node = std::make_unique<AgwNode>();
  const std::size_t index = agws_.size();

  // Distinct addressing per AGW: control address 10.<n+1>.0.1, UE block
  // 172.16.0.0/22-sized slices (1022 UEs per AGW — several cell sites'
  // worth, clear of RAN-node addresses).
  profile.address =
      common::Ipv4::from_octets(10, static_cast<std::uint8_t>(index + 1), 0, 1);
  profile.ip_block.base = common::Ipv4{
      common::Ipv4::from_octets(172, 16, 0, 0).addr +
      (static_cast<std::uint32_t>(index) << 10)};
  profile.ip_block.prefix_len = 22;

  node->agw = std::make_unique<agw::AccessGateway>(
      kernel_, common::GatewayId{"gw" + std::to_string(index)}, profile,
      rng_.fork());

  // Control backhaul to the orchestrator (reliable, gRPC-style).
  node->backhaul = std::make_unique<net::DuplexLink>(
      kernel_, rng_, backhaul.value_or(config_.backhaul));
  node->control =
      net::make_reliable_pair(kernel_, *node->backhaul, config_.transport);
  node->orc8r_server = std::make_unique<rpc::RpcNode>(
      kernel_, *node->control.a, "orc8r-server-gw" + std::to_string(index));
  node->orc8r_server->set_tracer(&tracer_, "orc8r");
  orchestrator_->bind(*node->orc8r_server);
  node->agw->set_tracer(&tracer_);
  // Backhaul gauges: the AGW (side b) sends on the reverse link, so that is
  // its uplink toward the orchestrator.
  node->agw->set_backhaul_telemetry(&node->backhaul->reverse,
                                    &node->backhaul->forward);
  node->agw->connect_orchestrator(*node->control.b, config_.magmad);
  orchestrator_->register_gateway("gw" + std::to_string(index), profile.name);

  if (ocs_) {
    node->ocs_link = std::make_unique<net::DuplexLink>(
        kernel_, rng_, backhaul.value_or(config_.backhaul));
    node->ocs_channel =
        net::make_reliable_pair(kernel_, *node->ocs_link, config_.transport);
    node->ocs_server = std::make_unique<rpc::RpcNode>(
        kernel_, *node->ocs_channel.a, "ocs-server-gw" + std::to_string(index));
    node->ocs_server->set_tracer(&tracer_, "ocs");
    ocs_->bind(*node->ocs_server);
    node->agw->connect_ocs(*node->ocs_channel.b);
  }

  wire_egress(*node);
  node->agw->magmad().start();

  agws_.push_back(std::move(node));
  return *agws_.back()->agw;
}

void Network::wire_egress(AgwNode& node) {
  AgwNode* node_ptr = &node;
  node.agw->set_egress([this, node_ptr](std::uint32_t out_port,
                                        datapath::PacketBatch batch) {
    if (out_port == datapath::kPortRan) {
      if (batch.packet.gtpu.has_value() && batch.packet.outer_ip.has_value()) {
        const common::Ipv4 target = batch.packet.outer_ip->dst;
        if (auto it = node_ptr->enbs_by_address.find(target);
            it != node_ptr->enbs_by_address.end()) {
          it->second->deliver_downlink(std::move(batch));
          return;
        }
        if (auto it = node_ptr->gnbs_by_address.find(target);
            it != node_ptr->gnbs_by_address.end()) {
          it->second->deliver_downlink(std::move(batch));
          return;
        }
        return;  // unroutable tunnel
      }
      // Untunneled (WiFi): the owning AP recognizes the client address.
      for (ran::WifiAp* ap : node_ptr->aps) {
        ap->deliver_downlink(batch);
      }
      return;
    }
    if (out_port == datapath::kPortSgi) {
      if (batch.packet.gtpu.has_value()) {
        // Home-routed uplink toward the GTP aggregator.
        if (sgi_gtp_sink_) sgi_gtp_sink_(std::move(batch));
        return;
      }
      internet_rx_bytes_ += batch.bytes();
      return;
    }
    // kPortLocal and anything else: consumed locally.
  });
}

ran::EnodeB& Network::add_enodeb(agw::AccessGateway& agw,
                                 ran::EnodebConfig config,
                                 std::optional<sim::LinkConfig> s1_link) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);

  const std::uint32_t ran_id = next_ran_id_++;
  if (config.id.value == 1 && ran_id != 1) config.id.value = ran_id;
  if (config.address == ran::EnodebConfig{}.address) {
    config.address = common::Ipv4::from_octets(
        10, 100, static_cast<std::uint8_t>(ran_id >> 8),
        static_cast<std::uint8_t>(ran_id & 0xFF));
  }
  config.plmn = config_.plmn;

  // S1 rides a reliable channel over a LAN hop (the eNodeB and AGW are
  // co-located at the site) unless the caller overrides it to model a
  // remote, traditional core.
  node->ran_links.push_back(std::make_unique<net::DuplexLink>(
      kernel_, rng_, s1_link.value_or(sim::lan_link())));
  if (s1_link.has_value()) {
    node->wan_ran_links.push_back(node->ran_links.back().get());
  }
  node->ran_channels.push_back(
      net::make_reliable_pair(kernel_, *node->ran_links.back()));
  net::ReliablePair& pair = node->ran_channels.back();

  auto enb = std::make_unique<ran::EnodeB>(kernel_, config, *pair.a);
  agw.lte().add_enb_channel(*pair.b);
  agw::AccessGateway* agw_ptr = &agw;
  enb->set_uplink_sink([agw_ptr](datapath::PacketBatch batch) {
    agw_ptr->ingress_from_ran(std::move(batch));
  });
  node->enbs_by_address[config.address] = enb.get();
  enb->start();
  enbs_.push_back(std::move(enb));
  return *enbs_.back();
}

ran::Gnb& Network::add_gnb(agw::AccessGateway& agw, ran::GnbConfig config) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);

  const std::uint32_t ran_id = next_ran_id_++;
  if (config.id.value == 1 && ran_id != 1) config.id.value = ran_id;
  if (config.address == ran::GnbConfig{}.address) {
    config.address = common::Ipv4::from_octets(
        10, 101, static_cast<std::uint8_t>(ran_id >> 8),
        static_cast<std::uint8_t>(ran_id & 0xFF));
  }
  config.plmn = config_.plmn;

  node->ran_links.push_back(
      std::make_unique<net::DuplexLink>(kernel_, rng_, sim::lan_link()));
  node->ran_channels.push_back(
      net::make_reliable_pair(kernel_, *node->ran_links.back()));
  net::ReliablePair& pair = node->ran_channels.back();

  auto gnb = std::make_unique<ran::Gnb>(kernel_, config, *pair.a);
  agw.nr().add_gnb_channel(*pair.b);
  agw::AccessGateway* agw_ptr = &agw;
  gnb->set_uplink_sink([agw_ptr](datapath::PacketBatch batch) {
    agw_ptr->ingress_from_ran(std::move(batch));
  });
  node->gnbs_by_address[config.address] = gnb.get();
  gnb->start();
  gnbs_.push_back(std::move(gnb));
  return *gnbs_.back();
}

ran::WifiAp& Network::add_wifi_ap(agw::AccessGateway& agw,
                                  ran::WifiApConfig config) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);

  // RADIUS rides UDP (datagram) over the site LAN, as in real deployments.
  node->ran_links.push_back(
      std::make_unique<net::DuplexLink>(kernel_, rng_, sim::lan_link()));
  node->ran_datagram_channels.push_back(
      net::make_datagram_pair(kernel_, *node->ran_links.back()));
  net::ChannelPair& pair = node->ran_datagram_channels.back();

  auto ap = std::make_unique<ran::WifiAp>(kernel_, config, *pair.a);
  agw.wifi().add_ap_channel(*pair.b);
  agw::AccessGateway* agw_ptr = &agw;
  ap->set_uplink_sink([agw_ptr](datapath::PacketBatch batch) {
    agw_ptr->ingress_from_ran(std::move(batch));
  });
  node->aps.push_back(ap.get());
  aps_.push_back(std::move(ap));
  return *aps_.back();
}

rpc::RpcNode& Network::orc8r_node_for(agw::AccessGateway& agw) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);
  return *node->orc8r_server;
}

void Network::adopt_ran(agw::AccessGateway& backup,
                        agw::AccessGateway& failed) {
  AgwNode* to = node_for(backup);
  AgwNode* from = node_for(failed);
  assert(to != nullptr && from != nullptr);
  agw::AccessGateway* backup_ptr = &backup;
  for (auto& [addr, enb] : from->enbs_by_address) {
    to->enbs_by_address[addr] = enb;
    enb->set_uplink_sink([backup_ptr](datapath::PacketBatch batch) {
      backup_ptr->ingress_from_ran(std::move(batch));
    });
  }
  for (auto& [addr, gnb] : from->gnbs_by_address) {
    to->gnbs_by_address[addr] = gnb;
    gnb->set_uplink_sink([backup_ptr](datapath::PacketBatch batch) {
      backup_ptr->ingress_from_ran(std::move(batch));
    });
  }
  for (ran::WifiAp* ap : from->aps) {
    to->aps.push_back(ap);
    ap->set_uplink_sink([backup_ptr](datapath::PacketBatch batch) {
      backup_ptr->ingress_from_ran(std::move(batch));
    });
  }
}

void Network::set_backhaul_up(agw::AccessGateway& agw, bool up) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);
  node->backhaul->forward.set_up(up);
  node->backhaul->reverse.set_up(up);
  // An outage cuts everything crossing the WAN — including the S1 of a
  // traditional (remote-core) deployment. Magma's site-local S1 is
  // untouched, which is the point of §3.1.
  for (net::DuplexLink* link : node->wan_ran_links) {
    link->forward.set_up(up);
    link->reverse.set_up(up);
  }
}

void Network::set_backhaul_loss(agw::AccessGateway& agw,
                                double loss_probability) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);
  node->backhaul->forward.set_loss_probability(loss_probability);
  node->backhaul->reverse.set_loss_probability(loss_probability);
}

const net::ReliableStats& Network::control_stats_orc8r(
    agw::AccessGateway& agw) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);
  return node->control.a->stats();
}

const net::ReliableStats& Network::control_stats_agw(agw::AccessGateway& agw) {
  AgwNode* node = node_for(agw);
  assert(node != nullptr);
  return node->control.b->stats();
}

agw::SubscriberData Network::provision_subscriber(
    const std::string& policy_name, const std::string& wifi_password) {
  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000000ULL + next_imsi_++);
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t r = rng_.next_u64();
    std::memcpy(sub.k.data() + i * 8, &r, 8);
    const std::uint64_t r2 = rng_.next_u64();
    std::memcpy(sub.opc.data() + i * 8, &r2, 8);
  }
  sub.policy_name = policy_name;
  sub.wifi_password = wifi_password;
  orchestrator_->add_subscriber(sub);
  return sub;
}

void Network::add_policy(const Policy& policy) {
  orchestrator_->add_policy(policy);
}

void Network::sync_all_config() {
  for (auto& node : agws_) {
    node->agw->magmad().sync_config_now();
  }
  // Give the RPCs time to round-trip over the slowest plausible backhaul.
  run_for(3 * sim::kSecond);
}

ran::UeLte& Network::add_ue_lte(const agw::SubscriberData& subscriber) {
  lte_ues_.push_back(std::make_unique<ran::UeLte>(
      kernel_,
      ran::Usim(subscriber.imsi, subscriber.k, subscriber.opc, config_.plmn)));
  return *lte_ues_.back();
}

ran::UeNr& Network::add_ue_nr(const agw::SubscriberData& subscriber) {
  nr_ues_.push_back(std::make_unique<ran::UeNr>(
      kernel_,
      ran::Usim(subscriber.imsi, subscriber.k, subscriber.opc, config_.plmn)));
  return *nr_ues_.back();
}

ran::WifiClient& Network::add_wifi_client(
    const agw::SubscriberData& subscriber, const std::string& password) {
  wifi_clients_.push_back(
      std::make_unique<ran::WifiClient>(kernel_, subscriber.imsi, password));
  return *wifi_clients_.back();
}

void Network::inject_downlink(agw::AccessGateway& agw, common::Ipv4 ue_ip,
                              std::uint32_t packet_bytes,
                              std::uint64_t packet_count) {
  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(common::Ipv4::from_octets(8, 8, 8, 8),
                                    ue_ip, 443, 40000, packet_bytes);
  batch.count = packet_count;
  agw.ingress_from_internet(std::move(batch));
}

void Network::run_for(sim::Duration duration) {
  kernel_.run_until(kernel_.now() + duration);
}

void Network::run_until(sim::TimePoint deadline) {
  kernel_.run_until(deadline);
}

}  // namespace magma::core
