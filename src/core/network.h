// core::Network — the public API of the reproduction.
//
// Assembles a complete Magma deployment inside one simulation: an
// orchestrator (with optional OCS) in the "cloud", any number of AGWs
// behind configurable backhaul links, RAN nodes (eNodeB / gNB / WiFi AP)
// behind each AGW, and UE models. It owns the topology wiring the paper
// describes: S1/NG/RADIUS channels from RAN to AGW front-ends, gRPC-style
// control channels from AGWs to the orchestrator, user-plane egress
// routing, and the Internet at the SGi edge.
//
// A minimal deployment is "a single AGW and an orchestrator" (§3.2);
// scaling up is "essentially a matter of adding more AGWs" — both are one
// call here, which is exactly what bench/scaleout_agws measures.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agw/agw.h"
#include "core/policy.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "ocs/ocs.h"
#include "orc8r/orchestrator.h"
#include "ran/enodeb.h"
#include "ran/gnb.h"
#include "ran/ue.h"
#include "ran/wifi_ap.h"
#include "sim/kernel.h"
#include "sim/link.h"
#include "sim/random.h"

namespace magma::core {

struct NetworkConfig {
  std::uint64_t seed = 42;
  // Default AGW↔orchestrator backhaul (per-AGW override available).
  sim::LinkConfig backhaul = sim::fiber_backhaul();
  // Reliable-transport tuning for the control channels riding the backhaul
  // (AGW↔orchestrator, AGW↔OCS). The default is the RFC 6298 adaptive-RTO
  // transport with NewReno congestion control, SACK, and TSopt timestamps
  // all on; benches flip adaptive_rto / congestion_control / sack off to
  // measure the fixed-RTO and cumulative-ACK baselines.
  net::ReliableConfig transport = {};
  bool with_ocs = false;
  std::string plmn = "00101";
  // Engineered control-path SRTT; the default transport alert rules page
  // when the measured SRTT sits above 2× this (satellite deployments raise
  // it).
  double srtt_alert_baseline_s = 0.25;
  // magmad periodic cadences, applied to every AGW added to this network.
  agw::MagmadConfig magmad = {};
  // Gateway health plane (orc8r statusd): missed-checkin thresholds. The
  // checkin_interval field is overridden with magmad.checkin_interval so
  // freshness is judged against the cadence gateways actually use.
  orc8r::StatusdConfig statusd = {};
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Kernel& kernel() { return kernel_; }
  sim::Rng& rng() { return rng_; }
  orc8r::Orchestrator& orchestrator() { return *orchestrator_; }
  ocs::Ocs* ocs() { return ocs_.get(); }
  // The network-wide tracer: one span tree per attach, spanning every node.
  obs::Tracer& tracer() { return tracer_; }

  // --- topology ------------------------------------------------------------
  agw::AccessGateway& add_agw(
      agw::AgwProfile profile,
      std::optional<sim::LinkConfig> backhaul = std::nullopt);
  // `s1_link` overrides the S1 transport's link (default: the site LAN —
  // Magma co-locates the AGW with the radio). Passing a backhaul profile
  // instead models a *traditional* core whose MME sits across the WAN,
  // the architecture §3.1 argues against; bench/baseline_traditional_core
  // measures the difference.
  ran::EnodeB& add_enodeb(agw::AccessGateway& agw,
                          ran::EnodebConfig config = {},
                          std::optional<sim::LinkConfig> s1_link = std::nullopt);
  ran::Gnb& add_gnb(agw::AccessGateway& agw, ran::GnbConfig config = {});
  ran::WifiAp& add_wifi_ap(agw::AccessGateway& agw,
                           ran::WifiApConfig config = {});

  // Orchestrator-side RPC node serving a given AGW's control link (for
  // binding additional services, e.g. a FederationGateway).
  rpc::RpcNode& orc8r_node_for(agw::AccessGateway& agw);

  // Failover (§3.3): point `failed`'s RAN nodes at `backup` — the backup
  // instance takes over the S1/GTP endpoints, so user traffic flows again
  // once it has restored the failed gateway's checkpoint.
  void adopt_ran(agw::AccessGateway& backup, agw::AccessGateway& failed);

  // Administrative backhaul control (headless-operation experiments).
  void set_backhaul_up(agw::AccessGateway& agw, bool up);
  void set_backhaul_loss(agw::AccessGateway& agw, double loss_probability);

  // Transport stats of an AGW's orchestrator control channel, per side
  // (retransmissions are counted at the sender, spurious retransmissions at
  // the receiver of the duplicated data).
  const net::ReliableStats& control_stats_orc8r(agw::AccessGateway& agw);
  const net::ReliableStats& control_stats_agw(agw::AccessGateway& agw);

  // --- provisioning ----------------------------------------------------------
  // Creates a subscriber with fresh USIM credentials, registers it at the
  // orchestrator, and returns the full record (the UE side needs the keys).
  agw::SubscriberData provision_subscriber(
      const std::string& policy_name = "unlimited",
      const std::string& wifi_password = "");
  void add_policy(const Policy& policy);
  // Trigger an immediate config sync on every AGW (then run the kernel to
  // let the RPCs complete).
  void sync_all_config();

  // --- UE creation -------------------------------------------------------------
  ran::UeLte& add_ue_lte(const agw::SubscriberData& subscriber);
  ran::UeNr& add_ue_nr(const agw::SubscriberData& subscriber);
  ran::WifiClient& add_wifi_client(const agw::SubscriberData& subscriber,
                                   const std::string& password);

  // --- traffic -----------------------------------------------------------------
  // Inject downlink traffic arriving from the Internet at an AGW's SGi.
  void inject_downlink(agw::AccessGateway& agw, common::Ipv4 ue_ip,
                       std::uint32_t packet_bytes, std::uint64_t packet_count);
  // Bytes that reached the Internet (uplink through all SGi ports).
  std::uint64_t internet_rx_bytes() const { return internet_rx_bytes_; }
  // Home-routed uplink leaving SGi GTP-encapsulated goes here instead.
  void set_sgi_gtp_sink(std::function<void(datapath::PacketBatch)> sink) {
    sgi_gtp_sink_ = std::move(sink);
  }

  // --- run helpers -----------------------------------------------------------------
  void run_for(sim::Duration duration);
  void run_until(sim::TimePoint deadline);

  std::size_t agw_count() const { return agws_.size(); }
  agw::AccessGateway& agw(std::size_t index) { return *agws_[index]->agw; }

 private:
  struct AgwNode {
    std::unique_ptr<agw::AccessGateway> agw;
    std::unique_ptr<net::DuplexLink> backhaul;
    net::ReliablePair control;  // a = orchestrator side, b = AGW side
    std::unique_ptr<rpc::RpcNode> orc8r_server;
    std::unique_ptr<net::DuplexLink> ocs_link;
    net::ReliablePair ocs_channel;
    std::unique_ptr<rpc::RpcNode> ocs_server;
    // RAN registry for egress routing.
    std::map<common::Ipv4, ran::EnodeB*> enbs_by_address;
    std::map<common::Ipv4, ran::Gnb*> gnbs_by_address;
    std::vector<ran::WifiAp*> aps;
    // Owned channels RAN nodes ride on.
    std::vector<std::unique_ptr<net::DuplexLink>> ran_links;
    // RAN links that traverse the WAN (traditional-core modeling): a
    // backhaul outage takes these down too.
    std::vector<net::DuplexLink*> wan_ran_links;
    std::vector<net::ReliablePair> ran_channels;
    std::vector<net::ChannelPair> ran_datagram_channels;
  };

  AgwNode* node_for(agw::AccessGateway& agw);
  void wire_egress(AgwNode& node);

  NetworkConfig config_;
  sim::Kernel kernel_;
  sim::Rng rng_;
  // Declared before agws_: AGW destructors deregister their tracer hooks.
  obs::Tracer tracer_{kernel_};
  std::unique_ptr<orc8r::Orchestrator> orchestrator_;
  std::unique_ptr<ocs::Ocs> ocs_;

  std::vector<std::unique_ptr<AgwNode>> agws_;
  std::vector<std::unique_ptr<ran::EnodeB>> enbs_;
  std::vector<std::unique_ptr<ran::Gnb>> gnbs_;
  std::vector<std::unique_ptr<ran::WifiAp>> aps_;
  std::vector<std::unique_ptr<ran::UeLte>> lte_ues_;
  std::vector<std::unique_ptr<ran::UeNr>> nr_ues_;
  std::vector<std::unique_ptr<ran::WifiClient>> wifi_clients_;

  std::uint64_t next_imsi_ = 1;
  std::uint32_t next_ran_id_ = 1;
  std::uint64_t internet_rx_bytes_ = 0;
  std::function<void(datapath::PacketBatch)> sgi_gtp_sink_;
};

}  // namespace magma::core
