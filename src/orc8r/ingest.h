// Sharded southbound ingest for the orchestrator.
//
// Every AGW in the fleet pushes checkins, metric reports, histogram
// snapshots, and trace summaries at the orchestrator; applying each report
// inline in the RPC handler means one chatty or malfunctioning gateway can
// monopolize the control plane, and ingest work grows unbounded with fleet
// size. This generalizes the bounded-work-queue pattern accessd uses for
// attach processing: reports are decoded (and answered) inline, but the
// *apply* — the statusd/metricsd mutation — is enqueued on a per-gateway
// bounded FIFO inside one of a fixed number of shards. Each shard drains a
// batch per pump tick, round-robin across its gateways, so no single
// gateway can starve its shard-mates. A full per-gateway queue sheds the
// report (counted, never queued) — the same loss-tolerant posture as the
// metrics path itself (§3.4): a shed report's data is simply absent, and
// the next report self-corrects.
//
// Determinism: gateways hash to shards with FNV-1a (stable across runs and
// platforms, unlike std::hash), queues live in std::map (iteration in key
// order), and pumps are ordinary kernel events — the same fleet replays the
// same ingest order every run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::orc8r {

enum class IngestKind : std::uint8_t {
  kCheckin = 0,
  kMetrics = 1,
  kHistograms = 2,
  kTraceSummaries = 3,
  kSketches = 4,
};
inline constexpr std::size_t kIngestKindCount = 5;
const char* ingest_kind_name(IngestKind kind);

struct IngestConfig {
  std::size_t shards = 4;
  // Pending applies per gateway before sheds start. One poll cycle's worth
  // of reports is ~4 (checkin + metrics + histograms + traces); 64 absorbs
  // a pump stall of over a dozen cycles before anything is lost.
  std::size_t gateway_queue_max = 64;
  std::size_t batch_per_pump = 16;  // applies per shard per pump tick
  sim::Duration pump_interval = 5 * sim::kMillisecond;
};

struct IngestStats {
  std::uint64_t submitted = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;  // rejected at a full per-gateway queue
  std::uint64_t shed_by_kind[kIngestKindCount] = {};
  std::uint64_t batches = 0;  // pump ticks that applied at least one item
  // High-water marks: deepest single gateway queue and deepest total
  // backlog ever seen (the gauges that size the bounds).
  std::uint64_t max_gateway_queue = 0;
  std::uint64_t max_pending = 0;
};

class IngestShards {
 public:
  explicit IngestShards(sim::Kernel& kernel, IngestConfig config = {});

  // Enqueue `apply` on the gateway's FIFO. False: the queue is full and the
  // report was shed (caller should count it and answer the gateway anyway —
  // southbound reports are best-effort, a retry would just re-shed).
  bool submit(const std::string& gateway_id, IngestKind kind,
              std::function<void()> apply);

  std::size_t pending() const;
  const IngestStats& stats() const { return stats_; }
  const IngestConfig& config() const { return config_; }

  // Stable gateway -> shard assignment (FNV-1a, not std::hash).
  static std::size_t shard_of(const std::string& gateway_id,
                              std::size_t shards);

 private:
  struct Item {
    IngestKind kind;
    std::function<void()> apply;
  };
  struct Shard {
    std::map<std::string, std::deque<Item>> queues;  // per-gateway FIFO
    std::string resume_after;  // round-robin cursor (last gateway served)
    bool pump_scheduled = false;
    std::size_t pending = 0;
  };

  void pump(std::size_t index);

  sim::Kernel& kernel_;
  IngestConfig config_;
  std::vector<Shard> shards_;
  IngestStats stats_;
};

}  // namespace magma::orc8r
