// statusd — orchestrator-side gateway health tracking (the orc8r service of
// the same name; §3.2 device management).
//
// Every magmad checkin carries the gateway's Service303 snapshot (see
// obs/status.h). statusd records the per-gateway snapshot and checkin time,
// and a periodic freshness sweep drives a three-state health machine from
// the number of *missed* checkins:
//
//   healthy      — fewer than `degraded_after_missed` intervals since the
//                  last checkin
//   degraded     — at least `degraded_after_missed` missed
//   unreachable  — at least `unreachable_after_missed` missed
//
// A partitioned gateway therefore flips to unreachable within a bounded
// time: unreachable_after_missed × checkin_interval + sweep_interval. A
// single successful checkin recovers it to healthy immediately (and counts
// a recovery). Each sweep and each checkin push `gateway_health` and
// `gateway_missed_checkins` gauges into metricsd, where the default health
// alert rules (install_default_health_rules) fire and clear on the same
// samples — the alert lifecycle needs no side channel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/slo/availability.h"
#include "obs/status.h"
#include "orc8r/metricsd.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::orc8r {

enum class GatewayHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kUnreachable = 2,
};
const char* gateway_health_name(GatewayHealth health);

struct StatusdConfig {
  // Expected checkin cadence — must match the gateways' MagmadConfig
  // (core::Network wires them together).
  sim::Duration checkin_interval = 60 * sim::kSecond;
  // Freshness evaluation cadence. Bounds detection latency on top of the
  // missed-checkin thresholds.
  sim::Duration sweep_interval = 15 * sim::kSecond;
  std::uint32_t degraded_after_missed = 2;
  std::uint32_t unreachable_after_missed = 5;
};

// Per-gateway view: last checkin, health, and the reported service statuses.
struct GatewayStatus {
  std::string gateway_id;
  sim::TimePoint last_checkin = -1;
  std::uint64_t checkins = 0;
  GatewayHealth health = GatewayHealth::kHealthy;
  std::vector<obs::ServiceStatus> services;
};

struct StatusdStats {
  std::uint64_t checkins = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t to_degraded = 0;
  std::uint64_t to_unreachable = 0;
  std::uint64_t recoveries = 0;  // non-healthy → healthy
  // Per-service error-growth alert rules installed (one per distinct
  // service name seen across all gateways' checkins).
  std::uint64_t service_rules_installed = 0;
};

class Statusd {
 public:
  // `metricsd` may be null (no gauges pushed, health machine still runs).
  Statusd(sim::Kernel& kernel, Metricsd* metricsd, StatusdConfig config = {});
  Statusd(const Statusd&) = delete;
  Statusd& operator=(const Statusd&) = delete;

  // Replace the config (freshness thresholds apply from the next sweep).
  void configure(StatusdConfig config) { config_ = config; }
  const StatusdConfig& config() const { return config_; }

  // Begin the periodic freshness sweep. NOT started implicitly: the sweep
  // reschedules forever, which would wedge tests that drain the kernel with
  // run(). core::Network starts it; standalone tests call sweep_now().
  void start();
  bool started() const { return started_; }

  // A checkin from `gateway_id` carrying its Service303 snapshot. Resets
  // the missed count — an unhealthy gateway recovers here, immediately.
  void record_checkin(const std::string& gateway_id,
                      std::vector<obs::ServiceStatus> services);

  // One freshness evaluation over all tracked gateways (what the periodic
  // sweep runs).
  void sweep_now();

  // kHealthy for gateways that never checked in (nothing tracked yet).
  GatewayHealth health(const std::string& gateway_id) const;
  std::uint64_t missed_checkins(const std::string& gateway_id) const;
  const GatewayStatus* gateway(const std::string& gateway_id) const;
  std::vector<std::string> tracked_gateways() const;

  // The availability ledger the health FSM drives: a gateway entering
  // Unreachable opens a downtime interval (backdated to its first missed
  // heartbeat, last_checkin + checkin_interval — see availability.h), and
  // leaving Unreachable closes it. Alongside the health gauges, every
  // evaluation also pushes `sli_gateway_up` (1.0 unless unreachable) — the
  // SLI series the default availability burn-rate alert watches.
  obs::slo::AvailabilityLedger& availability() { return ledger_; }
  const obs::slo::AvailabilityLedger& availability() const { return ledger_; }

  // Hooks the orchestrator's attribution join hangs off the ledger edges:
  // `open` fires when a downtime interval opens (with its backdated start),
  // `close` when it closes (with the whole interval, end filled in).
  using DowntimeOpenHook =
      std::function<void(const std::string&, sim::TimePoint)>;
  using DowntimeCloseHook = std::function<void(
      const std::string&, const obs::slo::DowntimeInterval&)>;
  void set_downtime_hooks(DowntimeOpenHook open, DowntimeCloseHook close) {
    on_down_ = std::move(open);
    on_up_ = std::move(close);
  }

  const StatusdStats& stats() const { return stats_; }

 private:
  void sweep_tick();
  std::uint64_t missed_for(const GatewayStatus& gw) const;
  // Re-evaluate one gateway's health and push its gauges.
  void evaluate(GatewayStatus& gw);
  // Per-service health: while the gateway FSM is Healthy, push each
  // service's cumulative error counter as a `service_errors_<svc>` gauge,
  // installing (once per distinct service name) a kDelta rule that fires
  // when the counter grows between checkins. A gateway whose checkins stop
  // is covered by the missed-checkin machine instead; its error gauges
  // freeze, so growth during an unhealthy stretch fires once on recovery —
  // the first healthy checkin is exactly when an operator can act on it.
  void push_service_health(const GatewayStatus& gw);

  sim::Kernel& kernel_;
  Metricsd* metricsd_;
  StatusdConfig config_;
  std::map<std::string, GatewayStatus> gateways_;
  std::set<std::string> service_rules_;  // service names with a rule
  bool started_ = false;
  StatusdStats stats_;
  obs::slo::AvailabilityLedger ledger_;
  DowntimeOpenHook on_down_;
  DowntimeCloseHook on_up_;
};

// Default health alerting over the statusd gauges: `gateway_degraded` warns
// at health ≥ degraded, `gateway_unreachable` pages at health ≥ unreachable.
// Both clear automatically when a recovering sweep/checkin pushes a healthy
// sample. Idempotent by rule name.
void install_default_health_rules(Metricsd& metricsd);

}  // namespace magma::orc8r
