#include "orc8r/metricsd.h"

#include <algorithm>
#include <cstdio>

#include "rpc/wire.h"

namespace magma::orc8r {

common::Bytes encode_metric_report(const std::vector<MetricSample>& samples) {
  rpc::Writer w;
  w.u64(samples.size());
  for (const MetricSample& s : samples) {
    w.str(s.gateway_id);
    w.str(s.name);
    w.f64(s.value);
    w.i64(s.time);
  }
  return std::move(w).take();
}

common::Result<std::vector<MetricSample>> decode_metric_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<MetricSample> samples;
  // The count is attacker-controlled wire data: never reserve it blindly
  // (each sample needs ≥20 bytes on the wire, so cap by what could fit).
  samples.reserve(std::min<std::uint64_t>(count, r.remaining() / 20 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    MetricSample s;
    s.gateway_id = r.str();
    s.name = r.str();
    s.value = r.f64();
    s.time = r.i64();
    samples.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt metric report"};
  }
  return samples;
}

common::Bytes encode_histogram_report(
    const std::vector<HistogramSnapshot>& snapshots) {
  rpc::Writer w;
  w.u64(snapshots.size());
  for (const HistogramSnapshot& s : snapshots) {
    w.str(s.gateway_id);
    w.str(s.name);
    // Snapshot kind: 0 = full (bounds + all counts), 1 = delta (changed
    // buckets only).
    w.u8(s.delta ? 1 : 0);
    if (s.delta) {
      w.u32(static_cast<std::uint32_t>(s.changed.size()));
      for (const auto& [index, count] : s.changed) {
        w.u32(index);
        w.u64(count);
      }
    } else {
      w.u32(static_cast<std::uint32_t>(s.bounds.size()));
      for (const double b : s.bounds) w.f64(b);
      for (const std::uint64_t c : s.counts) w.u64(c);
    }
    w.f64(s.sum);
    w.i64(s.time);
  }
  return std::move(w).take();
}

common::Result<std::vector<HistogramSnapshot>> decode_histogram_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<HistogramSnapshot> snapshots;
  // Each snapshot needs ≥ 36 bytes on the wire; never trust the count.
  snapshots.reserve(std::min<std::uint64_t>(count, r.remaining() / 36 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    HistogramSnapshot s;
    s.gateway_id = r.str();
    s.name = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > 1) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "unknown histogram snapshot kind"};
    }
    if (kind == 1) {
      s.delta = true;
      const std::uint32_t entries = r.u32();
      // 12 wire bytes per (index, count) pair.
      if (static_cast<std::uint64_t>(entries) * 12 > r.remaining()) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "oversized histogram delta"};
      }
      s.changed.reserve(entries);
      for (std::uint32_t e = 0; e < entries && r.ok(); ++e) {
        const std::uint32_t index = r.u32();
        const std::uint64_t value = r.u64();
        s.changed.emplace_back(index, value);
      }
    } else {
      const std::uint32_t buckets = r.u32();
      // Bounds + counts need 16 bytes per bucket: bound the allocation by
      // what the remaining payload could actually hold.
      if (static_cast<std::uint64_t>(buckets) * 16 > r.remaining()) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "oversized histogram"};
      }
      s.bounds.reserve(buckets);
      for (std::uint32_t b = 0; b < buckets && r.ok(); ++b) {
        s.bounds.push_back(r.f64());
      }
      s.counts.reserve(buckets + 1);
      for (std::uint32_t c = 0; c < buckets + 1 && r.ok(); ++c) {
        s.counts.push_back(r.u64());
      }
      if (!std::is_sorted(s.bounds.begin(), s.bounds.end())) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "unsorted histogram bounds"};
      }
    }
    s.sum = r.f64();
    s.time = r.i64();
    snapshots.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt histogram report"};
  }
  return snapshots;
}

void Metricsd::ingest_histogram(const HistogramSnapshot& snapshot) {
  if (snapshot.delta) {
    auto it = histograms_.find({snapshot.gateway_id, snapshot.name});
    if (it == histograms_.end()) {
      ++histogram_delta_orphans_;  // no base to overlay; sender re-ships full
      return;
    }
    std::vector<std::uint64_t> counts = it->second.counts();
    for (const auto& [index, count] : snapshot.changed) {
      if (index >= counts.size()) {
        ++histogram_delta_orphans_;  // layout drifted under the delta
        return;
      }
      counts[index] = count;
    }
    obs::Histogram h(std::vector<double>{});
    if (!h.assign(it->second.bounds(), std::move(counts), snapshot.sum)) {
      return;
    }
    it->second = std::move(h);
    return;
  }
  obs::Histogram h(std::vector<double>{});
  if (!h.assign(snapshot.bounds, snapshot.counts, snapshot.sum)) return;
  histograms_.insert_or_assign({snapshot.gateway_id, snapshot.name},
                               std::move(h));
}

void Metricsd::ingest_histograms(
    const std::vector<HistogramSnapshot>& snapshots) {
  for (const HistogramSnapshot& s : snapshots) ingest_histogram(s);
}

std::vector<std::string> Metricsd::histogram_names() const {
  std::vector<std::string> names;
  for (const auto& [key, _] : histograms_) {
    if (names.empty() || names.back() != key.second) {
      names.push_back(key.second);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

obs::Histogram Metricsd::merged_histogram(const std::string& name) const {
  obs::Histogram merged(std::vector<double>{});
  bool first = true;
  for (const auto& [key, h] : histograms_) {
    if (key.second != name) continue;
    if (first) {
      merged = h;
      first = false;
    } else {
      merged.merge(h);  // layout mismatch: that gateway's buckets skipped
    }
  }
  return merged;
}

double Metricsd::histogram_quantile(const std::string& name, double q) const {
  return merged_histogram(name).quantile(q);
}

std::uint64_t Metricsd::histogram_count(const std::string& name) const {
  return merged_histogram(name).count();
}

void Metricsd::ingest_trace_summaries(
    const std::vector<obs::TraceSummary>& summaries) {
  for (const obs::TraceSummary& s : summaries) {
    LatencyAttributionRow& row = attribution_[s.root_op];
    row.root_op = s.root_op;
    ++row.traces;
    const double duration_s = sim::to_seconds(s.duration);
    row.total_s += duration_s;
    row.max_s = std::max(row.max_s, duration_s);
    for (std::size_t i = 0; i < obs::kWaitStateCount; ++i) {
      row.component_s[i] += sim::to_seconds(s.breakdown[i]);
    }
    ++trace_summaries_ingested_;
  }
}

std::vector<LatencyAttributionRow> Metricsd::latency_attribution() const {
  std::vector<LatencyAttributionRow> rows;
  rows.reserve(attribution_.size());
  for (const auto& [_, row] : attribution_) rows.push_back(row);
  return rows;
}

std::string format_latency_attribution(
    const std::vector<LatencyAttributionRow>& rows) {
  std::string out;
  for (const LatencyAttributionRow& row : rows) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-16s traces=%llu mean=%.1fms max=%.1fms |",
                  row.root_op.c_str(),
                  static_cast<unsigned long long>(row.traces),
                  row.traces > 0 ? 1e3 * row.total_s /
                                       static_cast<double>(row.traces)
                                 : 0.0,
                  1e3 * row.max_s);
    out += line;
    for (std::size_t i = 0; i < obs::kWaitStateCount; ++i) {
      if (row.component_s[i] <= 0) continue;
      std::snprintf(line, sizeof(line), " %s %.1f%%",
                    obs::wait_state_name(static_cast<obs::WaitState>(i)),
                    row.total_s > 0 ? 100.0 * row.component_s[i] / row.total_s
                                    : 0.0);
      out += line;
    }
    out += '\n';
  }
  return out;
}

void Metricsd::set_retention(std::size_t max_samples_per_series) {
  max_per_series_ = max_samples_per_series;
  if (max_per_series_ == 0) return;
  for (auto& [_, series] : by_name_) {
    if (series.size() > max_per_series_) {
      const std::size_t excess = series.size() - max_per_series_;
      series.erase(series.begin(),
                   series.begin() + static_cast<std::ptrdiff_t>(excess));
      samples_dropped_ += excess;
    }
  }
}

void Metricsd::add_alert_rule(AlertRule rule) {
  remove_alert_rule(rule.name);
  rules_.push_back(std::move(rule));
}

void Metricsd::remove_alert_rule(const std::string& name) {
  std::erase_if(rules_, [&](const AlertRule& r) { return r.name == name; });
  std::erase_if(firing_, [&](const auto& kv) { return kv.first.first == name; });
}

std::vector<ActiveAlert> Metricsd::active_alerts() const {
  std::vector<ActiveAlert> out;
  out.reserve(firing_.size());
  for (const auto& [_, alert] : firing_) out.push_back(alert);
  return out;
}

void Metricsd::evaluate_alerts(const MetricSample& sample) {
  const auto series_key = std::make_pair(sample.name, sample.gateway_id);
  const auto prev_it = last_value_.find(series_key);
  for (const AlertRule& rule : rules_) {
    if (rule.metric != sample.name) continue;
    bool breached = false;
    if (rule.kind == AlertKind::kDelta) {
      // Growth vs the previous sample from this gateway; the first sample
      // of a series establishes the baseline and never fires.
      if (prev_it != last_value_.end()) {
        const double delta = sample.value - prev_it->second;
        breached = rule.fire_above ? delta > rule.threshold
                                   : delta < rule.threshold;
      }
    } else {
      breached = rule.fire_above ? sample.value > rule.threshold
                                 : sample.value < rule.threshold;
    }
    const auto key = std::make_pair(rule.name, sample.gateway_id);
    auto it = firing_.find(key);
    if (breached) {
      if (it == firing_.end()) {
        firing_[key] =
            ActiveAlert{rule.name, sample.gateway_id, sample.value,
                        sample.time};
        ++alerts_fired_;
      } else {
        it->second.value = sample.value;  // still firing; refresh value
      }
    } else if (it != firing_.end()) {
      firing_.erase(it);  // recovered
    }
  }
  last_value_[series_key] = sample.value;
}

void Metricsd::ingest(const MetricSample& sample) {
  evaluate_alerts(sample);
  auto& series = by_name_[sample.name];
  // Reports arrive roughly time-ordered; keep the invariant strictly.
  if (!series.empty() && series.back().time > sample.time) {
    auto pos = std::upper_bound(
        series.begin(), series.end(), sample,
        [](const MetricSample& a, const MetricSample& b) {
          return a.time < b.time;
        });
    series.insert(pos, sample);
  } else {
    series.push_back(sample);
  }
  ++total_;
  if (max_per_series_ != 0 && series.size() > max_per_series_) {
    series.erase(series.begin());
    ++samples_dropped_;
  }
}

void Metricsd::ingest(const std::vector<MetricSample>& samples) {
  for (const MetricSample& s : samples) ingest(s);
}

std::vector<MetricSample> Metricsd::series(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<MetricSample>{} : it->second;
}

double Metricsd::sum_latest(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  std::map<std::string, double> latest;
  for (const MetricSample& s : it->second) latest[s.gateway_id] = s.value;
  double sum = 0;
  for (const auto& [_, v] : latest) sum += v;
  return sum;
}

std::optional<double> Metricsd::latest(const std::string& gateway_id,
                                       const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->gateway_id == gateway_id) return rit->value;
  }
  return std::nullopt;
}

double Metricsd::sum_in_window(const std::string& name, sim::TimePoint from,
                               sim::TimePoint to) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  double sum = 0;
  for (const MetricSample& s : it->second) {
    if (s.time >= from && s.time < to) sum += s.value;
  }
  return sum;
}

void install_default_transport_rules(Metricsd& metricsd,
                                     double srtt_baseline_s) {
  // transport_resets is a monotonic counter: any growth between two reports
  // means a control-channel incarnation died (max-retries exhausted) — the
  // ROADMAP's "page when transport_resets grows".
  metricsd.add_alert_rule(AlertRule{"transport_resets_growth",
                                    "transport_resets", 0.0, true,
                                    AlertKind::kDelta});
  // SRTT persistently above 2× the engineered path baseline means the
  // backhaul degraded (congestion, reroute via satellite, bufferbloat).
  metricsd.add_alert_rule(AlertRule{"transport_srtt_high", "transport_srtt_s",
                                    2.0 * srtt_baseline_s, true,
                                    AlertKind::kThreshold});
  // transport_rto_at_cap counts retransmission timers that hit max_rto:
  // growth means the gateway's control channel is backed off as far as it
  // can go — the link is effectively dead even if resets haven't fired yet.
  metricsd.add_alert_rule(AlertRule{"transport_rto_at_cap_growth",
                                    "transport_rto_at_cap", 0.0, true,
                                    AlertKind::kDelta});
}

std::vector<std::string> Metricsd::metric_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, _] : by_name_) names.push_back(name);
  return names;
}

}  // namespace magma::orc8r
