#include "orc8r/metricsd.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::orc8r {

common::Bytes encode_metric_report(const std::vector<MetricSample>& samples) {
  rpc::Writer w;
  w.u64(samples.size());
  for (const MetricSample& s : samples) {
    w.str(s.gateway_id);
    w.str(s.name);
    w.f64(s.value);
    w.i64(s.time);
  }
  return std::move(w).take();
}

common::Result<std::vector<MetricSample>> decode_metric_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<MetricSample> samples;
  // The count is attacker-controlled wire data: never reserve it blindly
  // (each sample needs ≥20 bytes on the wire, so cap by what could fit).
  samples.reserve(std::min<std::uint64_t>(count, r.remaining() / 20 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    MetricSample s;
    s.gateway_id = r.str();
    s.name = r.str();
    s.value = r.f64();
    s.time = r.i64();
    samples.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt metric report"};
  }
  return samples;
}

void Metricsd::add_alert_rule(AlertRule rule) {
  remove_alert_rule(rule.name);
  rules_.push_back(std::move(rule));
}

void Metricsd::remove_alert_rule(const std::string& name) {
  std::erase_if(rules_, [&](const AlertRule& r) { return r.name == name; });
  std::erase_if(firing_, [&](const auto& kv) { return kv.first.first == name; });
}

std::vector<ActiveAlert> Metricsd::active_alerts() const {
  std::vector<ActiveAlert> out;
  out.reserve(firing_.size());
  for (const auto& [_, alert] : firing_) out.push_back(alert);
  return out;
}

void Metricsd::evaluate_alerts(const MetricSample& sample) {
  for (const AlertRule& rule : rules_) {
    if (rule.metric != sample.name) continue;
    const bool breached = rule.fire_above ? sample.value > rule.threshold
                                          : sample.value < rule.threshold;
    const auto key = std::make_pair(rule.name, sample.gateway_id);
    auto it = firing_.find(key);
    if (breached) {
      if (it == firing_.end()) {
        firing_[key] =
            ActiveAlert{rule.name, sample.gateway_id, sample.value,
                        sample.time};
        ++alerts_fired_;
      } else {
        it->second.value = sample.value;  // still firing; refresh value
      }
    } else if (it != firing_.end()) {
      firing_.erase(it);  // recovered
    }
  }
}

void Metricsd::ingest(const MetricSample& sample) {
  evaluate_alerts(sample);
  auto& series = by_name_[sample.name];
  // Reports arrive roughly time-ordered; keep the invariant strictly.
  if (!series.empty() && series.back().time > sample.time) {
    auto pos = std::upper_bound(
        series.begin(), series.end(), sample,
        [](const MetricSample& a, const MetricSample& b) {
          return a.time < b.time;
        });
    series.insert(pos, sample);
  } else {
    series.push_back(sample);
  }
  ++total_;
}

void Metricsd::ingest(const std::vector<MetricSample>& samples) {
  for (const MetricSample& s : samples) ingest(s);
}

std::vector<MetricSample> Metricsd::series(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<MetricSample>{} : it->second;
}

double Metricsd::sum_latest(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  std::map<std::string, double> latest;
  for (const MetricSample& s : it->second) latest[s.gateway_id] = s.value;
  double sum = 0;
  for (const auto& [_, v] : latest) sum += v;
  return sum;
}

std::optional<double> Metricsd::latest(const std::string& gateway_id,
                                       const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->gateway_id == gateway_id) return rit->value;
  }
  return std::nullopt;
}

double Metricsd::sum_in_window(const std::string& name, sim::TimePoint from,
                               sim::TimePoint to) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  double sum = 0;
  for (const MetricSample& s : it->second) {
    if (s.time >= from && s.time < to) sum += s.value;
  }
  return sum;
}

std::vector<std::string> Metricsd::metric_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, _] : by_name_) names.push_back(name);
  return names;
}

}  // namespace magma::orc8r
