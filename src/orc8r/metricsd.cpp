#include "orc8r/metricsd.h"

#include <algorithm>
#include <cstdio>

#include "obs/slo/slo.h"
#include "rpc/wire.h"

namespace magma::orc8r {

common::Bytes encode_metric_report(const std::vector<MetricSample>& samples) {
  rpc::Writer w;
  w.u64(samples.size());
  for (const MetricSample& s : samples) {
    w.str(s.gateway_id);
    w.str(s.name);
    w.f64(s.value);
    w.i64(s.time);
  }
  return std::move(w).take();
}

common::Result<std::vector<MetricSample>> decode_metric_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<MetricSample> samples;
  // The count is attacker-controlled wire data: never reserve it blindly
  // (each sample needs ≥20 bytes on the wire, so cap by what could fit).
  samples.reserve(std::min<std::uint64_t>(count, r.remaining() / 20 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    MetricSample s;
    s.gateway_id = r.str();
    s.name = r.str();
    s.value = r.f64();
    s.time = r.i64();
    samples.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt metric report"};
  }
  return samples;
}

common::Bytes encode_histogram_report(
    const std::vector<HistogramSnapshot>& snapshots) {
  rpc::Writer w;
  w.u64(snapshots.size());
  for (const HistogramSnapshot& s : snapshots) {
    w.str(s.gateway_id);
    w.str(s.name);
    // Snapshot kind: 0 = full (bounds + all counts), 1 = delta (changed
    // buckets only).
    w.u8(s.delta ? 1 : 0);
    if (s.delta) {
      w.u32(static_cast<std::uint32_t>(s.changed.size()));
      for (const auto& [index, count] : s.changed) {
        w.u32(index);
        w.u64(count);
      }
    } else {
      w.u32(static_cast<std::uint32_t>(s.bounds.size()));
      for (const double b : s.bounds) w.f64(b);
      for (const std::uint64_t c : s.counts) w.u64(c);
    }
    w.u32(static_cast<std::uint32_t>(s.exemplars.size()));
    for (const auto& [bucket, trace_id] : s.exemplars) {
      w.u32(bucket);
      w.u64(trace_id);
    }
    w.f64(s.sum);
    w.i64(s.time);
  }
  return std::move(w).take();
}

common::Result<std::vector<HistogramSnapshot>> decode_histogram_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<HistogramSnapshot> snapshots;
  // Each snapshot needs ≥ 36 bytes on the wire; never trust the count.
  snapshots.reserve(std::min<std::uint64_t>(count, r.remaining() / 36 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    HistogramSnapshot s;
    s.gateway_id = r.str();
    s.name = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > 1) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "unknown histogram snapshot kind"};
    }
    if (kind == 1) {
      s.delta = true;
      const std::uint32_t entries = r.u32();
      // 12 wire bytes per (index, count) pair.
      if (static_cast<std::uint64_t>(entries) * 12 > r.remaining()) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "oversized histogram delta"};
      }
      s.changed.reserve(entries);
      for (std::uint32_t e = 0; e < entries && r.ok(); ++e) {
        const std::uint32_t index = r.u32();
        const std::uint64_t value = r.u64();
        s.changed.emplace_back(index, value);
      }
    } else {
      const std::uint32_t buckets = r.u32();
      // Bounds + counts need 16 bytes per bucket: bound the allocation by
      // what the remaining payload could actually hold.
      if (static_cast<std::uint64_t>(buckets) * 16 > r.remaining()) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "oversized histogram"};
      }
      s.bounds.reserve(buckets);
      for (std::uint32_t b = 0; b < buckets && r.ok(); ++b) {
        s.bounds.push_back(r.f64());
      }
      s.counts.reserve(buckets + 1);
      for (std::uint32_t c = 0; c < buckets + 1 && r.ok(); ++c) {
        s.counts.push_back(r.u64());
      }
      if (!std::is_sorted(s.bounds.begin(), s.bounds.end())) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "unsorted histogram bounds"};
      }
    }
    const std::uint32_t exemplars = r.u32();
    // 12 wire bytes per (bucket, trace id) pair — the count is wire data.
    if (static_cast<std::uint64_t>(exemplars) * 12 > r.remaining()) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "oversized exemplar list"};
    }
    s.exemplars.reserve(exemplars);
    for (std::uint32_t e = 0; e < exemplars && r.ok(); ++e) {
      const std::uint32_t bucket = r.u32();
      const std::uint64_t trace_id = r.u64();
      s.exemplars.emplace_back(bucket, trace_id);
    }
    s.sum = r.f64();
    s.time = r.i64();
    snapshots.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt histogram report"};
  }
  return snapshots;
}

void Metricsd::ingest_histogram(const HistogramSnapshot& snapshot) {
  if (snapshot.delta) {
    auto it = histograms_.find({snapshot.gateway_id, snapshot.name});
    if (it == histograms_.end()) {
      ++histogram_delta_orphans_;  // no base to overlay; sender re-ships full
      note_drop(DropKind::kHistogram);
      return;
    }
    std::vector<std::uint64_t> counts = it->second.counts();
    for (const auto& [index, count] : snapshot.changed) {
      if (index >= counts.size()) {
        ++histogram_delta_orphans_;  // layout drifted under the delta
        note_drop(DropKind::kHistogram);
        return;
      }
      counts[index] = count;
    }
    obs::Histogram h(std::vector<double>{});
    if (!h.assign(it->second.bounds(), std::move(counts), snapshot.sum)) {
      note_drop(DropKind::kHistogram);
      return;
    }
    // Deltas carry only *changed* exemplars: start from the stored ones.
    const std::vector<std::uint64_t>& kept = it->second.exemplars();
    for (std::size_t b = 0; b < kept.size(); ++b) h.set_exemplar(b, kept[b]);
    for (const auto& [bucket, trace_id] : snapshot.exemplars) {
      h.set_exemplar(bucket, trace_id);
    }
    it->second = std::move(h);
    return;
  }
  obs::Histogram h(std::vector<double>{});
  if (!h.assign(snapshot.bounds, snapshot.counts, snapshot.sum)) {
    note_drop(DropKind::kHistogram);
    return;
  }
  for (const auto& [bucket, trace_id] : snapshot.exemplars) {
    h.set_exemplar(bucket, trace_id);
  }
  histograms_.insert_or_assign({snapshot.gateway_id, snapshot.name},
                               std::move(h));
}

void Metricsd::ingest_histograms(
    const std::vector<HistogramSnapshot>& snapshots) {
  for (const HistogramSnapshot& s : snapshots) ingest_histogram(s);
}

std::vector<std::string> Metricsd::histogram_names() const {
  std::vector<std::string> names;
  for (const auto& [key, _] : histograms_) {
    if (names.empty() || names.back() != key.second) {
      names.push_back(key.second);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

obs::Histogram Metricsd::merged_histogram(const std::string& name) const {
  obs::Histogram merged(std::vector<double>{});
  bool first = true;
  for (const auto& [key, h] : histograms_) {
    if (key.second != name) continue;
    if (first) {
      merged = h;
      first = false;
    } else {
      merged.merge(h);  // layout mismatch: that gateway's buckets skipped
    }
  }
  return merged;
}

double Metricsd::histogram_quantile(const std::string& name, double q) const {
  return merged_histogram(name).quantile(q);
}

std::uint64_t Metricsd::histogram_count(const std::string& name) const {
  return merged_histogram(name).count();
}

std::uint64_t Metricsd::histogram_exemplar(const std::string& name,
                                           double q) const {
  return merged_histogram(name).exemplar_near_quantile(q);
}

void Metricsd::ingest_sketch_report(obs::sketch::SketchReport report) {
  auto it = sketches_.find(report.gateway_id);
  if (it != sketches_.end() && it->second.time > report.time) {
    // A replayed or reordered report older than what we hold would roll the
    // cumulative sketches backwards.
    note_drop(DropKind::kSketch);
    return;
  }
  ++sketch_reports_ingested_;
  sketches_.insert_or_assign(report.gateway_id, std::move(report));
}

obs::sketch::SpaceSaving Metricsd::merged_top_subscribers(
    obs::sketch::SubscriberMetric metric) const {
  const std::size_t idx = static_cast<std::size_t>(metric);
  obs::sketch::SpaceSaving merged;
  bool first = true;
  for (const auto& [gw, report] : sketches_) {
    if (first) {
      merged = report.topk[idx];
      first = false;
    } else {
      merged.merge(report.topk[idx]);
    }
  }
  return merged;
}

double Metricsd::fleet_active_subscribers(bool window) const {
  obs::sketch::HyperLogLog merged;
  bool first = true;
  for (const auto& [gw, report] : sketches_) {
    const obs::sketch::HyperLogLog& h =
        window ? report.active_window : report.active_total;
    if (first) {
      merged = h;
      first = false;
    } else {
      merged.merge(h);
    }
  }
  return first ? 0.0 : merged.estimate();
}

std::string Metricsd::top_subscribers_report(
    obs::sketch::SubscriberMetric metric, std::size_t k) const {
  return obs::sketch::format_top_subscribers(
      metric, merged_top_subscribers(metric).top(), k, sketches_.size());
}

void Metricsd::ingest_trace_summaries(
    const std::vector<obs::TraceSummary>& summaries) {
  for (const obs::TraceSummary& s : summaries) {
    LatencyAttributionRow& row = attribution_[s.root_op];
    row.root_op = s.root_op;
    ++row.traces;
    const double duration_s = sim::to_seconds(s.duration);
    row.total_s += duration_s;
    row.max_s = std::max(row.max_s, duration_s);
    for (std::size_t i = 0; i < obs::kWaitStateCount; ++i) {
      row.component_s[i] += sim::to_seconds(s.breakdown[i]);
    }
    ++trace_summaries_ingested_;
  }
}

std::vector<LatencyAttributionRow> Metricsd::latency_attribution() const {
  std::vector<LatencyAttributionRow> rows;
  rows.reserve(attribution_.size());
  for (const auto& [_, row] : attribution_) rows.push_back(row);
  return rows;
}

std::string format_latency_attribution(
    const std::vector<LatencyAttributionRow>& rows) {
  std::string out;
  for (const LatencyAttributionRow& row : rows) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-16s traces=%llu mean=%.1fms max=%.1fms |",
                  row.root_op.c_str(),
                  static_cast<unsigned long long>(row.traces),
                  row.traces > 0 ? 1e3 * row.total_s /
                                       static_cast<double>(row.traces)
                                 : 0.0,
                  1e3 * row.max_s);
    out += line;
    for (std::size_t i = 0; i < obs::kWaitStateCount; ++i) {
      if (row.component_s[i] <= 0) continue;
      std::snprintf(line, sizeof(line), " %s %.1f%%",
                    obs::wait_state_name(static_cast<obs::WaitState>(i)),
                    row.total_s > 0 ? 100.0 * row.component_s[i] / row.total_s
                                    : 0.0);
      out += line;
    }
    out += '\n';
  }
  return out;
}

void Metricsd::set_retention(std::size_t max_samples_per_series) {
  max_per_series_ = max_samples_per_series;
  if (max_per_series_ == 0) return;
  for (auto& [_, series] : by_name_) {
    if (series.size() > max_per_series_) {
      const std::size_t excess = series.size() - max_per_series_;
      series.erase(series.begin(),
                   series.begin() + static_cast<std::ptrdiff_t>(excess));
      note_drop(DropKind::kMetric, excess);
    }
  }
}

std::uint64_t Metricsd::samples_dropped() const {
  std::uint64_t total = 0;
  for (const std::uint64_t d : dropped_) total += d;
  return total;
}

const char* Metricsd::drop_kind_name(DropKind kind) {
  switch (kind) {
    case DropKind::kMetric: return "metric";
    case DropKind::kHistogram: return "histogram";
    case DropKind::kTraceSummary: return "trace_summary";
    case DropKind::kSketch: return "sketch";
  }
  return "unknown";
}

void Metricsd::self_observe(sim::TimePoint now) {
  for (std::size_t i = 0; i < kDropKindCount; ++i) {
    MetricSample sample;
    // The kind plays the gateway dimension so each kind is its own series
    // for the kDelta growth rule.
    sample.gateway_id = drop_kind_name(static_cast<DropKind>(i));
    sample.name = "metricsd_samples_dropped";
    sample.value = static_cast<double>(dropped_[i]);
    sample.time = now;
    ingest(sample);
  }
}

void Metricsd::add_alert_rule(AlertRule rule) {
  remove_alert_rule(rule.name);
  rules_.push_back(std::move(rule));
}

void Metricsd::remove_alert_rule(const std::string& name) {
  std::erase_if(rules_, [&](const AlertRule& r) { return r.name == name; });
  std::erase_if(firing_, [&](const auto& kv) { return kv.first.first == name; });
  std::erase_if(burn_, [&](const auto& kv) { return kv.first.first == name; });
}

std::vector<ActiveAlert> Metricsd::active_alerts() const {
  std::vector<ActiveAlert> out;
  out.reserve(firing_.size());
  for (const auto& [_, alert] : firing_) out.push_back(alert);
  return out;
}

void Metricsd::evaluate_alerts(const MetricSample& sample) {
  const auto series_key = std::make_pair(sample.name, sample.gateway_id);
  const auto prev_it = last_value_.find(series_key);
  for (const AlertRule& rule : rules_) {
    if (rule.metric != sample.name) continue;
    const auto key = std::make_pair(rule.name, sample.gateway_id);
    bool breached = false;
    double alert_value = sample.value;
    if (rule.kind == AlertKind::kDelta) {
      // Growth vs the previous sample from this gateway; the first sample
      // of a series establishes the baseline and never fires.
      if (prev_it != last_value_.end()) {
        const double delta = sample.value - prev_it->second;
        breached = rule.fire_above ? delta > rule.threshold
                                   : delta < rule.threshold;
      }
    } else if (rule.kind == AlertKind::kBurnRate) {
      // Slide the per-(rule, gateway) slow window; the fast window is its
      // newest tail. Both burns must exceed the threshold to fire — and
      // either recovering clears (see AlertKind docs).
      BurnState& state = burn_[key];
      state.samples.emplace_back(sample.time, sample.value);
      state.sum += sample.value;
      const sim::TimePoint slow_cut = sample.time - rule.slow_window;
      while (!state.samples.empty() &&
             state.samples.front().first <= slow_cut) {
        state.sum -= state.samples.front().second;
        state.samples.pop_front();
      }
      const double slow_mean =
          state.sum / static_cast<double>(state.samples.size());
      const sim::TimePoint fast_cut = sample.time - rule.fast_window;
      double fast_sum = 0;
      std::size_t fast_n = 0;
      for (auto rit = state.samples.rbegin();
           rit != state.samples.rend() && rit->first > fast_cut; ++rit) {
        fast_sum += rit->second;
        ++fast_n;
      }
      // fast_n >= 1: the sample just pushed is inside its own fast window.
      const double fast_burn =
          obs::slo::burn_rate(fast_sum / static_cast<double>(fast_n),
                              rule.objective);
      const double slow_burn = obs::slo::burn_rate(slow_mean, rule.objective);
      breached = fast_burn > rule.threshold && slow_burn > rule.threshold;
      alert_value = fast_burn;
    } else {
      breached = rule.fire_above ? sample.value > rule.threshold
                                 : sample.value < rule.threshold;
    }
    auto it = firing_.find(key);
    if (breached) {
      if (it == firing_.end()) {
        firing_[key] =
            ActiveAlert{rule.name, sample.gateway_id, alert_value,
                        sample.time};
        ++alerts_fired_;
      } else {
        it->second.value = alert_value;  // still firing; refresh value
      }
    } else if (it != firing_.end()) {
      firing_.erase(it);  // recovered
    }
  }
  last_value_[series_key] = sample.value;
}

void Metricsd::ingest(const MetricSample& sample) {
  evaluate_alerts(sample);
  auto& series = by_name_[sample.name];
  // Reports arrive roughly time-ordered; keep the invariant strictly.
  if (!series.empty() && series.back().time > sample.time) {
    auto pos = std::upper_bound(
        series.begin(), series.end(), sample,
        [](const MetricSample& a, const MetricSample& b) {
          return a.time < b.time;
        });
    series.insert(pos, sample);
  } else {
    series.push_back(sample);
  }
  ++total_;
  if (max_per_series_ != 0 && series.size() > max_per_series_) {
    // Amortized retention: trimming one sample per ingest is an O(cap)
    // front-erase every time once a series fills — quadratic over a long
    // run (the 7-day availability bench lives at the cap for days). Trim a
    // half-cap chunk instead: the series length oscillates in
    // [cap/2, cap] and eviction amortizes to O(1) per sample.
    const std::size_t chunk = std::max<std::size_t>(1, max_per_series_ / 2);
    const std::size_t evict = std::min(chunk, series.size());
    series.erase(series.begin(),
                 series.begin() + static_cast<std::ptrdiff_t>(evict));
    note_drop(DropKind::kMetric, evict);
  }
}

void Metricsd::ingest(const std::vector<MetricSample>& samples) {
  for (const MetricSample& s : samples) ingest(s);
}

std::vector<MetricSample> Metricsd::series(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<MetricSample>{} : it->second;
}

double Metricsd::sum_latest(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  std::map<std::string, double> latest;
  for (const MetricSample& s : it->second) latest[s.gateway_id] = s.value;
  double sum = 0;
  for (const auto& [_, v] : latest) sum += v;
  return sum;
}

std::optional<double> Metricsd::latest(const std::string& gateway_id,
                                       const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->gateway_id == gateway_id) return rit->value;
  }
  return std::nullopt;
}

std::optional<double> Metricsd::latest_at_or_before(
    const std::string& gateway_id, const std::string& name,
    sim::TimePoint at) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  const std::vector<MetricSample>& series = it->second;
  MetricSample probe;
  probe.time = at;
  auto pos = std::upper_bound(series.begin(), series.end(), probe,
                              [](const MetricSample& a, const MetricSample& b) {
                                return a.time < b.time;
                              });
  while (pos != series.begin()) {
    --pos;
    if (pos->gateway_id == gateway_id) return pos->value;
  }
  return std::nullopt;
}

double Metricsd::sum_in_window(const std::string& name, sim::TimePoint from,
                               sim::TimePoint to) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  double sum = 0;
  for (const MetricSample& s : it->second) {
    if (s.time >= from && s.time < to) sum += s.value;
  }
  return sum;
}

std::optional<double> Metricsd::mean_in_window(const std::string& name,
                                               sim::TimePoint from,
                                               sim::TimePoint to) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  double sum = 0;
  std::size_t n = 0;
  for (const MetricSample& s : it->second) {
    if (s.time >= from && s.time < to) {
      sum += s.value;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

void install_default_transport_rules(Metricsd& metricsd,
                                     double srtt_baseline_s) {
  // transport_resets is a monotonic counter: any growth between two reports
  // means a control-channel incarnation died (max-retries exhausted) — the
  // ROADMAP's "page when transport_resets grows".
  metricsd.add_alert_rule(AlertRule{"transport_resets_growth",
                                    "transport_resets", 0.0, true,
                                    AlertKind::kDelta});
  // SRTT persistently above 2× the engineered path baseline means the
  // backhaul degraded (congestion, reroute via satellite, bufferbloat).
  metricsd.add_alert_rule(AlertRule{"transport_srtt_high", "transport_srtt_s",
                                    2.0 * srtt_baseline_s, true,
                                    AlertKind::kThreshold});
  // transport_rto_at_cap counts retransmission timers that hit max_rto:
  // growth means the gateway's control channel is backed off as far as it
  // can go — the link is effectively dead even if resets haven't fired yet.
  metricsd.add_alert_rule(AlertRule{"transport_rto_at_cap_growth",
                                    "transport_rto_at_cap", 0.0, true,
                                    AlertKind::kDelta});
}

std::vector<std::string> Metricsd::metric_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, _] : by_name_) names.push_back(name);
  return names;
}

std::vector<AvailabilityRow> availability_rollup(
    const obs::slo::AvailabilityLedger& ledger, sim::TimePoint from,
    sim::TimePoint to) {
  std::vector<AvailabilityRow> rows;
  AvailabilityRow fleet;
  fleet.gateway_id = "FLEET";
  double availability_sum = 0;
  for (const std::string& gw : ledger.tracked()) {
    AvailabilityRow row;
    row.gateway_id = gw;
    row.availability = ledger.uptime_ratio(gw, from, to);
    row.downtime_s = ledger.downtime_seconds(gw, from, to);
    if (const auto* intervals = ledger.intervals(gw)) {
      for (const obs::slo::DowntimeInterval& interval : *intervals) {
        const sim::TimePoint end =
            interval.end < 0 ? to : std::min(interval.end, to);
        const sim::TimePoint start = std::max(interval.start, from);
        if (end <= start) continue;  // no overlap with the report window
        ++row.intervals;
        row.cause_s[static_cast<std::size_t>(interval.cause)] +=
            sim::to_seconds(end - start);
      }
    }
    availability_sum += row.availability;
    fleet.downtime_s += row.downtime_s;
    fleet.intervals += row.intervals;
    for (std::size_t i = 0; i < obs::slo::kDowntimeCauseCount; ++i) {
      fleet.cause_s[i] += row.cause_s[i];
    }
    rows.push_back(std::move(row));
  }
  if (!rows.empty()) {
    fleet.availability = availability_sum / static_cast<double>(rows.size());
  }
  rows.push_back(std::move(fleet));
  return rows;
}

std::string format_availability(const std::vector<AvailabilityRow>& rows) {
  std::string out;
  for (const AvailabilityRow& row : rows) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-16s avail=%.4f%% down=%.1fs intervals=%llu |",
                  row.gateway_id.c_str(), 100.0 * row.availability,
                  row.downtime_s,
                  static_cast<unsigned long long>(row.intervals));
    out += line;
    for (std::size_t i = 0; i < obs::slo::kDowntimeCauseCount; ++i) {
      if (row.cause_s[i] <= 0) continue;
      std::snprintf(
          line, sizeof(line), " %s %.1f%%",
          obs::slo::downtime_cause_name(
              static_cast<obs::slo::DowntimeCause>(i)),
          row.downtime_s > 0 ? 100.0 * row.cause_s[i] / row.downtime_s : 0.0);
      out += line;
    }
    out += '\n';
  }
  return out;
}

void install_default_metricsd_rules(Metricsd& metricsd) {
  // The self-observed drop gauge is cumulative per kind; any rise between
  // two self_observe ticks means the pipeline truncated telemetry since the
  // last look.
  metricsd.add_alert_rule(AlertRule{"metricsd_samples_dropped_growth",
                                    "metricsd_samples_dropped", 0.0, true,
                                    AlertKind::kDelta});
}

void install_default_slo_rules(Metricsd& metricsd) {
  // 14.4 is the SRE-book "2% of a 30-day budget in one hour" page threshold;
  // with the fast window at 5 min and the slow at 1 h (the AlertRule
  // defaults), a full outage fires within minutes and a lone bad sample
  // never does.
  AlertRule availability;
  availability.name = "slo_availability_burn";
  availability.metric = "sli_gateway_up";
  availability.threshold = 14.4;
  availability.kind = AlertKind::kBurnRate;
  availability.objective = 0.999;
  metricsd.add_alert_rule(std::move(availability));

  AlertRule attach;
  attach.name = "slo_attach_success_burn";
  attach.metric = "sli_attach_success_rate";
  attach.threshold = 14.4;
  attach.kind = AlertKind::kBurnRate;
  attach.objective = 0.99;
  metricsd.add_alert_rule(std::move(attach));

  // Config-sync staleness is a slower-moving signal (the config tick is
  // 30 s): page at a gentler burn so a couple of lost polls don't.
  AlertRule config_sync;
  config_sync.name = "slo_config_sync_burn";
  config_sync.metric = "sli_config_sync_fresh";
  config_sync.threshold = 6.0;
  config_sync.kind = AlertKind::kBurnRate;
  config_sync.objective = 0.95;
  metricsd.add_alert_rule(std::move(config_sync));
}

}  // namespace magma::orc8r
