#include "orc8r/orchestrator.h"

#include "common/log.h"
#include "rpc/wire.h"

namespace magma::orc8r {

Orchestrator::Orchestrator(sim::Kernel& kernel, std::string network_name)
    : kernel_(kernel), network_name_(std::move(network_name)) {}

// ---------------------------------------------------------------------------
// Northbound API
// ---------------------------------------------------------------------------

void Orchestrator::add_subscriber(const agw::SubscriberData& subscriber) {
  store_.put(subscriber_key(subscriber.imsi), subscriber.serialize());
}

void Orchestrator::remove_subscriber(const common::Imsi& imsi) {
  store_.erase(subscriber_key(imsi));
}

std::optional<agw::SubscriberData> Orchestrator::get_subscriber(
    const common::Imsi& imsi) const {
  const auto raw = store_.get(subscriber_key(imsi));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = agw::SubscriberData::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

std::size_t Orchestrator::subscriber_count() const {
  return store_.scan("sub/").size();
}

void Orchestrator::add_policy(const core::Policy& policy) {
  store_.put(policy_key(policy.name), policy.serialize());
}

void Orchestrator::remove_policy(const std::string& name) {
  store_.erase(policy_key(name));
}

std::optional<core::Policy> Orchestrator::get_policy(
    const std::string& name) const {
  const auto raw = store_.get(policy_key(name));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = core::Policy::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

void Orchestrator::register_gateway(const std::string& gateway_id,
                                    const std::string& description) {
  auto& record = gateways_[gateway_id];
  record.id = gateway_id;
  record.description = description;
}

std::optional<GatewayRecord> Orchestrator::gateway(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end()) return std::nullopt;
  return it->second;
}

std::vector<GatewayRecord> Orchestrator::gateways() const {
  std::vector<GatewayRecord> out;
  out.reserve(gateways_.size());
  for (const auto& [_, record] : gateways_) out.push_back(record);
  return out;
}

std::optional<common::Bytes> Orchestrator::stored_checkpoint(
    const std::string& gateway_id) const {
  auto it = checkpoints_.find(gateway_id);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

DesiredState Orchestrator::desired_state(std::uint64_t have_version) const {
  DesiredState state;
  state.version = store_.version();
  if (have_version == state.version) {
    state.changed = false;
    return state;
  }
  state.changed = true;
  for (const auto& [key, value] : store_.scan("sub/")) {
    auto sub = agw::SubscriberData::deserialize(value);
    if (sub.ok()) state.subscribers.push_back(std::move(sub).take());
  }
  for (const auto& [key, value] : store_.scan("policy/")) {
    auto policy = core::Policy::deserialize(value);
    if (policy.ok()) state.policies.push_back(std::move(policy).take());
  }
  return state;
}

// ---------------------------------------------------------------------------
// Southbound RPC surface
// ---------------------------------------------------------------------------

void Orchestrator::bind(rpc::RpcNode& node) {
  node.register_method(
      kStreamerService, kGetUpdates,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        auto req = GetUpdatesRequest::deserialize(request);
        if (!req.ok()) {
          respond(rpc::Error{req.error()});
          return;
        }
        const DesiredState state = desired_state(req.value().have_version);
        if (state.changed) {
          ++stats_.config_pushes;
        } else {
          ++stats_.noop_polls;
        }
        respond(state.serialize());
      });

  node.register_method(
      kBootstrapperService, kCheckin,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        const std::string description = r.str();
        if (!r.ok()) {
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkin"});
          return;
        }
        auto& record = gateways_[gateway_id];
        record.id = gateway_id;
        if (record.description.empty()) record.description = description;
        record.last_checkin = kernel_.now();
        ++record.checkin_count;
        ++stats_.checkins;
        rpc::Writer w;
        w.boolean(true);
        respond(std::move(w).take());
      });

  node.register_method(
      kStateService, kReportCheckpoint,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        common::Bytes blob = r.bytes();
        if (!r.ok()) {
          respond(
              rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkpoint"});
          return;
        }
        checkpoints_[gateway_id] = std::move(blob);
        ++stats_.checkpoints_stored;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportMetrics,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        auto samples = decode_metric_report(request);
        if (!samples.ok()) {
          respond(rpc::Error{samples.error()});
          return;
        }
        metricsd_.ingest(samples.value());
        ++stats_.metric_reports;
        respond(rpc::Bytes{});
      });
}

}  // namespace magma::orc8r
