#include "orc8r/orchestrator.h"

#include "obs/host_profiler.h"

#include <algorithm>

#include "common/log.h"
#include "rpc/wire.h"

namespace magma::orc8r {

namespace {
// Process-wide incarnation counter. The sim has no wall clock or boot id,
// so this is what guarantees two orchestrator incarnations never share an
// epoch — including a restart over a *fresh* store, where the persisted
// "meta/epoch" alone would restart the sequence and let a gateway splice
// new-incarnation deltas onto old-incarnation state.
std::uint64_t g_next_epoch = 1;
}  // namespace

Orchestrator::Orchestrator(sim::Kernel& kernel, std::string network_name)
    : kernel_(kernel), network_name_(std::move(network_name)) {
  // Every deployment watches its control transports out of the box (0.25 s
  // SRTT baseline covers fiber and LTE backhaul; core::Network re-installs
  // with its configured baseline for satellite-class paths).
  install_default_transport_rules(metricsd_, 0.25);
  // ... and its gateways' checkin freshness (statusd gauges).
  install_default_health_rules(metricsd_);
  // A store blob that stops deserializing silently shrinks the config
  // pushed to every gateway; any growth of the decode-error gauge pages.
  metricsd_.add_alert_rule(AlertRule{"orchestrator_store_decode_errors_growth",
                                     "orchestrator_store_decode_errors", 0.0,
                                     true, AlertKind::kDelta});
  // Southbound ingest sheds are loss-tolerant by design, but sustained
  // growth means the fleet outgrew the ingest bounds.
  metricsd_.add_alert_rule(AlertRule{"orc8r_ingest_shed_growth",
                                     "orc8r_ingest_shed", 0.0, true,
                                     AlertKind::kDelta});
  svc_streamer_ = &status_.register_service("streamer");
  svc_bootstrapper_ = &status_.register_service("bootstrapper");
  svc_state_ = &status_.register_service("state");
  svc_metricsd_ = &status_.register_service("metricsd");
  svc_eventd_ = &status_.register_service("eventd");
  svc_statusd_ = &status_.register_service("statusd");

  // Epoch: strictly greater than both the store's previous incarnation and
  // every other incarnation this process has seen.
  std::uint64_t stored_epoch = 0;
  if (const auto raw = store_.get("meta/epoch")) {
    rpc::Reader r(*raw);
    const std::uint64_t e = r.u64();
    if (r.ok()) stored_epoch = e;
  }
  epoch_ = std::max(stored_epoch + 1, g_next_epoch);
  g_next_epoch = epoch_ + 1;
  rpc::Writer w;
  w.u64(epoch_);
  store_.put("meta/epoch", std::move(w).take());
}

std::vector<obs::Event> Orchestrator::events_of_type(
    const std::string& type) const {
  std::vector<obs::Event> out;
  for (const obs::Event& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void Orchestrator::set_event_retention(std::size_t max_events) {
  event_retention_ = max_events;
  while (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

void Orchestrator::set_tracer(obs::Tracer* tracer, std::string node_label) {
  tracer_ = tracer;
  node_label_ = std::move(node_label);
}

// ---------------------------------------------------------------------------
// Northbound API
// ---------------------------------------------------------------------------

void Orchestrator::add_subscriber(const agw::SubscriberData& subscriber) {
  common::Bytes blob = subscriber.serialize();
  store_.put(subscriber_key(subscriber.imsi), blob);
  record_delta(DeltaEntry{DeltaEntry::Kind::kSubscriber, false,
                          subscriber.imsi.value, std::move(blob)});
}

void Orchestrator::remove_subscriber(const common::Imsi& imsi) {
  const std::uint64_t before = store_.version();
  store_.erase(subscriber_key(imsi));
  if (store_.version() != before) {
    record_delta(
        DeltaEntry{DeltaEntry::Kind::kSubscriber, true, imsi.value, {}});
  }
}

std::optional<agw::SubscriberData> Orchestrator::get_subscriber(
    const common::Imsi& imsi) const {
  const auto raw = store_.get(subscriber_key(imsi));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = agw::SubscriberData::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

std::size_t Orchestrator::subscriber_count() const {
  return store_.scan("sub/").size();
}

void Orchestrator::add_policy(const core::Policy& policy) {
  common::Bytes blob = policy.serialize();
  store_.put(policy_key(policy.name), blob);
  record_delta(DeltaEntry{DeltaEntry::Kind::kPolicy, false, policy.name,
                          std::move(blob)});
}

void Orchestrator::remove_policy(const std::string& name) {
  const std::uint64_t before = store_.version();
  store_.erase(policy_key(name));
  if (store_.version() != before) {
    record_delta(DeltaEntry{DeltaEntry::Kind::kPolicy, true, name, {}});
  }
}

std::optional<core::Policy> Orchestrator::get_policy(
    const std::string& name) const {
  const auto raw = store_.get(policy_key(name));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = core::Policy::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

void Orchestrator::register_gateway(const std::string& gateway_id,
                                    const std::string& description) {
  auto& record = gateways_[gateway_id];
  record.id = gateway_id;
  record.description = description;
}

std::optional<GatewayRecord> Orchestrator::gateway(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end()) return std::nullopt;
  return it->second;
}

std::vector<GatewayRecord> Orchestrator::gateways() const {
  std::vector<GatewayRecord> out;
  out.reserve(gateways_.size());
  for (const auto& [_, record] : gateways_) out.push_back(record);
  return out;
}

std::optional<common::Bytes> Orchestrator::stored_checkpoint(
    const std::string& gateway_id) const {
  auto it = checkpoints_.find(gateway_id);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Streamer: full state, blob cache, delta log
// ---------------------------------------------------------------------------

void Orchestrator::record_delta(DeltaEntry entry) {
  delta_log_.push_back(DeltaRecord{store_.version(), std::move(entry)});
  while (delta_log_.size() > delta_log_cap_) delta_log_.pop_front();
}

void Orchestrator::set_delta_log_cap(std::size_t cap) {
  delta_log_cap_ = cap;
  while (delta_log_.size() > delta_log_cap_) delta_log_.pop_front();
}

void Orchestrator::note_store_decode_error(const std::string& key,
                                           const std::string& what) {
  ++stats_.store_decode_errors;
  MLOG_WARN("orchestrator")
      << "store blob failed to decode, dropped from desired state: " << key
      << " (" << what << ")";
  metricsd_.ingest(MetricSample{
      node_label_, "orchestrator_store_decode_errors",
      static_cast<double>(stats_.store_decode_errors), kernel_.now()});
  obs::Event event;
  event.time = kernel_.now();
  event.gateway_id = node_label_;
  event.type = "store_decode_error";
  event.source = "streamer";
  event.message = key + ": " + what;
  event.severity = obs::EventSeverity::kWarn;
  events_.push_back(std::move(event));
  if (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

DesiredState Orchestrator::build_full_state() {
  DesiredState state;
  state.version = store_.version();
  state.changed = true;
  for (const auto& [key, value] : store_.scan("sub/")) {
    auto sub = agw::SubscriberData::deserialize(value);
    if (sub.ok()) {
      state.subscribers.push_back(std::move(sub).take());
    } else {
      note_store_decode_error(key, sub.error().message);
    }
  }
  for (const auto& [key, value] : store_.scan("policy/")) {
    auto policy = core::Policy::deserialize(value);
    if (policy.ok()) {
      state.policies.push_back(std::move(policy).take());
    } else {
      note_store_decode_error(key, policy.error().message);
    }
  }
  return state;
}

const common::Bytes& Orchestrator::full_state_blob() {
  MAGMA_HOST_SCOPE("streamer", "serialize_full");
  if (!cached_full_valid_ || cached_full_version_ != store_.version()) {
    const DesiredState state = build_full_state();
    cached_full_ = state.serialize();
    cached_full_version_ = state.version;
    cached_full_valid_ = true;
    ++stats_.full_serializations;
  } else {
    ++stats_.full_cache_hits;
  }
  return cached_full_;
}

DesiredState Orchestrator::desired_state(std::uint64_t have_version) {
  if (have_version == store_.version()) {
    DesiredState state;
    state.version = store_.version();
    state.changed = false;
    return state;
  }
  return build_full_state();
}

DesiredUpdate Orchestrator::desired_update(const GetUpdatesRequest& request) {
  MAGMA_HOST_SCOPE("streamer", "desired_update");
  DesiredUpdate u;
  u.version = store_.version();
  u.epoch = epoch_;

  const auto full = [this, &u]() {
    u.mode = SyncMode::kFull;
    u.full = full_state_blob();
    ++stats_.full_pushes;
  };

  if (request.have_epoch != epoch_) {
    // First contact (have_epoch 0) or another incarnation's state: only the
    // idempotent full sync is safe.
    if (request.have_epoch != 0) ++stats_.epoch_resyncs;
    full();
    return u;
  }
  if (request.have_version == u.version) {
    u.mode = SyncMode::kNoop;
    return u;
  }
  if (request.have_version > u.version) {
    // Same epoch but the gateway is ahead of the store — it synced against
    // state this store no longer holds (a recovered backup, a store
    // restored from an older image). Full sync walks it back explicitly.
    ++stats_.version_regressions;
    full();
    return u;
  }

  // Behind by (have_version, version]. Serve a delta only if the log holds
  // a record for *every* version bump in the range — direct store writes
  // bypass the log and must surface as a coverage gap, not a wrong delta.
  const std::uint64_t need = u.version - request.have_version;
  std::uint64_t covered = 0;
  for (auto it = delta_log_.rbegin();
       it != delta_log_.rend() && it->version > request.have_version; ++it) {
    ++covered;
  }
  if (covered != need) {
    ++stats_.delta_log_misses;
    full();
    return u;
  }

  // Coalesce the range: last mutation per (kind, key) wins, emitted in
  // deterministic (kind, key) order. An add+remove pair still emits the
  // remove — the gateway may hold the earlier add.
  std::map<std::pair<int, std::string>, const DeltaEntry*> coalesced;
  for (auto it = delta_log_.end() - static_cast<std::ptrdiff_t>(covered);
       it != delta_log_.end(); ++it) {
    coalesced[{static_cast<int>(it->entry.kind), it->entry.key}] = &it->entry;
  }
  u.mode = SyncMode::kDelta;
  u.entries.reserve(coalesced.size());
  for (const auto& [_, entry] : coalesced) u.entries.push_back(*entry);
  ++stats_.delta_pushes;
  stats_.delta_entries_sent += u.entries.size();
  stats_.deltas_coalesced += covered - u.entries.size();
  return u;
}

std::uint64_t Orchestrator::assigned_keep_per_op() const {
  if (fleet_trace_budget_ == 0) return 0;
  const std::uint64_t fleet =
      std::max<std::uint64_t>(1, gateways_.size());
  return std::max<std::uint64_t>(1, fleet_trace_budget_ / fleet);
}

void Orchestrator::note_ingest_shed(IngestKind kind) {
  (void)kind;  // per-kind breakdown lives in IngestShards' stats
  ++stats_.ingest_sheds;
  metricsd_.ingest(MetricSample{node_label_, "orc8r_ingest_shed",
                                static_cast<double>(stats_.ingest_sheds),
                                kernel_.now()});
}

// ---------------------------------------------------------------------------
// Southbound RPC surface
// ---------------------------------------------------------------------------

void Orchestrator::bind(rpc::RpcNode& node) {
  node.register_method(
      kStreamerService, kGetUpdates,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_streamer_);
        auto req = GetUpdatesRequest::deserialize(request);
        if (!req.ok()) {
          obs::svc_error(svc_streamer_, req.error().message);
          respond(rpc::Error{req.error()});
          return;
        }
        const DesiredUpdate update = desired_update(req.value());
        if (update.mode == SyncMode::kNoop) {
          ++stats_.noop_polls;
        } else {
          ++stats_.config_pushes;
        }
        respond(update.serialize());
      });

  node.register_method(
      kBootstrapperService, kCheckin,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        MAGMA_HOST_SCOPE("orc8r", "checkin");
        obs::svc_request(svc_bootstrapper_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        const std::string description = r.str();
        const common::Bytes status_blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_bootstrapper_, "bad checkin");
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkin"});
          return;
        }
        auto services = obs::decode_gateway_status(status_blob);
        if (!services.ok()) {
          obs::svc_error(svc_bootstrapper_, services.error().message);
          respond(rpc::Error{services.error()});
          return;
        }
        // Inventory bookkeeping stays inline (cheap, and the response's
        // tail budget needs the fleet size); the statusd apply — health FSM
        // plus per-service snapshot storage — rides the ingest shards.
        auto& record = gateways_[gateway_id];
        record.id = gateway_id;
        if (record.description.empty()) record.description = description;
        record.last_checkin = kernel_.now();
        ++record.checkin_count;
        ++stats_.checkins;
        obs::svc_request(svc_statusd_);
        if (!ingest_.submit(
                gateway_id, IngestKind::kCheckin,
                [this, gateway_id,
                 snapshot = std::move(services).take()]() mutable {
                  statusd_.record_checkin(gateway_id, std::move(snapshot));
                })) {
          note_ingest_shed(IngestKind::kCheckin);
        }
        rpc::Writer w;
        w.boolean(true);
        // Fleet-wide tail-sampling budget: this gateway's keep-per-op K
        // (0: unmanaged, keep the local config).
        w.u64(assigned_keep_per_op());
        respond(std::move(w).take());
      });

  node.register_method(
      kStateService, kReportCheckpoint,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_state_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        common::Bytes blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_state_, "bad checkpoint");
          respond(
              rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkpoint"});
          return;
        }
        checkpoints_[gateway_id] = std::move(blob);
        ++stats_.checkpoints_stored;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportMetrics,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto samples = decode_metric_report(request);
        if (!samples.ok()) {
          obs::svc_error(svc_metricsd_, samples.error().message);
          respond(rpc::Error{samples.error()});
          return;
        }
        ++stats_.metric_reports;
        std::vector<MetricSample> batch = std::move(samples).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kMetrics,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest(batch);
                            })) {
          note_ingest_shed(IngestKind::kMetrics);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportHistograms,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto snapshots = decode_histogram_report(request);
        if (!snapshots.ok()) {
          obs::svc_error(svc_metricsd_, snapshots.error().message);
          respond(rpc::Error{snapshots.error()});
          return;
        }
        ++stats_.histogram_reports;
        std::vector<HistogramSnapshot> batch = std::move(snapshots).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kHistograms,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest_histograms(batch);
                            })) {
          note_ingest_shed(IngestKind::kHistograms);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportTraceSummaries,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto summaries = obs::decode_trace_summaries(request);
        if (!summaries.ok()) {
          obs::svc_error(svc_metricsd_, summaries.error().message);
          respond(rpc::Error{summaries.error()});
          return;
        }
        ++stats_.trace_summary_reports;
        std::vector<obs::TraceSummary> batch = std::move(summaries).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kTraceSummaries,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest_trace_summaries(batch);
                            })) {
          note_ingest_shed(IngestKind::kTraceSummaries);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kEventService, kLogEvents,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_eventd_);
        auto events = obs::decode_event_report(request);
        if (!events.ok()) {
          obs::svc_error(svc_eventd_, events.error().message);
          respond(rpc::Error{events.error()});
          return;
        }
        for (obs::Event& e : events.value()) {
          if (tracer_ != nullptr && e.trace.valid()) {
            // Anchor the ingest into the event's originating trace — this
            // is the orc8r-side leaf of an attach's span tree.
            const obs::TraceContext span = tracer_->begin(
                "ingest_event", "eventd", node_label_,
                obs::SpanKind::kInternal, e.trace);
            tracer_->tag(span, "type", e.type);
            tracer_->tag(span, "gateway", e.gateway_id);
            tracer_->end(span);
          }
          events_.push_back(std::move(e));
          ++stats_.events_ingested;
          if (events_.size() > event_retention_) {
            events_.pop_front();
            ++stats_.events_dropped;
          }
        }
        ++stats_.event_reports;
        respond(rpc::Bytes{});
      });
}

}  // namespace magma::orc8r
