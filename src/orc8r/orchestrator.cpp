#include "orc8r/orchestrator.h"

#include "common/log.h"
#include "rpc/wire.h"

namespace magma::orc8r {

Orchestrator::Orchestrator(sim::Kernel& kernel, std::string network_name)
    : kernel_(kernel), network_name_(std::move(network_name)) {
  // Every deployment watches its control transports out of the box (0.25 s
  // SRTT baseline covers fiber and LTE backhaul; core::Network re-installs
  // with its configured baseline for satellite-class paths).
  install_default_transport_rules(metricsd_, 0.25);
  // ... and its gateways' checkin freshness (statusd gauges).
  install_default_health_rules(metricsd_);
  svc_streamer_ = &status_.register_service("streamer");
  svc_bootstrapper_ = &status_.register_service("bootstrapper");
  svc_state_ = &status_.register_service("state");
  svc_metricsd_ = &status_.register_service("metricsd");
  svc_eventd_ = &status_.register_service("eventd");
  svc_statusd_ = &status_.register_service("statusd");
}

std::vector<obs::Event> Orchestrator::events_of_type(
    const std::string& type) const {
  std::vector<obs::Event> out;
  for (const obs::Event& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void Orchestrator::set_event_retention(std::size_t max_events) {
  event_retention_ = max_events;
  while (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

void Orchestrator::set_tracer(obs::Tracer* tracer, std::string node_label) {
  tracer_ = tracer;
  node_label_ = std::move(node_label);
}

// ---------------------------------------------------------------------------
// Northbound API
// ---------------------------------------------------------------------------

void Orchestrator::add_subscriber(const agw::SubscriberData& subscriber) {
  store_.put(subscriber_key(subscriber.imsi), subscriber.serialize());
}

void Orchestrator::remove_subscriber(const common::Imsi& imsi) {
  store_.erase(subscriber_key(imsi));
}

std::optional<agw::SubscriberData> Orchestrator::get_subscriber(
    const common::Imsi& imsi) const {
  const auto raw = store_.get(subscriber_key(imsi));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = agw::SubscriberData::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

std::size_t Orchestrator::subscriber_count() const {
  return store_.scan("sub/").size();
}

void Orchestrator::add_policy(const core::Policy& policy) {
  store_.put(policy_key(policy.name), policy.serialize());
}

void Orchestrator::remove_policy(const std::string& name) {
  store_.erase(policy_key(name));
}

std::optional<core::Policy> Orchestrator::get_policy(
    const std::string& name) const {
  const auto raw = store_.get(policy_key(name));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = core::Policy::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

void Orchestrator::register_gateway(const std::string& gateway_id,
                                    const std::string& description) {
  auto& record = gateways_[gateway_id];
  record.id = gateway_id;
  record.description = description;
}

std::optional<GatewayRecord> Orchestrator::gateway(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end()) return std::nullopt;
  return it->second;
}

std::vector<GatewayRecord> Orchestrator::gateways() const {
  std::vector<GatewayRecord> out;
  out.reserve(gateways_.size());
  for (const auto& [_, record] : gateways_) out.push_back(record);
  return out;
}

std::optional<common::Bytes> Orchestrator::stored_checkpoint(
    const std::string& gateway_id) const {
  auto it = checkpoints_.find(gateway_id);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

DesiredState Orchestrator::desired_state(std::uint64_t have_version) const {
  DesiredState state;
  state.version = store_.version();
  if (have_version == state.version) {
    state.changed = false;
    return state;
  }
  state.changed = true;
  for (const auto& [key, value] : store_.scan("sub/")) {
    auto sub = agw::SubscriberData::deserialize(value);
    if (sub.ok()) state.subscribers.push_back(std::move(sub).take());
  }
  for (const auto& [key, value] : store_.scan("policy/")) {
    auto policy = core::Policy::deserialize(value);
    if (policy.ok()) state.policies.push_back(std::move(policy).take());
  }
  return state;
}

// ---------------------------------------------------------------------------
// Southbound RPC surface
// ---------------------------------------------------------------------------

void Orchestrator::bind(rpc::RpcNode& node) {
  node.register_method(
      kStreamerService, kGetUpdates,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_streamer_);
        auto req = GetUpdatesRequest::deserialize(request);
        if (!req.ok()) {
          obs::svc_error(svc_streamer_, req.error().message);
          respond(rpc::Error{req.error()});
          return;
        }
        const DesiredState state = desired_state(req.value().have_version);
        if (state.changed) {
          ++stats_.config_pushes;
        } else {
          ++stats_.noop_polls;
        }
        respond(state.serialize());
      });

  node.register_method(
      kBootstrapperService, kCheckin,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_bootstrapper_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        const std::string description = r.str();
        const common::Bytes status_blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_bootstrapper_, "bad checkin");
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkin"});
          return;
        }
        auto services = obs::decode_gateway_status(status_blob);
        if (!services.ok()) {
          obs::svc_error(svc_bootstrapper_, services.error().message);
          respond(rpc::Error{services.error()});
          return;
        }
        auto& record = gateways_[gateway_id];
        record.id = gateway_id;
        if (record.description.empty()) record.description = description;
        record.last_checkin = kernel_.now();
        ++record.checkin_count;
        ++stats_.checkins;
        obs::svc_request(svc_statusd_);
        statusd_.record_checkin(gateway_id, std::move(services).take());
        rpc::Writer w;
        w.boolean(true);
        respond(std::move(w).take());
      });

  node.register_method(
      kStateService, kReportCheckpoint,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_state_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        common::Bytes blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_state_, "bad checkpoint");
          respond(
              rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkpoint"});
          return;
        }
        checkpoints_[gateway_id] = std::move(blob);
        ++stats_.checkpoints_stored;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportMetrics,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto samples = decode_metric_report(request);
        if (!samples.ok()) {
          obs::svc_error(svc_metricsd_, samples.error().message);
          respond(rpc::Error{samples.error()});
          return;
        }
        metricsd_.ingest(samples.value());
        ++stats_.metric_reports;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportHistograms,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto snapshots = decode_histogram_report(request);
        if (!snapshots.ok()) {
          obs::svc_error(svc_metricsd_, snapshots.error().message);
          respond(rpc::Error{snapshots.error()});
          return;
        }
        metricsd_.ingest_histograms(snapshots.value());
        ++stats_.histogram_reports;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportTraceSummaries,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto summaries = obs::decode_trace_summaries(request);
        if (!summaries.ok()) {
          obs::svc_error(svc_metricsd_, summaries.error().message);
          respond(rpc::Error{summaries.error()});
          return;
        }
        metricsd_.ingest_trace_summaries(summaries.value());
        ++stats_.trace_summary_reports;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kEventService, kLogEvents,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_eventd_);
        auto events = obs::decode_event_report(request);
        if (!events.ok()) {
          obs::svc_error(svc_eventd_, events.error().message);
          respond(rpc::Error{events.error()});
          return;
        }
        for (obs::Event& e : events.value()) {
          if (tracer_ != nullptr && e.trace.valid()) {
            // Anchor the ingest into the event's originating trace — this
            // is the orc8r-side leaf of an attach's span tree.
            const obs::TraceContext span = tracer_->begin(
                "ingest_event", "eventd", node_label_,
                obs::SpanKind::kInternal, e.trace);
            tracer_->tag(span, "type", e.type);
            tracer_->tag(span, "gateway", e.gateway_id);
            tracer_->end(span);
          }
          events_.push_back(std::move(e));
          ++stats_.events_ingested;
          if (events_.size() > event_retention_) {
            events_.pop_front();
            ++stats_.events_dropped;
          }
        }
        ++stats_.event_reports;
        respond(rpc::Bytes{});
      });
}

}  // namespace magma::orc8r
