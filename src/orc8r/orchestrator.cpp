#include "orc8r/orchestrator.h"

#include "obs/host_profiler.h"

#include <algorithm>

#include "common/log.h"
#include "obs/slo/attribution.h"
#include "rpc/wire.h"

namespace magma::orc8r {

namespace {
// Process-wide incarnation counter. The sim has no wall clock or boot id,
// so this is what guarantees two orchestrator incarnations never share an
// epoch — including a restart over a *fresh* store, where the persisted
// "meta/epoch" alone would restart the sequence and let a gateway splice
// new-incarnation deltas onto old-incarnation state.
std::uint64_t g_next_epoch = 1;
}  // namespace

Orchestrator::Orchestrator(sim::Kernel& kernel, std::string network_name)
    : kernel_(kernel), network_name_(std::move(network_name)) {
  // Every deployment watches its control transports out of the box (0.25 s
  // SRTT baseline covers fiber and LTE backhaul; core::Network re-installs
  // with its configured baseline for satellite-class paths).
  install_default_transport_rules(metricsd_, 0.25);
  // ... and its gateways' checkin freshness (statusd gauges).
  install_default_health_rules(metricsd_);
  // A store blob that stops deserializing silently shrinks the config
  // pushed to every gateway; any growth of the decode-error gauge pages.
  metricsd_.add_alert_rule(AlertRule{"orchestrator_store_decode_errors_growth",
                                     "orchestrator_store_decode_errors", 0.0,
                                     true, AlertKind::kDelta});
  // Southbound ingest sheds are loss-tolerant by design, but sustained
  // growth means the fleet outgrew the ingest bounds.
  metricsd_.add_alert_rule(AlertRule{"orc8r_ingest_shed_growth",
                                     "orc8r_ingest_shed", 0.0, true,
                                     AlertKind::kDelta});
  // SRE-style multi-window burn-rate alerting over the extracted SLIs.
  install_default_slo_rules(metricsd_);
  install_default_metricsd_rules(metricsd_);
  // Host-observability guards: the sim kernel and the payload pools fall
  // back to the heap when their inline/pooled capacity is exceeded — both
  // are perf regressions the fleet should page on, not discover in a bench.
  metricsd_.add_alert_rule(AlertRule{"sim_closure_heap_fallbacks_growth",
                                     "sim_closure_heap_fallbacks", 0.0, true,
                                     AlertKind::kDelta});
  metricsd_.add_alert_rule(AlertRule{"pool_heap_fallbacks_growth",
                                     "pool_heap_fallbacks", 0.0, true,
                                     AlertKind::kDelta});
  // Default SLOs over the signals that already flow (see slos() docs).
  {
    obs::slo::SloSpec availability;
    availability.name = "availability";
    availability.sli_metric = "sli_gateway_up";
    availability.objective = 0.999;
    slos_.push_back(std::move(availability));
    obs::slo::SloSpec attach_success;
    attach_success.name = "attach_success";
    attach_success.sli_metric = "sli_attach_success_rate";
    attach_success.objective = 0.99;
    slos_.push_back(std::move(attach_success));
    obs::slo::SloSpec attach_p95;
    attach_p95.name = "attach_p95";
    attach_p95.sli_metric = "sli_attach_p95_ok";
    attach_p95.objective = 0.95;
    attach_p95.source_histogram = "span_lte_frontend_attach_s";
    attach_p95.quantile = 0.95;
    attach_p95.target = 0.5;  // p95 attach under 500 ms
    slos_.push_back(std::move(attach_p95));
    obs::slo::SloSpec config_sync;
    config_sync.name = "config_sync_freshness";
    config_sync.sli_metric = "sli_config_sync_fresh";
    config_sync.objective = 0.95;
    slos_.push_back(std::move(config_sync));
  }
  // Downtime attribution rides the ledger edges statusd's health FSM drives.
  statusd_.set_downtime_hooks(
      [this](const std::string& gw, sim::TimePoint start) {
        on_downtime_open(gw, start);
      },
      [this](const std::string& gw,
             const obs::slo::DowntimeInterval& interval) {
        on_downtime_close(gw, interval);
      });
  svc_streamer_ = &status_.register_service("streamer");
  svc_bootstrapper_ = &status_.register_service("bootstrapper");
  svc_state_ = &status_.register_service("state");
  svc_metricsd_ = &status_.register_service("metricsd");
  svc_eventd_ = &status_.register_service("eventd");
  svc_statusd_ = &status_.register_service("statusd");

  // Epoch: strictly greater than both the store's previous incarnation and
  // every other incarnation this process has seen.
  std::uint64_t stored_epoch = 0;
  if (const auto raw = store_.get("meta/epoch")) {
    rpc::Reader r(*raw);
    const std::uint64_t e = r.u64();
    if (r.ok()) stored_epoch = e;
  }
  epoch_ = std::max(stored_epoch + 1, g_next_epoch);
  g_next_epoch = epoch_ + 1;
  rpc::Writer w;
  w.u64(epoch_);
  store_.put("meta/epoch", std::move(w).take());
}

std::vector<obs::Event> Orchestrator::events_of_type(
    const std::string& type) const {
  std::vector<obs::Event> out;
  for (const obs::Event& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void Orchestrator::set_event_retention(std::size_t max_events) {
  event_retention_ = max_events;
  while (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

void Orchestrator::set_tracer(obs::Tracer* tracer, std::string node_label) {
  tracer_ = tracer;
  node_label_ = std::move(node_label);
}

// ---------------------------------------------------------------------------
// Northbound API
// ---------------------------------------------------------------------------

void Orchestrator::add_subscriber(const agw::SubscriberData& subscriber) {
  common::Bytes blob = subscriber.serialize();
  store_.put(subscriber_key(subscriber.imsi), blob);
  record_delta(DeltaEntry{DeltaEntry::Kind::kSubscriber, false,
                          subscriber.imsi.value, std::move(blob)});
}

void Orchestrator::remove_subscriber(const common::Imsi& imsi) {
  const std::uint64_t before = store_.version();
  store_.erase(subscriber_key(imsi));
  if (store_.version() != before) {
    record_delta(
        DeltaEntry{DeltaEntry::Kind::kSubscriber, true, imsi.value, {}});
  }
}

std::optional<agw::SubscriberData> Orchestrator::get_subscriber(
    const common::Imsi& imsi) const {
  const auto raw = store_.get(subscriber_key(imsi));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = agw::SubscriberData::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

std::size_t Orchestrator::subscriber_count() const {
  return store_.scan("sub/").size();
}

void Orchestrator::add_policy(const core::Policy& policy) {
  common::Bytes blob = policy.serialize();
  store_.put(policy_key(policy.name), blob);
  record_delta(DeltaEntry{DeltaEntry::Kind::kPolicy, false, policy.name,
                          std::move(blob)});
}

void Orchestrator::remove_policy(const std::string& name) {
  const std::uint64_t before = store_.version();
  store_.erase(policy_key(name));
  if (store_.version() != before) {
    record_delta(DeltaEntry{DeltaEntry::Kind::kPolicy, true, name, {}});
  }
}

std::optional<core::Policy> Orchestrator::get_policy(
    const std::string& name) const {
  const auto raw = store_.get(policy_key(name));
  if (!raw.has_value()) return std::nullopt;
  auto parsed = core::Policy::deserialize(*raw);
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).take();
}

void Orchestrator::register_gateway(const std::string& gateway_id,
                                    const std::string& description) {
  auto& record = gateways_[gateway_id];
  record.id = gateway_id;
  record.description = description;
}

std::optional<GatewayRecord> Orchestrator::gateway(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end()) return std::nullopt;
  return it->second;
}

std::vector<GatewayRecord> Orchestrator::gateways() const {
  std::vector<GatewayRecord> out;
  out.reserve(gateways_.size());
  for (const auto& [_, record] : gateways_) out.push_back(record);
  return out;
}

std::optional<common::Bytes> Orchestrator::stored_checkpoint(
    const std::string& gateway_id) const {
  auto it = checkpoints_.find(gateway_id);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Streamer: full state, blob cache, delta log
// ---------------------------------------------------------------------------

void Orchestrator::record_delta(DeltaEntry entry) {
  delta_log_.push_back(DeltaRecord{store_.version(), std::move(entry)});
  while (delta_log_.size() > delta_log_cap_) delta_log_.pop_front();
}

void Orchestrator::set_delta_log_cap(std::size_t cap) {
  delta_log_cap_ = cap;
  while (delta_log_.size() > delta_log_cap_) delta_log_.pop_front();
}

void Orchestrator::note_store_decode_error(const std::string& key,
                                           const std::string& what) {
  ++stats_.store_decode_errors;
  MLOG_WARN("orchestrator")
      << "store blob failed to decode, dropped from desired state: " << key
      << " (" << what << ")";
  metricsd_.ingest(MetricSample{
      node_label_, "orchestrator_store_decode_errors",
      static_cast<double>(stats_.store_decode_errors), kernel_.now()});
  obs::Event event;
  event.time = kernel_.now();
  event.gateway_id = node_label_;
  event.type = "store_decode_error";
  event.source = "streamer";
  event.message = key + ": " + what;
  event.severity = obs::EventSeverity::kWarn;
  events_.push_back(std::move(event));
  if (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

DesiredState Orchestrator::build_full_state() {
  DesiredState state;
  state.version = store_.version();
  state.changed = true;
  for (const auto& [key, value] : store_.scan("sub/")) {
    auto sub = agw::SubscriberData::deserialize(value);
    if (sub.ok()) {
      state.subscribers.push_back(std::move(sub).take());
    } else {
      note_store_decode_error(key, sub.error().message);
    }
  }
  for (const auto& [key, value] : store_.scan("policy/")) {
    auto policy = core::Policy::deserialize(value);
    if (policy.ok()) {
      state.policies.push_back(std::move(policy).take());
    } else {
      note_store_decode_error(key, policy.error().message);
    }
  }
  return state;
}

const common::Bytes& Orchestrator::full_state_blob() {
  MAGMA_HOST_SCOPE("streamer", "serialize_full");
  if (!cached_full_valid_ || cached_full_version_ != store_.version()) {
    const DesiredState state = build_full_state();
    cached_full_ = state.serialize();
    cached_full_version_ = state.version;
    cached_full_valid_ = true;
    ++stats_.full_serializations;
  } else {
    ++stats_.full_cache_hits;
  }
  return cached_full_;
}

DesiredState Orchestrator::desired_state(std::uint64_t have_version) {
  if (have_version == store_.version()) {
    DesiredState state;
    state.version = store_.version();
    state.changed = false;
    return state;
  }
  return build_full_state();
}

DesiredUpdate Orchestrator::desired_update(const GetUpdatesRequest& request) {
  MAGMA_HOST_SCOPE("streamer", "desired_update");
  DesiredUpdate u;
  u.version = store_.version();
  u.epoch = epoch_;

  const auto full = [this, &u]() {
    u.mode = SyncMode::kFull;
    u.full = full_state_blob();
    ++stats_.full_pushes;
  };

  if (request.have_epoch != epoch_) {
    // First contact (have_epoch 0) or another incarnation's state: only the
    // idempotent full sync is safe.
    if (request.have_epoch != 0) ++stats_.epoch_resyncs;
    full();
    return u;
  }
  if (request.have_version == u.version) {
    u.mode = SyncMode::kNoop;
    return u;
  }
  if (request.have_version > u.version) {
    // Same epoch but the gateway is ahead of the store — it synced against
    // state this store no longer holds (a recovered backup, a store
    // restored from an older image). Full sync walks it back explicitly.
    ++stats_.version_regressions;
    full();
    return u;
  }

  // Behind by (have_version, version]. Serve a delta only if the log holds
  // a record for *every* version bump in the range — direct store writes
  // bypass the log and must surface as a coverage gap, not a wrong delta.
  const std::uint64_t need = u.version - request.have_version;
  std::uint64_t covered = 0;
  for (auto it = delta_log_.rbegin();
       it != delta_log_.rend() && it->version > request.have_version; ++it) {
    ++covered;
  }
  if (covered != need) {
    ++stats_.delta_log_misses;
    full();
    return u;
  }

  // Coalesce the range: last mutation per (kind, key) wins, emitted in
  // deterministic (kind, key) order. An add+remove pair still emits the
  // remove — the gateway may hold the earlier add.
  std::map<std::pair<int, std::string>, const DeltaEntry*> coalesced;
  for (auto it = delta_log_.end() - static_cast<std::ptrdiff_t>(covered);
       it != delta_log_.end(); ++it) {
    coalesced[{static_cast<int>(it->entry.kind), it->entry.key}] = &it->entry;
  }
  u.mode = SyncMode::kDelta;
  u.entries.reserve(coalesced.size());
  for (const auto& [_, entry] : coalesced) u.entries.push_back(*entry);
  ++stats_.delta_pushes;
  stats_.delta_entries_sent += u.entries.size();
  stats_.deltas_coalesced += covered - u.entries.size();
  return u;
}

std::uint64_t Orchestrator::assigned_keep_per_op() const {
  if (fleet_trace_budget_ == 0) return 0;
  const std::uint64_t fleet =
      std::max<std::uint64_t>(1, gateways_.size());
  return std::max<std::uint64_t>(1, fleet_trace_budget_ / fleet);
}

void Orchestrator::note_ingest_shed(IngestKind kind) {
  (void)kind;  // per-kind breakdown lives in IngestShards' stats
  ++stats_.ingest_sheds;
  metricsd_.ingest(MetricSample{node_label_, "orc8r_ingest_shed",
                                static_cast<double>(stats_.ingest_sheds),
                                kernel_.now()});
}

// ---------------------------------------------------------------------------
// Fleet SLO layer
// ---------------------------------------------------------------------------

void Orchestrator::add_slo(obs::slo::SloSpec spec) {
  std::erase_if(slos_, [&](const obs::slo::SloSpec& s) {
    return s.name == spec.name;
  });
  slos_.push_back(std::move(spec));
}

void Orchestrator::start_slo_tick(sim::Duration interval) {
  if (slo_tick_started_) return;
  slo_tick_started_ = true;
  slo_tick(interval);
}

void Orchestrator::slo_tick(sim::Duration interval) {
  kernel_.schedule(interval, [this, interval]() {
    slo_tick_now();
    slo_tick(interval);
  });
}

void Orchestrator::slo_tick_now() {
  ++stats_.slo_ticks;
  const sim::TimePoint now = kernel_.now();
  // Piggyback metricsd's self-observation (the per-kind samples-dropped
  // gauge) on the SLO cadence: the kDelta growth rule sees a fresh point
  // every tick.
  metricsd_.self_observe(now);
  for (const obs::slo::SloSpec& spec : slos_) {
    if (spec.source_histogram.empty()) continue;
    // Derived SLI: the fleet-merged quantile of a histogram that already
    // ships, folded to a 0/1 good sample against the spec's target.
    if (metricsd_.histogram_count(spec.source_histogram) == 0) continue;
    const double q =
        metricsd_.histogram_quantile(spec.source_histogram, spec.quantile);
    metricsd_.ingest(MetricSample{node_label_, spec.sli_metric,
                                  q <= spec.target ? 1.0 : 0.0, now});
  }
}

std::vector<obs::slo::SloStatus> Orchestrator::slo_report(
    sim::TimePoint from, sim::TimePoint to) const {
  std::vector<obs::slo::SloStatus> rows;
  rows.reserve(slos_.size());
  const std::vector<ActiveAlert> alerts = metricsd_.active_alerts();
  for (const obs::slo::SloSpec& spec : slos_) {
    obs::slo::SloStatus row;
    row.name = spec.name;
    row.objective = spec.objective;
    // No samples in the window means nothing went wrong where the SLI is
    // extracted (e.g. no attaches at all): report the budget untouched.
    row.sli =
        metricsd_.mean_in_window(spec.sli_metric, from, to).value_or(1.0);
    row.burn = obs::slo::burn_rate(row.sli, spec.objective);
    row.budget_consumed = obs::slo::budget_consumed(
        row.sli, spec.objective, to - from, spec.window);
    for (const ActiveAlert& alert : alerts) {
      for (const AlertRule& rule : metricsd_.alert_rules()) {
        if (rule.name == alert.rule && rule.metric == spec.sli_metric &&
            rule.kind == AlertKind::kBurnRate) {
          row.alerting = true;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void Orchestrator::on_downtime_open(const std::string& gateway_id,
                                    sim::TimePoint start) {
  (void)start;
  // Snapshot the fleet critical-path profile now; the close-side join
  // deltas against it to decide whether the outage window was
  // runq-dominated (the overload lens).
  double runq_s = 0;
  double total_s = 0;
  for (const LatencyAttributionRow& row : metricsd_.latency_attribution()) {
    runq_s += row.component_s[static_cast<std::size_t>(obs::WaitState::kRunq)];
    total_s += row.total_s;
  }
  open_runq_snapshots_[gateway_id] = {runq_s, total_s};
}

void Orchestrator::on_downtime_close(
    const std::string& gateway_id,
    const obs::slo::DowntimeInterval& interval) {
  // Wait out the settle delay so the recovered gateway's next metrics tick
  // (carrying the counters that grew mid-outage) and its buffered events
  // have landed before the join reads the evidence.
  kernel_.schedule(attribution_settle_,
                   [this, gw = gateway_id, iv = interval]() mutable {
                     attribute_interval(gw, std::move(iv));
                   });
}

void Orchestrator::attribute_interval(const std::string& gateway_id,
                                      obs::slo::DowntimeInterval interval) {
  const sim::TimePoint now = kernel_.now();
  // Counter growth across [just before the down edge, now]: cumulative
  // gauges make this robust to every mid-outage report being lost.
  auto growth = [&](const std::string& metric) -> double {
    const auto after = metricsd_.latest_at_or_before(gateway_id, metric, now);
    if (!after.has_value()) return 0;
    const auto before =
        metricsd_.latest_at_or_before(gateway_id, metric, interval.start);
    // A series that first appears mid-outage grew from zero.
    if (!before.has_value()) return std::max(0.0, *after);
    return std::max(0.0, *after - *before);
  };
  obs::slo::DowntimeSignals signals;
  signals.transport_resets_growth = growth("transport_resets");
  signals.rto_at_cap_growth = growth("transport_rto_at_cap");
  signals.link_drops_growth = growth("link_dropped_packets_ul") +
                              growth("link_dropped_packets_dl");
  // ERROR events near the interval. The down edge is backdated to the first
  // missed heartbeat, so a crash logged just before the heartbeats stopped
  // sits slightly before interval.start — scan back a couple of checkin
  // intervals.
  const sim::TimePoint event_floor =
      interval.start - 2 * statusd_.config().checkin_interval;
  for (const obs::Event& e : events_) {
    if (e.gateway_id != gateway_id || e.time < event_floor) continue;
    if (e.severity != obs::EventSeverity::kError) continue;
    signals.error_event = true;
    signals.error_source = e.source;
  }
  // Per-service error-counter growth (statusd pushes service_errors_<svc>
  // from the checkin snapshots).
  static constexpr const char kServiceErrorsPrefix[] = "service_errors_";
  for (const std::string& name : metricsd_.metric_names()) {
    if (name.rfind(kServiceErrorsPrefix, 0) != 0) continue;
    const double g = growth(name);
    if (g > signals.max_service_error_growth) {
      signals.max_service_error_growth = g;
      signals.error_service = name.substr(sizeof(kServiceErrorsPrefix) - 1);
    }
  }
  signals.overload_rejections_growth = growth("accessd_overload_rejections");
  if (auto it = open_runq_snapshots_.find(gateway_id);
      it != open_runq_snapshots_.end()) {
    double runq_s = 0;
    double total_s = 0;
    for (const LatencyAttributionRow& row : metricsd_.latency_attribution()) {
      runq_s +=
          row.component_s[static_cast<std::size_t>(obs::WaitState::kRunq)];
      total_s += row.total_s;
    }
    const double total_delta = total_s - it->second.second;
    if (total_delta > 0) {
      signals.runq_wait_fraction =
          std::max(0.0, (runq_s - it->second.first) / total_delta);
    }
    open_runq_snapshots_.erase(it);
  }

  std::string detail;
  const obs::slo::DowntimeCause cause =
      obs::slo::attribute_downtime(signals, &detail);
  statusd_.availability().label(gateway_id, interval.start, cause, detail);
  if (cause == obs::slo::DowntimeCause::kUnknown) {
    ++stats_.downtime_unattributed;
  } else {
    ++stats_.downtime_intervals_labeled;
  }
  // Leave the verdict where operators already look: the event stream.
  obs::Event event;
  event.time = now;
  event.gateway_id = gateway_id;
  event.type = "downtime_attributed";
  event.source = "statusd";
  event.message = std::string(obs::slo::downtime_cause_name(cause)) +
                  (detail.empty() ? "" : ": " + detail);
  event.severity = obs::EventSeverity::kWarn;
  events_.push_back(std::move(event));
  if (events_.size() > event_retention_) {
    events_.pop_front();
    ++stats_.events_dropped;
  }
}

// ---------------------------------------------------------------------------
// Southbound RPC surface
// ---------------------------------------------------------------------------

void Orchestrator::bind(rpc::RpcNode& node) {
  node.register_method(
      kStreamerService, kGetUpdates,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_streamer_);
        auto req = GetUpdatesRequest::deserialize(request);
        if (!req.ok()) {
          obs::svc_error(svc_streamer_, req.error().message);
          respond(rpc::Error{req.error()});
          return;
        }
        const DesiredUpdate update = desired_update(req.value());
        if (update.mode == SyncMode::kNoop) {
          ++stats_.noop_polls;
        } else {
          ++stats_.config_pushes;
        }
        // Config-sync freshness SLI: a poll answered "current" means this
        // gateway's config was fresh when it asked (first contact and
        // post-change catch-ups read as stale, which is exactly what the
        // freshness budget is spent on).
        if (!req.value().gateway_id.empty()) {
          metricsd_.ingest(MetricSample{
              req.value().gateway_id, "sli_config_sync_fresh",
              update.mode == SyncMode::kNoop ? 1.0 : 0.0, kernel_.now()});
        }
        respond(update.serialize());
      });

  node.register_method(
      kBootstrapperService, kCheckin,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        MAGMA_HOST_SCOPE("orc8r", "checkin");
        obs::svc_request(svc_bootstrapper_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        const std::string description = r.str();
        const common::Bytes status_blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_bootstrapper_, "bad checkin");
          respond(rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkin"});
          return;
        }
        auto services = obs::decode_gateway_status(status_blob);
        if (!services.ok()) {
          obs::svc_error(svc_bootstrapper_, services.error().message);
          respond(rpc::Error{services.error()});
          return;
        }
        // Inventory bookkeeping stays inline (cheap, and the response's
        // tail budget needs the fleet size); the statusd apply — health FSM
        // plus per-service snapshot storage — rides the ingest shards.
        auto& record = gateways_[gateway_id];
        record.id = gateway_id;
        if (record.description.empty()) record.description = description;
        record.last_checkin = kernel_.now();
        ++record.checkin_count;
        ++stats_.checkins;
        obs::svc_request(svc_statusd_);
        if (!ingest_.submit(
                gateway_id, IngestKind::kCheckin,
                [this, gateway_id,
                 snapshot = std::move(services).take()]() mutable {
                  statusd_.record_checkin(gateway_id, std::move(snapshot));
                })) {
          note_ingest_shed(IngestKind::kCheckin);
        }
        rpc::Writer w;
        w.boolean(true);
        // Fleet-wide tail-sampling budget: this gateway's keep-per-op K
        // (0: unmanaged, keep the local config).
        w.u64(assigned_keep_per_op());
        respond(std::move(w).take());
      });

  node.register_method(
      kStateService, kReportCheckpoint,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_state_);
        rpc::Reader r(request);
        const std::string gateway_id = r.str();
        common::Bytes blob = r.bytes();
        if (!r.ok()) {
          obs::svc_error(svc_state_, "bad checkpoint");
          respond(
              rpc::Error{rpc::ErrorCode::kInvalidArgument, "bad checkpoint"});
          return;
        }
        checkpoints_[gateway_id] = std::move(blob);
        ++stats_.checkpoints_stored;
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportMetrics,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto samples = decode_metric_report(request);
        if (!samples.ok()) {
          obs::svc_error(svc_metricsd_, samples.error().message);
          respond(rpc::Error{samples.error()});
          return;
        }
        ++stats_.metric_reports;
        std::vector<MetricSample> batch = std::move(samples).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kMetrics,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest(batch);
                            })) {
          note_ingest_shed(IngestKind::kMetrics);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportHistograms,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto snapshots = decode_histogram_report(request);
        if (!snapshots.ok()) {
          obs::svc_error(svc_metricsd_, snapshots.error().message);
          metricsd_.note_drop(Metricsd::DropKind::kHistogram);
          respond(rpc::Error{snapshots.error()});
          return;
        }
        ++stats_.histogram_reports;
        std::vector<HistogramSnapshot> batch = std::move(snapshots).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kHistograms,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest_histograms(batch);
                            })) {
          note_ingest_shed(IngestKind::kHistograms);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportTraceSummaries,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto summaries = obs::decode_trace_summaries(request);
        if (!summaries.ok()) {
          obs::svc_error(svc_metricsd_, summaries.error().message);
          metricsd_.note_drop(Metricsd::DropKind::kTraceSummary);
          respond(rpc::Error{summaries.error()});
          return;
        }
        ++stats_.trace_summary_reports;
        std::vector<obs::TraceSummary> batch = std::move(summaries).take();
        const std::string gateway_id =
            batch.empty() ? std::string{} : batch.front().gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kTraceSummaries,
                            [this, batch = std::move(batch)]() {
                              metricsd_.ingest_trace_summaries(batch);
                            })) {
          note_ingest_shed(IngestKind::kTraceSummaries);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kMetricsService, kReportSketches,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_metricsd_);
        auto report = obs::sketch::decode_sketch_report(request);
        if (!report.ok()) {
          obs::svc_error(svc_metricsd_, report.error().message);
          metricsd_.note_drop(Metricsd::DropKind::kSketch);
          respond(rpc::Error{report.error()});
          return;
        }
        ++stats_.sketch_reports;
        obs::sketch::SketchReport batch = std::move(report).take();
        const std::string gateway_id = batch.gateway_id;
        if (!ingest_.submit(gateway_id, IngestKind::kSketches,
                            [this, batch = std::move(batch)]() mutable {
                              metricsd_.ingest_sketch_report(std::move(batch));
                            })) {
          note_ingest_shed(IngestKind::kSketches);
        }
        respond(rpc::Bytes{});
      });

  node.register_method(
      kEventService, kLogEvents,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        obs::svc_request(svc_eventd_);
        auto events = obs::decode_event_report(request);
        if (!events.ok()) {
          obs::svc_error(svc_eventd_, events.error().message);
          respond(rpc::Error{events.error()});
          return;
        }
        // Attach-success SLI, extracted from the attach milestone events
        // already in the batch: per gateway, good / (good + bad).
        std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
            attach_outcomes;
        for (const obs::Event& e : events.value()) {
          if (e.type == "attach_success") {
            ++attach_outcomes[e.gateway_id].first;
          } else if (e.type == "attach_reject" || e.type == "attach_abort") {
            ++attach_outcomes[e.gateway_id].second;
          }
        }
        for (const auto& [gateway_id, outcomes] : attach_outcomes) {
          const double total =
              static_cast<double>(outcomes.first + outcomes.second);
          metricsd_.ingest(MetricSample{
              gateway_id, "sli_attach_success_rate",
              static_cast<double>(outcomes.first) / total, kernel_.now()});
        }
        for (obs::Event& e : events.value()) {
          if (tracer_ != nullptr && e.trace.valid()) {
            // Anchor the ingest into the event's originating trace — this
            // is the orc8r-side leaf of an attach's span tree.
            const obs::TraceContext span = tracer_->begin(
                "ingest_event", "eventd", node_label_,
                obs::SpanKind::kInternal, e.trace);
            tracer_->tag(span, "type", e.type);
            tracer_->tag(span, "gateway", e.gateway_id);
            tracer_->end(span);
          }
          events_.push_back(std::move(e));
          ++stats_.events_ingested;
          if (events_.size() > event_retention_) {
            events_.pop_front();
            ++stats_.events_dropped;
          }
        }
        ++stats_.event_reports;
        respond(rpc::Bytes{});
      });
}

}  // namespace magma::orc8r
