// Orchestrator — Magma's central point of control (§3.2).
//
// Holds authoritative configuration state in a durable WAL store (the
// paper's Postgres), exposes a northbound API for operators (subscriber and
// policy management, gateway inventory, metrics queries), and serves the
// southbound RPC surface AGWs poll: desired-state config sync, device
// check-in (device management, §3.1), best-effort metrics ingestion, and
// checkpoint backup storage (§3.3: an AGW's runtime state "may be copied to
// a backup instance ... running as a cloud service").
//
// Runtime UE state never lives here — that is the hierarchical control
// plane split: the orchestrator scales with configuration churn and
// gateway count, not with subscriber activity (§3.2, §4.3.2).
//
// Fleet scale (§3.4 at deployment size): the streamer caches the serialized
// full-state blob per store version (N gateways polling the same version
// cost one serialization) and serves version-ranged deltas from a bounded
// log of recent mutations, falling back to the idempotent full sync for
// first contact, epoch changes, regressions, and log gaps. Southbound
// report applies run behind IngestShards' per-gateway bounded queues.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <deque>

#include "agw/subscriberdb.h"
#include "common/result.h"
#include "core/policy.h"
#include "obs/events.h"
#include "obs/slo/slo.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "orc8r/ingest.h"
#include "orc8r/metricsd.h"
#include "orc8r/statusd.h"
#include "orc8r/streamer.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"
#include "store/wal_store.h"

namespace magma::orc8r {

struct GatewayRecord {
  std::string id;
  std::string description;
  sim::TimePoint last_checkin = -1;  // -1: never checked in
  std::uint64_t checkin_count = 0;
};

struct OrchestratorStats {
  std::uint64_t config_pushes = 0;      // GetUpdates answered with changes
  std::uint64_t noop_polls = 0;         // GetUpdates answered "current"
  std::uint64_t checkins = 0;
  std::uint64_t checkpoints_stored = 0;
  std::uint64_t metric_reports = 0;
  std::uint64_t histogram_reports = 0;
  std::uint64_t trace_summary_reports = 0;
  std::uint64_t sketch_reports = 0;
  std::uint64_t event_reports = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t events_dropped = 0;  // event store retention overflow
  // Streamer breakdown: config_pushes = full_pushes + delta_pushes.
  std::uint64_t full_pushes = 0;
  std::uint64_t delta_pushes = 0;
  // Full-state blob cache: serializations is the number of cache rebuilds
  // (at most one per store version *requested*), hits the pushes served
  // from it — the stat that proves one config change fans out to N
  // gateways without N serializations.
  std::uint64_t full_serializations = 0;
  std::uint64_t full_cache_hits = 0;
  std::uint64_t delta_entries_sent = 0;
  std::uint64_t deltas_coalesced = 0;  // log records folded away per push
  // Full-sync fallback causes (each also counts a full_push).
  std::uint64_t version_regressions = 0;  // gateway ahead of the store
  std::uint64_t epoch_resyncs = 0;        // gateway from another incarnation
  std::uint64_t delta_log_misses = 0;     // gap older than the delta log
  // Store blobs that failed to deserialize while building the full state
  // (also pushed as the orchestrator_store_decode_errors gauge).
  std::uint64_t store_decode_errors = 0;
  // Southbound report applies shed at a full per-gateway ingest queue
  // (also pushed as the orc8r_ingest_shed gauge; IngestShards has the
  // per-kind breakdown).
  std::uint64_t ingest_sheds = 0;
  // SLO layer: periodic derived-SLI evaluations, and the downtime
  // attribution join's outcomes (labeled = a non-unknown cause was found).
  std::uint64_t slo_ticks = 0;
  std::uint64_t downtime_intervals_labeled = 0;
  std::uint64_t downtime_unattributed = 0;
};

class Orchestrator {
 public:
  explicit Orchestrator(sim::Kernel& kernel, std::string network_name = "net");

  // --- Northbound API (operator-facing) ---------------------------------
  void add_subscriber(const agw::SubscriberData& subscriber);
  void remove_subscriber(const common::Imsi& imsi);
  std::optional<agw::SubscriberData> get_subscriber(
      const common::Imsi& imsi) const;
  std::size_t subscriber_count() const;

  void add_policy(const core::Policy& policy);
  void remove_policy(const std::string& name);
  std::optional<core::Policy> get_policy(const std::string& name) const;

  void register_gateway(const std::string& gateway_id,
                        const std::string& description);
  std::optional<GatewayRecord> gateway(const std::string& gateway_id) const;
  std::vector<GatewayRecord> gateways() const;

  // Stored AGW checkpoint (for bringing up a backup instance).
  std::optional<common::Bytes> stored_checkpoint(
      const std::string& gateway_id) const;

  Metricsd& metrics() { return metricsd_; }
  const Metricsd& metrics() const { return metricsd_; }

  // Gateway health plane: per-gateway checkin freshness and the reported
  // Service303 snapshots (fed by the bootstrapper checkin handler).
  Statusd& statusd() { return statusd_; }
  const Statusd& statusd() const { return statusd_; }

  // Sharded southbound ingest: report applies (statusd/metricsd mutations)
  // run behind per-gateway bounded queues, not inline in the RPC handlers.
  IngestShards& ingest() { return ingest_; }
  const IngestShards& ingest() const { return ingest_; }

  // The orchestrator's own Service303 registry: every southbound service
  // (streamer, bootstrapper, state, metricsd, eventd, statusd) counts its
  // requests/errors here.
  obs::StatusRegistry& status() { return status_; }
  const obs::StatusRegistry& status() const { return status_; }

  // Structured events shipped by gateways (WARN/ERROR logs, attach
  // milestones), newest last; bounded retention, oldest dropped.
  const std::deque<obs::Event>& events() const { return events_; }
  std::vector<obs::Event> events_of_type(const std::string& type) const;
  void set_event_retention(std::size_t max_events);

  // Tracing: when set, event ingestion anchors an "ingest_event" span into
  // each event's originating trace, and bind()-created handlers run traced.
  void set_tracer(obs::Tracer* tracer, std::string node_label = "orc8r");
  obs::Tracer* tracer() const { return tracer_; }

  // Current config version (changes on every northbound mutation).
  std::uint64_t config_version() const { return store_.version(); }
  // This incarnation's epoch (bumped every construction; a gateway seeing a
  // new epoch discards its version and full-syncs).
  std::uint64_t epoch() const { return epoch_; }

  // Desired state for a gateway at its reported version. Counts (and
  // alerts on) store blobs that fail to deserialize instead of silently
  // shrinking the config.
  DesiredState desired_state(std::uint64_t have_version);

  // The streamer's answer for a poll: noop, a coalesced delta, or the
  // cached full state (see streamer.h for when each is chosen).
  DesiredUpdate desired_update(const GetUpdatesRequest& request);

  // Fleet-wide tail-sampling budget: on checkin each gateway is assigned
  // keep-per-op K = clamp(budget / fleet size, 1, ...), so trace ingest
  // stays bounded as the fleet grows. 0 (default): unmanaged — gateways
  // keep their locally configured K.
  void set_fleet_trace_budget(std::uint64_t budget) {
    fleet_trace_budget_ = budget;
  }
  std::uint64_t fleet_trace_budget() const { return fleet_trace_budget_; }
  // K currently handed out at checkin (0 when unmanaged).
  std::uint64_t assigned_keep_per_op() const;

  // Mutations the delta log retains; older gaps fall back to full sync.
  void set_delta_log_cap(std::size_t cap);

  // --- Fleet SLO layer ---------------------------------------------------
  // The default SLOs (installed at construction) cover the signals that
  // already flow southbound: gateway availability from statusd's health
  // FSM, attach success rate from structured events, attach p95 from the
  // shipped histograms, and config-sync freshness from streamer polls.
  void add_slo(obs::slo::SloSpec spec);
  const std::vector<obs::slo::SloSpec>& slos() const { return slos_; }
  // Begin the periodic SLO evaluation (derived histogram SLIs). NOT started
  // implicitly for the same reason as statusd's sweep — the tick
  // reschedules forever; core::Network starts it.
  void start_slo_tick(sim::Duration interval = 60 * sim::kSecond);
  // One evaluation (what the periodic tick runs): push each derived
  // histogram SLI (quantile vs target, as a 0/1 good sample).
  void slo_tick_now();
  // Error-budget report over [from, to): per SLO, the mean SLI, burn rate,
  // budget consumed, and whether a burn-rate alert on it is firing now.
  std::vector<obs::slo::SloStatus> slo_report(sim::TimePoint from,
                                              sim::TimePoint to) const;
  // Fleet availability rollup from statusd's ledger (render with
  // format_availability).
  std::vector<AvailabilityRow> availability_rollup(sim::TimePoint from,
                                                   sim::TimePoint to) const {
    return orc8r::availability_rollup(statusd_.availability(), from, to);
  }
  // Delay between a downtime interval closing and the attribution join
  // reading the evidence — long enough for the recovered gateway's next
  // metrics tick (with the counters that grew mid-outage) to land.
  void set_attribution_settle(sim::Duration settle) {
    attribution_settle_ = settle;
  }

  // --- Southbound RPC surface -------------------------------------------
  // Bind streamer/bootstrapper/state/metricsd handlers onto a node (one per
  // connected AGW link; handlers share this orchestrator's state).
  void bind(rpc::RpcNode& node);

  // Crash model for the durable store (tests).
  store::WalStore& store() { return store_; }
  const OrchestratorStats& stats() const { return stats_; }

 private:
  static std::string subscriber_key(const common::Imsi& imsi) {
    return "sub/" + imsi.value;
  }
  static std::string policy_key(const std::string& name) {
    return "policy/" + name;
  }

  // Scan + deserialize the whole store (the slow path the blob cache and
  // delta log exist to avoid); counts decode errors.
  DesiredState build_full_state();
  // Serialized full state at the current store version, built at most once
  // per version.
  const common::Bytes& full_state_blob();
  void record_delta(DeltaEntry entry);
  void note_store_decode_error(const std::string& key,
                               const std::string& what);
  void note_ingest_shed(IngestKind kind);
  void slo_tick(sim::Duration interval);
  // Downtime attribution join (statusd ledger hooks): snapshot the
  // fleet critical-path profile when an interval opens, gather counter
  // growth / events / runq share after it closes (plus settle), label it.
  void on_downtime_open(const std::string& gateway_id, sim::TimePoint start);
  void on_downtime_close(const std::string& gateway_id,
                         const obs::slo::DowntimeInterval& interval);
  void attribute_interval(const std::string& gateway_id,
                          obs::slo::DowntimeInterval interval);

  sim::Kernel& kernel_;
  std::string network_name_;
  store::WalStore store_;  // durable config: subscribers + policies
  std::uint64_t epoch_ = 1;
  std::map<std::string, GatewayRecord> gateways_;
  std::map<std::string, common::Bytes> checkpoints_;
  Metricsd metricsd_;
  Statusd statusd_{kernel_, &metricsd_};
  IngestShards ingest_{kernel_};
  obs::StatusRegistry status_{kernel_};
  // Per-service Service303 handles (owned by status_; stable addresses).
  obs::Service303* svc_streamer_ = nullptr;
  obs::Service303* svc_bootstrapper_ = nullptr;
  obs::Service303* svc_state_ = nullptr;
  obs::Service303* svc_metricsd_ = nullptr;
  obs::Service303* svc_eventd_ = nullptr;
  obs::Service303* svc_statusd_ = nullptr;
  std::deque<obs::Event> events_;
  std::size_t event_retention_ = 65536;
  obs::Tracer* tracer_ = nullptr;
  std::string node_label_ = "orc8r";

  // Recent mutations, version-tagged, for delta serving. A record exists
  // for every northbound store mutation since log_floor_versions_ worth of
  // history; direct store writes (tests, corruption) bypass it, which the
  // coverage check detects as a gap -> full sync.
  struct DeltaRecord {
    std::uint64_t version;  // store version after the mutation
    DeltaEntry entry;
  };
  std::deque<DeltaRecord> delta_log_;
  std::size_t delta_log_cap_ = 4096;

  // Full-state blob cache, valid for exactly one store version.
  std::uint64_t cached_full_version_ = 0;
  bool cached_full_valid_ = false;
  common::Bytes cached_full_;

  std::uint64_t fleet_trace_budget_ = 0;

  // SLO layer state.
  std::vector<obs::slo::SloSpec> slos_;
  bool slo_tick_started_ = false;
  sim::Duration attribution_settle_ = 90 * sim::kSecond;
  // Fleet critical-path (runq_s, total_s) snapshot taken when a gateway's
  // downtime interval opened, keyed by gateway — the overload lens.
  std::map<std::string, std::pair<double, double>> open_runq_snapshots_;

  OrchestratorStats stats_;
};

}  // namespace magma::orc8r
