// Orchestrator — Magma's central point of control (§3.2).
//
// Holds authoritative configuration state in a durable WAL store (the
// paper's Postgres), exposes a northbound API for operators (subscriber and
// policy management, gateway inventory, metrics queries), and serves the
// southbound RPC surface AGWs poll: desired-state config sync, device
// check-in (device management, §3.1), best-effort metrics ingestion, and
// checkpoint backup storage (§3.3: an AGW's runtime state "may be copied to
// a backup instance ... running as a cloud service").
//
// Runtime UE state never lives here — that is the hierarchical control
// plane split: the orchestrator scales with configuration churn and
// gateway count, not with subscriber activity (§3.2, §4.3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <deque>

#include "agw/subscriberdb.h"
#include "common/result.h"
#include "core/policy.h"
#include "obs/events.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "orc8r/metricsd.h"
#include "orc8r/statusd.h"
#include "orc8r/streamer.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"
#include "store/wal_store.h"

namespace magma::orc8r {

struct GatewayRecord {
  std::string id;
  std::string description;
  sim::TimePoint last_checkin = -1;  // -1: never checked in
  std::uint64_t checkin_count = 0;
};

struct OrchestratorStats {
  std::uint64_t config_pushes = 0;      // GetUpdates answered with changes
  std::uint64_t noop_polls = 0;         // GetUpdates answered "current"
  std::uint64_t checkins = 0;
  std::uint64_t checkpoints_stored = 0;
  std::uint64_t metric_reports = 0;
  std::uint64_t histogram_reports = 0;
  std::uint64_t trace_summary_reports = 0;
  std::uint64_t event_reports = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t events_dropped = 0;  // event store retention overflow
};

class Orchestrator {
 public:
  explicit Orchestrator(sim::Kernel& kernel, std::string network_name = "net");

  // --- Northbound API (operator-facing) ---------------------------------
  void add_subscriber(const agw::SubscriberData& subscriber);
  void remove_subscriber(const common::Imsi& imsi);
  std::optional<agw::SubscriberData> get_subscriber(
      const common::Imsi& imsi) const;
  std::size_t subscriber_count() const;

  void add_policy(const core::Policy& policy);
  void remove_policy(const std::string& name);
  std::optional<core::Policy> get_policy(const std::string& name) const;

  void register_gateway(const std::string& gateway_id,
                        const std::string& description);
  std::optional<GatewayRecord> gateway(const std::string& gateway_id) const;
  std::vector<GatewayRecord> gateways() const;

  // Stored AGW checkpoint (for bringing up a backup instance).
  std::optional<common::Bytes> stored_checkpoint(
      const std::string& gateway_id) const;

  Metricsd& metrics() { return metricsd_; }
  const Metricsd& metrics() const { return metricsd_; }

  // Gateway health plane: per-gateway checkin freshness and the reported
  // Service303 snapshots (fed by the bootstrapper checkin handler).
  Statusd& statusd() { return statusd_; }
  const Statusd& statusd() const { return statusd_; }

  // The orchestrator's own Service303 registry: every southbound service
  // (streamer, bootstrapper, state, metricsd, eventd, statusd) counts its
  // requests/errors here.
  obs::StatusRegistry& status() { return status_; }
  const obs::StatusRegistry& status() const { return status_; }

  // Structured events shipped by gateways (WARN/ERROR logs, attach
  // milestones), newest last; bounded retention, oldest dropped.
  const std::deque<obs::Event>& events() const { return events_; }
  std::vector<obs::Event> events_of_type(const std::string& type) const;
  void set_event_retention(std::size_t max_events);

  // Tracing: when set, event ingestion anchors an "ingest_event" span into
  // each event's originating trace, and bind()-created handlers run traced.
  void set_tracer(obs::Tracer* tracer, std::string node_label = "orc8r");
  obs::Tracer* tracer() const { return tracer_; }

  // Current config version (changes on every northbound mutation).
  std::uint64_t config_version() const { return store_.version(); }

  // Desired state for a gateway at its reported version.
  DesiredState desired_state(std::uint64_t have_version) const;

  // --- Southbound RPC surface -------------------------------------------
  // Bind streamer/bootstrapper/state/metricsd handlers onto a node (one per
  // connected AGW link; handlers share this orchestrator's state).
  void bind(rpc::RpcNode& node);

  // Crash model for the durable store (tests).
  store::WalStore& store() { return store_; }
  const OrchestratorStats& stats() const { return stats_; }

 private:
  static std::string subscriber_key(const common::Imsi& imsi) {
    return "sub/" + imsi.value;
  }
  static std::string policy_key(const std::string& name) {
    return "policy/" + name;
  }

  sim::Kernel& kernel_;
  std::string network_name_;
  store::WalStore store_;  // durable config: subscribers + policies
  std::map<std::string, GatewayRecord> gateways_;
  std::map<std::string, common::Bytes> checkpoints_;
  Metricsd metricsd_;
  Statusd statusd_{kernel_, &metricsd_};
  obs::StatusRegistry status_{kernel_};
  // Per-service Service303 handles (owned by status_; stable addresses).
  obs::Service303* svc_streamer_ = nullptr;
  obs::Service303* svc_bootstrapper_ = nullptr;
  obs::Service303* svc_state_ = nullptr;
  obs::Service303* svc_metricsd_ = nullptr;
  obs::Service303* svc_eventd_ = nullptr;
  obs::Service303* svc_statusd_ = nullptr;
  std::deque<obs::Event> events_;
  std::size_t event_retention_ = 65536;
  obs::Tracer* tracer_ = nullptr;
  std::string node_label_ = "orc8r";
  OrchestratorStats stats_;
};

}  // namespace magma::orc8r
