// Streamer wire types: desired-state configuration sync (§3.4).
//
// The orchestrator is the sole writer of configuration state; AGWs poll
// GetUpdates with the version they have, and the streamer answers with the
// *entire* desired state when anything changed ("the set of sessions is now
// X, Y, Z" generalized to config). Idempotent full-set transfer is what
// makes the sync self-healing after lost messages or AGW restarts — the
// property bench/ablation_state_sync measures against a CRUD baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agw/subscriberdb.h"
#include "common/bytes.h"
#include "common/result.h"
#include "core/policy.h"

namespace magma::orc8r {

struct GetUpdatesRequest {
  std::string gateway_id;
  std::uint64_t have_version = 0;

  common::Bytes serialize() const;
  static common::Result<GetUpdatesRequest> deserialize(common::BytesView d);
};

struct DesiredState {
  std::uint64_t version = 0;
  bool changed = false;  // false: caller's version is current; blobs empty
  std::vector<agw::SubscriberData> subscribers;
  std::vector<core::Policy> policies;

  common::Bytes serialize() const;
  static common::Result<DesiredState> deserialize(common::BytesView d);
};

// Service/method names (orchestrator-side RPC surface).
inline constexpr const char* kStreamerService = "streamer";
inline constexpr const char* kGetUpdates = "GetUpdates";

inline constexpr const char* kBootstrapperService = "bootstrapper";
inline constexpr const char* kCheckin = "Checkin";

inline constexpr const char* kStateService = "state";
inline constexpr const char* kReportCheckpoint = "ReportCheckpoint";

inline constexpr const char* kMetricsService = "metricsd";
inline constexpr const char* kReportMetrics = "Report";
inline constexpr const char* kReportHistograms = "ReportHistograms";
inline constexpr const char* kReportTraceSummaries = "ReportTraceSummaries";

inline constexpr const char* kEventService = "eventd";
inline constexpr const char* kLogEvents = "LogEvents";

}  // namespace magma::orc8r
