// Streamer wire types: desired-state configuration sync (§3.4).
//
// The orchestrator is the sole writer of configuration state; AGWs poll
// GetUpdates with the (epoch, version) they have. The streamer answers one
// of three ways:
//   * kNoop  — the caller is current; nothing on the wire but the header.
//   * kDelta — the caller is behind by a range the orchestrator's delta log
//              still covers: a coalesced list of add/remove entries, so one
//              config change fans out to N gateways without N full-set
//              transfers.
//   * kFull  — everything else (first sync, epoch change after an
//              orchestrator restart, a version regression, or a gap older
//              than the delta log): the *entire* desired state ("the set of
//              sessions is now X, Y, Z" generalized to config). Idempotent
//              full-set transfer is the self-healing path — the property
//              bench/ablation_state_sync measures against a CRUD baseline —
//              and deltas are strictly an optimization layered on top of it.
//
// The epoch distinguishes orchestrator incarnations: a gateway holding
// version 40 from epoch 2 must not interpret version 3 of epoch 3 (a
// restarted orchestrator with a rebuilt store) as "stale", nor splice epoch-3
// deltas onto epoch-2 state. Any epoch mismatch degrades to kFull.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agw/subscriberdb.h"
#include "common/bytes.h"
#include "common/result.h"
#include "core/policy.h"

namespace magma::orc8r {

struct GetUpdatesRequest {
  std::string gateway_id;
  std::uint64_t have_version = 0;
  std::uint64_t have_epoch = 0;  // 0: never synced (epochs start at 1)

  common::Bytes serialize() const;
  static common::Result<GetUpdatesRequest> deserialize(common::BytesView d);
};

// Full desired-state payload (carried inside a kFull DesiredUpdate, and
// still the unit the orchestrator's northbound desired_state() returns).
struct DesiredState {
  std::uint64_t version = 0;
  bool changed = false;  // false: caller's version is current; blobs empty
  std::vector<agw::SubscriberData> subscribers;
  std::vector<core::Policy> policies;

  common::Bytes serialize() const;
  static common::Result<DesiredState> deserialize(common::BytesView d);
};

enum class SyncMode : std::uint8_t {
  kNoop = 0,
  kFull = 1,
  kDelta = 2,
};

// One coalesced config mutation. `key` is the subscriber IMSI or policy
// name; `blob` the serialized object for upserts, empty for removes.
struct DeltaEntry {
  enum class Kind : std::uint8_t { kSubscriber = 0, kPolicy = 1 };
  Kind kind = Kind::kSubscriber;
  bool remove = false;
  std::string key;
  common::Bytes blob;
};

// GetUpdates response envelope.
struct DesiredUpdate {
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;
  SyncMode mode = SyncMode::kNoop;
  std::vector<DeltaEntry> entries;  // kDelta only
  common::Bytes full;               // kFull only: a serialized DesiredState

  common::Bytes serialize() const;
  static common::Result<DesiredUpdate> deserialize(common::BytesView d);
};

// Service/method names (orchestrator-side RPC surface).
inline constexpr const char* kStreamerService = "streamer";
inline constexpr const char* kGetUpdates = "GetUpdates";

inline constexpr const char* kBootstrapperService = "bootstrapper";
inline constexpr const char* kCheckin = "Checkin";

inline constexpr const char* kStateService = "state";
inline constexpr const char* kReportCheckpoint = "ReportCheckpoint";

inline constexpr const char* kMetricsService = "metricsd";
inline constexpr const char* kReportMetrics = "Report";
inline constexpr const char* kReportHistograms = "ReportHistograms";
inline constexpr const char* kReportTraceSummaries = "ReportTraceSummaries";
inline constexpr const char* kReportSketches = "ReportSketches";

inline constexpr const char* kEventService = "eventd";
inline constexpr const char* kLogEvents = "LogEvents";

}  // namespace magma::orc8r
