#include "orc8r/streamer.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::orc8r {

common::Bytes GetUpdatesRequest::serialize() const {
  rpc::Writer w;
  w.str(gateway_id);
  w.u64(have_version);
  w.u64(have_epoch);
  return std::move(w).take();
}

common::Result<GetUpdatesRequest> GetUpdatesRequest::deserialize(
    common::BytesView d) {
  rpc::Reader r(d);
  GetUpdatesRequest req;
  req.gateway_id = r.str();
  req.have_version = r.u64();
  req.have_epoch = r.u64();
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt GetUpdatesRequest"};
  }
  return req;
}

common::Bytes DesiredState::serialize() const {
  rpc::Writer w;
  w.u64(version);
  w.boolean(changed);
  w.u64(subscribers.size());
  for (const agw::SubscriberData& s : subscribers) w.bytes(s.serialize());
  w.u64(policies.size());
  for (const core::Policy& p : policies) w.bytes(p.serialize());
  return std::move(w).take();
}

common::Result<DesiredState> DesiredState::deserialize(common::BytesView d) {
  rpc::Reader r(d);
  DesiredState state;
  state.version = r.u64();
  state.changed = r.boolean();
  const std::uint64_t sub_count = r.u64();
  for (std::uint64_t i = 0; i < sub_count; ++i) {
    auto sub = agw::SubscriberData::deserialize(r.bytes());
    if (!sub.ok()) return sub.error();
    state.subscribers.push_back(std::move(sub).take());
  }
  const std::uint64_t pol_count = r.u64();
  for (std::uint64_t i = 0; i < pol_count; ++i) {
    auto policy = core::Policy::deserialize(r.bytes());
    if (!policy.ok()) return policy.error();
    state.policies.push_back(std::move(policy).take());
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt DesiredState"};
  }
  return state;
}

common::Bytes DesiredUpdate::serialize() const {
  rpc::Writer w;
  w.u64(version);
  w.u64(epoch);
  w.u8(static_cast<std::uint8_t>(mode));
  if (mode == SyncMode::kDelta) {
    w.u64(entries.size());
    for (const DeltaEntry& e : entries) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.boolean(e.remove);
      w.str(e.key);
      w.bytes(e.blob);
    }
  } else if (mode == SyncMode::kFull) {
    w.bytes(full);
  }
  return std::move(w).take();
}

common::Result<DesiredUpdate> DesiredUpdate::deserialize(common::BytesView d) {
  rpc::Reader r(d);
  DesiredUpdate u;
  u.version = r.u64();
  u.epoch = r.u64();
  const std::uint8_t mode = r.u8();
  if (!r.ok() || mode > static_cast<std::uint8_t>(SyncMode::kDelta)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt DesiredUpdate header"};
  }
  u.mode = static_cast<SyncMode>(mode);
  if (u.mode == SyncMode::kDelta) {
    const std::uint64_t count = r.u64();
    // Each entry needs ≥ 10 wire bytes (kind + remove + two length
    // prefixes); the count is wire data — never reserve it blindly.
    u.entries.reserve(std::min<std::uint64_t>(count, r.remaining() / 10 + 1));
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      DeltaEntry e;
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(DeltaEntry::Kind::kPolicy)) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "corrupt DeltaEntry kind"};
      }
      e.kind = static_cast<DeltaEntry::Kind>(kind);
      e.remove = r.boolean();
      e.key = r.str();
      e.blob = r.bytes();
      if (e.remove && !e.blob.empty()) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "remove entry carries a blob"};
      }
      u.entries.push_back(std::move(e));
    }
  } else if (u.mode == SyncMode::kFull) {
    u.full = r.bytes();
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt DesiredUpdate"};
  }
  return u;
}

}  // namespace magma::orc8r
