#include "orc8r/streamer.h"

#include "rpc/wire.h"

namespace magma::orc8r {

common::Bytes GetUpdatesRequest::serialize() const {
  rpc::Writer w;
  w.str(gateway_id);
  w.u64(have_version);
  return std::move(w).take();
}

common::Result<GetUpdatesRequest> GetUpdatesRequest::deserialize(
    common::BytesView d) {
  rpc::Reader r(d);
  GetUpdatesRequest req;
  req.gateway_id = r.str();
  req.have_version = r.u64();
  if (!r.ok()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt GetUpdatesRequest"};
  }
  return req;
}

common::Bytes DesiredState::serialize() const {
  rpc::Writer w;
  w.u64(version);
  w.boolean(changed);
  w.u64(subscribers.size());
  for (const agw::SubscriberData& s : subscribers) w.bytes(s.serialize());
  w.u64(policies.size());
  for (const core::Policy& p : policies) w.bytes(p.serialize());
  return std::move(w).take();
}

common::Result<DesiredState> DesiredState::deserialize(common::BytesView d) {
  rpc::Reader r(d);
  DesiredState state;
  state.version = r.u64();
  state.changed = r.boolean();
  const std::uint64_t sub_count = r.u64();
  for (std::uint64_t i = 0; i < sub_count; ++i) {
    auto sub = agw::SubscriberData::deserialize(r.bytes());
    if (!sub.ok()) return sub.error();
    state.subscribers.push_back(std::move(sub).take());
  }
  const std::uint64_t pol_count = r.u64();
  for (std::uint64_t i = 0; i < pol_count; ++i) {
    auto policy = core::Policy::deserialize(r.bytes());
    if (!policy.ok()) return policy.error();
    state.policies.push_back(std::move(policy).take());
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt DesiredState"};
  }
  return state;
}

}  // namespace magma::orc8r
