#include "orc8r/ingest.h"

#include <algorithm>

#include "obs/host_profiler.h"

namespace magma::orc8r {

const char* ingest_kind_name(IngestKind kind) {
  switch (kind) {
    case IngestKind::kCheckin:
      return "checkin";
    case IngestKind::kMetrics:
      return "metrics";
    case IngestKind::kHistograms:
      return "histograms";
    case IngestKind::kTraceSummaries:
      return "trace_summaries";
    case IngestKind::kSketches:
      return "sketches";
  }
  return "unknown";
}

IngestShards::IngestShards(sim::Kernel& kernel, IngestConfig config)
    : kernel_(kernel), config_(config) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.batch_per_pump = std::max<std::size_t>(1, config_.batch_per_pump);
  shards_.resize(config_.shards);
}

std::size_t IngestShards::shard_of(const std::string& gateway_id,
                                   std::size_t shards) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : gateway_id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return shards == 0 ? 0 : static_cast<std::size_t>(h % shards);
}

bool IngestShards::submit(const std::string& gateway_id, IngestKind kind,
                          std::function<void()> apply) {
  ++stats_.submitted;
  const std::size_t index = shard_of(gateway_id, shards_.size());
  Shard& shard = shards_[index];
  std::deque<Item>& queue = shard.queues[gateway_id];
  if (queue.size() >= config_.gateway_queue_max) {
    ++stats_.shed;
    ++stats_.shed_by_kind[static_cast<std::size_t>(kind)];
    if (queue.empty()) shard.queues.erase(gateway_id);
    return false;
  }
  queue.push_back(Item{kind, std::move(apply)});
  ++shard.pending;
  stats_.max_gateway_queue =
      std::max<std::uint64_t>(stats_.max_gateway_queue, queue.size());
  stats_.max_pending = std::max<std::uint64_t>(stats_.max_pending, pending());
  if (!shard.pump_scheduled) {
    shard.pump_scheduled = true;
    kernel_.schedule(config_.pump_interval, [this, index]() { pump(index); });
  }
  return true;
}

std::size_t IngestShards::pending() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.pending;
  return n;
}

void IngestShards::pump(std::size_t index) {
  // The pump is the orchestrator's southbound drain loop: at fleet scale it
  // runs every 5 ms of sim time, so its host cost scales with checkin rate.
  MAGMA_HOST_SCOPE("ingest", "pump");
  Shard& shard = shards_[index];
  std::size_t done = 0;
  // Round-robin across gateways, one apply per gateway per pass, resuming
  // after the last gateway served — a deep single-gateway backlog drains at
  // the same per-pump rate as everyone else's fresh reports.
  while (done < config_.batch_per_pump && !shard.queues.empty()) {
    auto it = shard.queues.upper_bound(shard.resume_after);
    if (it == shard.queues.end()) it = shard.queues.begin();
    Item item = std::move(it->second.front());
    it->second.pop_front();
    --shard.pending;
    shard.resume_after = it->first;
    if (it->second.empty()) shard.queues.erase(it);
    item.apply();
    ++done;
    ++stats_.processed;
  }
  if (done > 0) ++stats_.batches;
  if (!shard.queues.empty()) {
    kernel_.schedule(config_.pump_interval, [this, index]() { pump(index); });
  } else {
    shard.pump_scheduled = false;
  }
}

}  // namespace magma::orc8r
