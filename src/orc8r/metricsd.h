// metricsd — central telemetry collection (§3.1: "telemetry and logging"
// has "no equivalent defined" in 3GPP; Magma makes it a first-class
// responsibility, which §4.3.1 credits for much of the operational-cost
// reduction).
//
// AGWs report samples best-effort (§3.4: metrics state); metricsd stores
// time series and answers simple aggregate queries, playing the role of the
// paper's Prometheus. Lost reports are simply absent points.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/time.h"

namespace magma::orc8r {

struct MetricSample {
  std::string gateway_id;
  std::string name;
  double value = 0;
  sim::TimePoint time = 0;
};

common::Bytes encode_metric_report(const std::vector<MetricSample>& samples);
common::Result<std::vector<MetricSample>> decode_metric_report(
    common::BytesView data);

// Threshold alert rule (the "metrics, alerting, and monitoring" systems
// §3.2 says consume the northbound API — a minimal Prometheus-alertmanager
// stand-in).
struct AlertRule {
  std::string name;          // rule name (unique)
  std::string metric;        // metric it watches
  double threshold = 0;
  bool fire_above = true;    // fire when value > threshold (else <)
};

struct ActiveAlert {
  std::string rule;
  std::string gateway_id;
  double value = 0;
  sim::TimePoint since = 0;
};

class Metricsd {
 public:
  void ingest(const MetricSample& sample);
  void ingest(const std::vector<MetricSample>& samples);

  // --- alerting ------------------------------------------------------------
  void add_alert_rule(AlertRule rule);
  void remove_alert_rule(const std::string& name);
  // Alerts currently firing (per gateway, latest sample crossing the
  // threshold; clears when a sample comes back within bounds).
  std::vector<ActiveAlert> active_alerts() const;
  std::uint64_t alerts_fired() const { return alerts_fired_; }

  // All samples of `name` across gateways, time-ordered.
  std::vector<MetricSample> series(const std::string& name) const;
  // Latest value per gateway for `name`, summed (e.g. network-wide
  // active-subscriber count).
  double sum_latest(const std::string& name) const;
  std::optional<double> latest(const std::string& gateway_id,
                               const std::string& name) const;
  // Sum of all values of `name` in [from, to) (e.g. bytes per hour).
  double sum_in_window(const std::string& name, sim::TimePoint from,
                       sim::TimePoint to) const;

  std::size_t total_samples() const { return total_; }
  std::vector<std::string> metric_names() const;

 private:
  void evaluate_alerts(const MetricSample& sample);

  // name -> time-ordered samples.
  std::map<std::string, std::vector<MetricSample>> by_name_;
  std::size_t total_ = 0;

  std::vector<AlertRule> rules_;
  // (rule name, gateway) -> alert
  std::map<std::pair<std::string, std::string>, ActiveAlert> firing_;
  std::uint64_t alerts_fired_ = 0;
};

}  // namespace magma::orc8r
