// metricsd — central telemetry collection (§3.1: "telemetry and logging"
// has "no equivalent defined" in 3GPP; Magma makes it a first-class
// responsibility, which §4.3.1 credits for much of the operational-cost
// reduction).
//
// AGWs report samples best-effort (§3.4: metrics state); metricsd stores
// time series and answers simple aggregate queries, playing the role of the
// paper's Prometheus. Lost reports are simply absent points.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/histogram.h"
#include "obs/sketch/subscriber_sketches.h"
#include "obs/slo/availability.h"
#include "obs/tail_sampler.h"
#include "sim/time.h"

namespace magma::orc8r {

struct MetricSample {
  std::string gateway_id;
  std::string name;
  double value = 0;
  sim::TimePoint time = 0;
};

common::Bytes encode_metric_report(const std::vector<MetricSample>& samples);
common::Result<std::vector<MetricSample>> decode_metric_report(
    common::BytesView data);

// Histogram metric: gateways aggregate observations into log-spaced buckets
// locally and ship cumulative snapshots — metricsd never sees raw samples,
// so the reporting cost is O(buckets) regardless of attach rate.
struct HistogramSnapshot {
  std::string gateway_id;
  std::string name;
  std::vector<double> bounds;         // ascending bucket upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size()+1, overflow last
  double sum = 0;
  sim::TimePoint time = 0;
  // Delta shipping: a delta snapshot carries only the buckets whose
  // cumulative count changed since the sender's last shipped snapshot, as
  // (bucket index, new cumulative count) pairs; bounds/counts stay empty.
  // Metricsd overlays the pairs onto its stored full snapshot for the same
  // (gateway, name) — the values are still cumulative, so a lost delta is
  // self-correcting as soon as those buckets change again (and magmad
  // re-ships full after any report loss regardless).
  bool delta = false;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> changed;
  // Optional per-bucket exemplars as (bucket index, trace id) pairs — one
  // recent trace that landed in that bucket, so a p99 query can be pivoted
  // to a pinned trace. Full snapshots carry every non-zero exemplar; delta
  // snapshots carry only buckets whose exemplar changed.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> exemplars;
};

common::Bytes encode_histogram_report(
    const std::vector<HistogramSnapshot>& snapshots);
common::Result<std::vector<HistogramSnapshot>> decode_histogram_report(
    common::BytesView data);

// One row of the fleet-wide "where does <op> latency go" table: the
// tail-sampled traces of a root operation, aggregated across gateways, with
// the total decomposed along the critical path into wait states. These are
// *tail* samples (each gateway's K slowest per window), so the table
// attributes the latency an operator is paged about, not the mean.
struct LatencyAttributionRow {
  std::string root_op;
  std::uint64_t traces = 0;
  double total_s = 0;  // summed root durations
  double max_s = 0;    // slowest single trace seen
  // Per-wait-state critical-path seconds, indexed by obs::WaitState; sums
  // to total_s (each summary's breakdown sums to its duration).
  std::array<double, obs::kWaitStateCount> component_s{};
};

// How an alert rule interprets its threshold.
enum class AlertKind : std::uint8_t {
  kThreshold = 0,  // fire on the sample's value vs threshold
  // Fire when the value *rises* by more than `threshold` vs the previous
  // sample from the same gateway (for monotonic counters like
  // transport_resets, where any growth is the page-worthy signal).
  kDelta = 1,
  // SRE-style multi-window burn rate over an SLI series (samples are good
  // fractions in [0, 1]). Fires only when BOTH the fast window's and the
  // slow window's burn rate — (1 - mean) / (1 - objective) — exceed
  // `threshold`: the fast window makes the alert react within minutes of an
  // outage, the slow window keeps a single bad sample from paging; clears
  // as soon as either window recovers, so the page ends minutes after the
  // incident does instead of waiting out the long window.
  kBurnRate = 2,
};

// Threshold alert rule (the "metrics, alerting, and monitoring" systems
// §3.2 says consume the northbound API — a minimal Prometheus-alertmanager
// stand-in).
struct AlertRule {
  std::string name;          // rule name (unique)
  std::string metric;        // metric it watches
  double threshold = 0;
  bool fire_above = true;    // fire when value > threshold (else <)
  AlertKind kind = AlertKind::kThreshold;
  // kBurnRate only: the SLO's good-fraction objective and the two windows.
  double objective = 0.999;
  sim::Duration fast_window = 5 * sim::kMinute;
  sim::Duration slow_window = sim::kHour;
};

struct ActiveAlert {
  std::string rule;
  std::string gateway_id;
  double value = 0;
  sim::TimePoint since = 0;
};

class Metricsd {
 public:
  void ingest(const MetricSample& sample);
  void ingest(const std::vector<MetricSample>& samples);

  // Cumulative histogram snapshot from a gateway: replaces that gateway's
  // previous snapshot of the same name (drops ignored snapshots with a
  // malformed bucket layout). Delta snapshots overlay the stored full
  // snapshot; a delta without a stored base (first report lost, or layout
  // change raced) is counted in histogram_delta_orphans and dropped — the
  // sender re-ships full after any loss.
  void ingest_histogram(const HistogramSnapshot& snapshot);
  void ingest_histograms(const std::vector<HistogramSnapshot>& snapshots);
  std::uint64_t histogram_delta_orphans() const {
    return histogram_delta_orphans_;
  }
  std::vector<std::string> histogram_names() const;
  // Buckets of `name` merged across gateways (empty if unknown).
  obs::Histogram merged_histogram(const std::string& name) const;
  // p50/p95/p99-style query over the merged buckets; 0 when absent.
  double histogram_quantile(const std::string& name, double q) const;
  std::uint64_t histogram_count(const std::string& name) const;
  // The metrics→trace pivot: trace id of one exemplar in (or below) the
  // quantile-q bucket of the merged histogram (0: none shipped yet).
  std::uint64_t histogram_exemplar(const std::string& name, double q) const;

  // --- per-subscriber sketches (cardinality-bounded telemetry) -------------
  // Cumulative sketch report from a gateway: replaces that gateway's
  // previous report (out-of-order replays older than the stored report are
  // dropped and counted against DropKind::kSketch).
  void ingest_sketch_report(obs::sketch::SketchReport report);
  std::uint64_t sketch_reports_ingested() const {
    return sketch_reports_ingested_;
  }
  std::size_t sketch_gateways() const { return sketches_.size(); }
  // Fleet-wide merge across gateways; error bounds carried explicitly (a
  // key one gateway evicted contributes that gateway's min-count).
  obs::sketch::SpaceSaving merged_top_subscribers(
      obs::sketch::SubscriberMetric metric) const;
  // Fleet-wide distinct active IMSIs (HLL register-max merge): since boot,
  // or over the gateways' last closed window.
  double fleet_active_subscribers(bool window = false) const;
  // Rendered top-K answer for "who are my worst subscribers by <metric>".
  std::string top_subscribers_report(obs::sketch::SubscriberMetric metric,
                                     std::size_t k) const;

  // Tail-sampled trace summaries (shipped by magmad on the metrics tick):
  // fold each into the per-root-op attribution table.
  void ingest_trace_summaries(const std::vector<obs::TraceSummary>& summaries);
  std::uint64_t trace_summaries_ingested() const {
    return trace_summaries_ingested_;
  }
  // The fleet-wide attribution table, root-op-ordered. Render with
  // format_latency_attribution() below.
  std::vector<LatencyAttributionRow> latency_attribution() const;

  // Per-series retention cap: each (metric name) series keeps at most this
  // many samples, oldest trimmed first (million-user soaks must not grow
  // metricsd without bound). Eviction is chunked — a series over the cap
  // drops its oldest half-cap at once, so length oscillates in
  // [cap/2, cap] and retention stays O(1) amortized per sample instead of
  // an O(cap) front-erase each. 0 disables the cap.
  void set_retention(std::size_t max_samples_per_series);
  std::uint64_t samples_dropped() const;
  // Per-kind drop accounting: every sample metricsd discards — retention
  // trims, malformed histograms, undecodable reports — lands in exactly one
  // kind, so silent telemetry truncation is itself a metric.
  enum class DropKind : std::uint8_t {
    kMetric = 0,        // retention-cap trims of plain samples
    kHistogram = 1,     // malformed layouts, orphaned deltas
    kTraceSummary = 2,  // undecodable trace-summary reports
    kSketch = 3,        // undecodable or stale sketch reports
  };
  static constexpr std::size_t kDropKindCount = 4;
  static const char* drop_kind_name(DropKind kind);
  std::uint64_t samples_dropped(DropKind kind) const {
    return dropped_[static_cast<std::size_t>(kind)];
  }
  // Ingest-adjacent layers (the orchestrator's decode path) report their
  // discards here so the gauge below covers the whole pipeline.
  void note_drop(DropKind kind, std::uint64_t n = 1) {
    dropped_[static_cast<std::size_t>(kind)] += n;
  }
  // Self-observation: ingest one `metricsd_samples_dropped` gauge sample
  // per kind (gateway_id = kind name), so the default kDelta rule pages on
  // any growth — a telemetry pipeline that drops data must say so in the
  // telemetry itself.
  void self_observe(sim::TimePoint now);

  // --- alerting ------------------------------------------------------------
  void add_alert_rule(AlertRule rule);
  void remove_alert_rule(const std::string& name);
  // Alerts currently firing (per gateway, latest sample crossing the
  // threshold; clears when a sample comes back within bounds).
  std::vector<ActiveAlert> active_alerts() const;
  const std::vector<AlertRule>& alert_rules() const { return rules_; }
  std::uint64_t alerts_fired() const { return alerts_fired_; }

  // All samples of `name` across gateways, time-ordered.
  std::vector<MetricSample> series(const std::string& name) const;
  // Latest value per gateway for `name`, summed (e.g. network-wide
  // active-subscriber count).
  double sum_latest(const std::string& name) const;
  std::optional<double> latest(const std::string& gateway_id,
                               const std::string& name) const;
  // Last value of `name` from `gateway_id` at or before `at` — what the
  // downtime-attribution join uses to read a cumulative counter "just
  // before the outage" vs "after recovery".
  std::optional<double> latest_at_or_before(const std::string& gateway_id,
                                            const std::string& name,
                                            sim::TimePoint at) const;
  // Sum of all values of `name` in [from, to) (e.g. bytes per hour).
  double sum_in_window(const std::string& name, sim::TimePoint from,
                       sim::TimePoint to) const;
  // Mean of all values of `name` in [from, to), across gateways — the SLI
  // aggregation slo_report uses. nullopt when the window holds no samples.
  std::optional<double> mean_in_window(const std::string& name,
                                       sim::TimePoint from,
                                       sim::TimePoint to) const;

  std::size_t total_samples() const { return total_; }
  std::vector<std::string> metric_names() const;

 private:
  void evaluate_alerts(const MetricSample& sample);

  // name -> time-ordered samples.
  std::map<std::string, std::vector<MetricSample>> by_name_;
  std::size_t total_ = 0;
  std::size_t max_per_series_ = 100000;
  std::array<std::uint64_t, kDropKindCount> dropped_{};

  // (gateway, name) -> latest cumulative snapshot.
  std::map<std::pair<std::string, std::string>, obs::Histogram> histograms_;
  std::uint64_t histogram_delta_orphans_ = 0;

  // gateway -> latest cumulative sketch report.
  std::map<std::string, obs::sketch::SketchReport> sketches_;
  std::uint64_t sketch_reports_ingested_ = 0;

  // root op -> aggregated tail-trace attribution.
  std::map<std::string, LatencyAttributionRow> attribution_;
  std::uint64_t trace_summaries_ingested_ = 0;

  std::vector<AlertRule> rules_;
  // (rule name, gateway) -> alert
  std::map<std::pair<std::string, std::string>, ActiveAlert> firing_;
  // (metric, gateway) -> previous value, for kDelta rules.
  std::map<std::pair<std::string, std::string>, double> last_value_;
  // (rule name, gateway) -> sliding slow-window SLI samples, for kBurnRate
  // rules. The deque covers the slow window with a running sum (O(1) slow
  // mean per sample); the fast mean is a reverse scan over its newest tail,
  // which at sane SLI cadences is a handful of entries.
  struct BurnState {
    std::deque<std::pair<sim::TimePoint, double>> samples;
    double sum = 0;
  };
  std::map<std::pair<std::string, std::string>, BurnState> burn_;
  std::uint64_t alerts_fired_ = 0;
};

// Default alerting for the transport gauges: pages on connection-reset
// growth, on SRTT sitting above 2× the engineered path baseline, and on
// transport_rto_at_cap growth (a control channel stuck at max_rto backoff).
// Installed by Orchestrator (and re-installed by core::Network with its
// configured baseline); idempotent by rule name.
void install_default_transport_rules(Metricsd& metricsd,
                                     double srtt_baseline_s);

// Human-readable rendering of the attribution table (one line per root op,
// mean and max duration plus per-state percentages) — what benches print as
// the "where does attach latency go" answer.
std::string format_latency_attribution(
    const std::vector<LatencyAttributionRow>& rows);

// One row of the fleet availability rollup: a gateway's uptime ratio over
// the report window with its downtime decomposed by attributed cause. The
// final row returned by availability_rollup is the "FLEET" aggregate (mean
// availability, summed downtime).
struct AvailabilityRow {
  std::string gateway_id;
  double availability = 1.0;
  double downtime_s = 0;
  std::uint64_t intervals = 0;
  std::array<double, obs::slo::kDowntimeCauseCount> cause_s{};
};

// Build the rollup from the statusd-owned ledger over [from, to).
std::vector<AvailabilityRow> availability_rollup(
    const obs::slo::AvailabilityLedger& ledger, sim::TimePoint from,
    sim::TimePoint to);

// Human-readable rendering, one line per gateway plus the FLEET row — the
// metricsd answer to "what was my fleet's availability and why".
std::string format_availability(const std::vector<AvailabilityRow>& rows);

// Default alerting over metricsd's own health: any growth of the per-kind
// `metricsd_samples_dropped` gauge pages — silent truncation of the
// telemetry pipeline is an outage of the observability plane itself.
// Installed by Orchestrator; idempotent by rule name.
void install_default_metricsd_rules(Metricsd& metricsd);

// Default SRE-style burn-rate alerting over the SLIs the orchestrator
// extracts from signals that already flow (gateway liveness, attach
// outcomes, config-sync freshness). Installed by Orchestrator; idempotent
// by rule name.
void install_default_slo_rules(Metricsd& metricsd);

}  // namespace magma::orc8r
