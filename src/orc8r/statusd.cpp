#include "orc8r/statusd.h"

namespace magma::orc8r {

const char* gateway_health_name(GatewayHealth health) {
  switch (health) {
    case GatewayHealth::kHealthy: return "healthy";
    case GatewayHealth::kDegraded: return "degraded";
    case GatewayHealth::kUnreachable: return "unreachable";
  }
  return "?";
}

Statusd::Statusd(sim::Kernel& kernel, Metricsd* metricsd, StatusdConfig config)
    : kernel_(kernel), metricsd_(metricsd), config_(config) {}

void Statusd::start() {
  if (started_) return;
  started_ = true;
  sweep_tick();
}

void Statusd::sweep_tick() {
  kernel_.schedule(config_.sweep_interval, [this]() {
    sweep_now();
    sweep_tick();
  });
}

std::uint64_t Statusd::missed_for(const GatewayStatus& gw) const {
  if (gw.last_checkin < 0 || config_.checkin_interval <= 0) return 0;
  const sim::Duration since = kernel_.now() - gw.last_checkin;
  if (since <= 0) return 0;
  return static_cast<std::uint64_t>(since / config_.checkin_interval);
}

void Statusd::evaluate(GatewayStatus& gw) {
  const std::uint64_t missed = missed_for(gw);
  GatewayHealth next = GatewayHealth::kHealthy;
  if (missed >= config_.unreachable_after_missed) {
    next = GatewayHealth::kUnreachable;
  } else if (missed >= config_.degraded_after_missed) {
    next = GatewayHealth::kDegraded;
  }
  if (next != gw.health) {
    const GatewayHealth prev = gw.health;
    if (next == GatewayHealth::kHealthy) {
      ++stats_.recoveries;
    } else if (next == GatewayHealth::kUnreachable) {
      ++stats_.to_unreachable;
    } else {
      ++stats_.to_degraded;
    }
    gw.health = next;
    if (next == GatewayHealth::kUnreachable) {
      // The gateway went dark well before the FSM noticed: backdate the
      // down edge to the first missed heartbeat, bounding the availability
      // error per edge to one checkin interval instead of the detection
      // latency (unreachable_after_missed intervals + a sweep).
      const sim::TimePoint down_at =
          gw.last_checkin >= 0 ? gw.last_checkin + config_.checkin_interval
                               : kernel_.now();
      ledger_.record_down(gw.gateway_id, down_at);
      if (on_down_) {
        on_down_(gw.gateway_id,
                 ledger_.intervals(gw.gateway_id)->back().start);
      }
    } else if (prev == GatewayHealth::kUnreachable) {
      ledger_.record_up(gw.gateway_id, kernel_.now());
      if (on_up_) {
        on_up_(gw.gateway_id, ledger_.intervals(gw.gateway_id)->back());
      }
    }
  }
  if (metricsd_ != nullptr) {
    const sim::TimePoint now = kernel_.now();
    metricsd_->ingest(MetricSample{gw.gateway_id, "gateway_health",
                                   static_cast<double>(gw.health), now});
    metricsd_->ingest(MetricSample{gw.gateway_id, "gateway_missed_checkins",
                                   static_cast<double>(missed), now});
    metricsd_->ingest(MetricSample{
        gw.gateway_id, "sli_gateway_up",
        gw.health == GatewayHealth::kUnreachable ? 0.0 : 1.0, now});
  }
}

void Statusd::record_checkin(const std::string& gateway_id,
                             std::vector<obs::ServiceStatus> services) {
  GatewayStatus& gw = gateways_[gateway_id];
  gw.gateway_id = gateway_id;
  ledger_.observe(gateway_id, kernel_.now());
  gw.last_checkin = kernel_.now();
  ++gw.checkins;
  gw.services = std::move(services);
  ++stats_.checkins;
  // Immediate re-evaluation: recovery (and its alert clear) must not wait
  // for the next sweep.
  evaluate(gw);
  push_service_health(gw);
}

void Statusd::push_service_health(const GatewayStatus& gw) {
  if (metricsd_ == nullptr || gw.health != GatewayHealth::kHealthy) return;
  const sim::TimePoint now = kernel_.now();
  for (const obs::ServiceStatus& svc : gw.services) {
    if (service_rules_.insert(svc.service).second) {
      // First sight of this service name anywhere in the fleet: watch its
      // error counter for growth. Counters are monotonic, so any positive
      // delta between two healthy checkins means the service is erroring
      // while the gateway as a whole still looks fine — precisely the
      // failure the gateway-level FSM cannot see.
      metricsd_->add_alert_rule(
          AlertRule{"service_errors_growth_" + svc.service,
                    "service_errors_" + svc.service, 0.0, true,
                    AlertKind::kDelta});
      ++stats_.service_rules_installed;
    }
    metricsd_->ingest(MetricSample{gw.gateway_id,
                                   "service_errors_" + svc.service,
                                   static_cast<double>(svc.errors), now});
  }
}

void Statusd::sweep_now() {
  ++stats_.sweeps;
  for (auto& [_, gw] : gateways_) evaluate(gw);
}

GatewayHealth Statusd::health(const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it == gateways_.end() ? GatewayHealth::kHealthy : it->second.health;
}

std::uint64_t Statusd::missed_checkins(const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it == gateways_.end() ? 0 : missed_for(it->second);
}

const GatewayStatus* Statusd::gateway(const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it == gateways_.end() ? nullptr : &it->second;
}

std::vector<std::string> Statusd::tracked_gateways() const {
  std::vector<std::string> out;
  out.reserve(gateways_.size());
  for (const auto& [id, _] : gateways_) out.push_back(id);
  return out;
}

void install_default_health_rules(Metricsd& metricsd) {
  // gateway_health samples are 0/1/2 (healthy/degraded/unreachable), so the
  // thresholds split cleanly between the levels and clear on recovery.
  metricsd.add_alert_rule(AlertRule{"gateway_degraded", "gateway_health", 0.5,
                                    true, AlertKind::kThreshold});
  metricsd.add_alert_rule(AlertRule{"gateway_unreachable", "gateway_health",
                                    1.5, true, AlertKind::kThreshold});
}

}  // namespace magma::orc8r
