#include "datapath/flow_table.h"

#include <algorithm>

namespace magma::datapath {

bool FlowMatch::matches(const Packet& pkt, Direction dir) const {
  if (direction && *direction != dir) return false;
  if (ip_src && !ip_src->matches(pkt.ip.src)) return false;
  if (ip_dst && !ip_dst->matches(pkt.ip.dst)) return false;
  if (ip_proto && *ip_proto != pkt.ip.protocol) return false;
  if (l4_src && *l4_src != pkt.l4.src_port) return false;
  if (l4_dst && *l4_dst != pkt.l4.dst_port) return false;
  if (tunnel_id) {
    if (!pkt.gtpu || pkt.gtpu->teid != *tunnel_id) return false;
  }
  return true;
}

void FlowTable::add(FlowEntry entry) {
  // Stable position: after all entries with priority >= new priority —
  // upper_bound on the descending-sorted vector keeps FIFO order among
  // equal priorities (first-added wins ties, like the list did).
  auto it = std::upper_bound(entries_.begin(), entries_.end(), entry.priority,
                             [](std::uint16_t priority, const FlowEntry& e) {
                               return e.priority < priority;
                             });
  entries_.insert(it, std::move(entry));
  ++generation_;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [cookie](const FlowEntry& e) {
                                  return e.cookie == cookie;
                                }),
                 entries_.end());
  if (entries_.size() != before) ++generation_;
  return before - entries_.size();
}

FlowEntry* FlowTable::lookup(const Packet& pkt, Direction dir) {
  for (FlowEntry& entry : entries_) {
    if (entry.match.matches(pkt, dir)) {
      return &entry;
    }
  }
  return nullptr;
}

FlowCounters FlowTable::counters_for_cookie(std::uint64_t cookie) const {
  FlowCounters total;
  for (const FlowEntry& entry : entries_) {
    if (entry.cookie == cookie) {
      total.packets += entry.counters.packets;
      total.bytes += entry.counters.bytes;
    }
  }
  return total;
}

}  // namespace magma::datapath
