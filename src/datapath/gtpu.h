// GTP-U encapsulation helpers.
//
// §3.1: Magma terminates GTP locally in the AGW, so the only GTP-U hops are
// eNodeB↔AGW (one LAN hop) and, in federation mode, AGW↔GTP-A. These
// helpers apply/strip the tunnel header on those hops.
#pragma once

#include "common/ids.h"
#include "datapath/packet.h"

namespace magma::datapath {

// Wrap `inner` in a GTP-U tunnel from `src` to `dst` with the given TEID.
Packet gtpu_encap(Packet inner, common::Teid teid, common::Ipv4 src,
                  common::Ipv4 dst);

// Strip the tunnel header; returns the inner packet unchanged if not
// encapsulated.
Packet gtpu_decap(Packet outer);

}  // namespace magma::datapath
