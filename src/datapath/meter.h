// Token-bucket meters: the mechanism behind "rate limit customer C to
// X Mbps" policies (§2.1). Meters are attached to flow entries by pipelined
// and consulted per packet by the pipeline.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/time.h"

namespace magma::datapath {

struct MeterConfig {
  double rate_bps = 0;       // sustained rate; 0 = unlimited
  std::uint64_t burst_bytes = 65536;
};

struct MeterStats {
  std::uint64_t conformed_packets = 0;
  std::uint64_t conformed_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
};

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(MeterConfig config, sim::TimePoint now);

  // True if `bytes` conform (tokens consumed); false means drop/red.
  bool allow(std::uint64_t bytes, sim::TimePoint now);

  // Batch form: of `count` packets of `bytes_each`, returns how many
  // conform (prefix); the rest are charged as dropped. Keeps batch
  // processing from turning the meter into an all-or-nothing gate when a
  // batch exceeds the bucket depth.
  std::uint64_t allow_batch(std::uint64_t count, std::uint64_t bytes_each,
                            sim::TimePoint now);

  const MeterConfig& config() const { return config_; }
  const MeterStats& stats() const { return stats_; }
  double tokens() const { return tokens_; }

 private:
  void refill(sim::TimePoint now);

  MeterConfig config_;
  double tokens_ = 0;
  sim::TimePoint last_refill_ = 0;
  MeterStats stats_;
};

// Meter registry keyed by meter id (pipeline-scope).
class MeterBank {
 public:
  void install(std::uint32_t id, MeterConfig config, sim::TimePoint now);
  void remove(std::uint32_t id);
  TokenBucket* find(std::uint32_t id);
  std::size_t size() const { return meters_.size(); }

 private:
  std::unordered_map<std::uint32_t, TokenBucket> meters_;
};

}  // namespace magma::datapath
