// Multi-table software datapath — the repository's Open vSwitch (§3.5).
//
// Packets enter table 0 and flow through GotoTable actions; each table is a
// priority-matched FlowTable. Per-session rules (tunnel handling, QoS
// meters, counters) are programmed by the AGW's `pipelined` service exactly
// as Magma programs OVS via OpenFlow. A table miss drops the packet: an
// unknown UE has no session and therefore no connectivity.
//
// Table layout used by pipelined (mirroring Magma's gtp/ingress/enforcement
// pipeline):
//   0: classification + tunnel handling (pop uplink GTP, push downlink GTP)
//   1: policy enforcement (meters, DSCP, usage counting)
//   2: egress (output port selection)
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.h"
#include "datapath/flow_table.h"
#include "datapath/gtpu.h"
#include "datapath/meter.h"
#include "sim/time.h"

namespace magma::datapath {

constexpr std::uint8_t kTableClassify = 0;
constexpr std::uint8_t kTableEnforce = 1;
constexpr std::uint8_t kTableEgress = 2;
constexpr std::size_t kNumTables = 3;

// Well-known ports on the AGW bridge.
constexpr std::uint32_t kPortRan = 1;   // toward eNodeB/gNB/AP (GTP side)
constexpr std::uint32_t kPortSgi = 2;   // toward the Internet
constexpr std::uint32_t kPortLocal = 3; // AGW-local services (DNS, captive portal)

enum class Verdict : std::uint8_t {
  kForwarded,
  kDroppedNoMatch,   // table miss (no session)
  kDroppedByPolicy,  // explicit drop rule
  kDroppedByMeter,   // rate limiter
};

struct PipelineResult {
  Verdict verdict = Verdict::kDroppedNoMatch;
  std::uint32_t out_port = 0;
  Packet packet;  // post-processing form (tunnel pushed/popped, DSCP set)
  // Surviving packet count: batch size minus meter drops (equals the input
  // count when nothing metered the batch).
  std::uint64_t out_count = 0;
};

// A run of identical packets processed as one unit. Traffic generators emit
// batches so that multi-minute, multi-hundred-Mbps experiments stay
// tractable; matching happens once, counters and meters are charged for the
// whole batch (meters conform or drop a batch atomically — the batch
// interval bounds the granularity error).
struct PacketBatch {
  Packet packet;            // representative packet
  std::uint64_t count = 1;  // number of identical packets
  std::uint64_t bytes() const {
    return count * static_cast<std::uint64_t>(packet.wire_size());
  }
};

struct PipelineStats {
  std::uint64_t forwarded_packets = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t dropped_no_match = 0;
  std::uint64_t dropped_by_policy = 0;
  std::uint64_t dropped_by_meter = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class Pipeline {
 public:
  FlowTable& table(std::uint8_t id) { return tables_.at(id); }
  const FlowTable& table(std::uint8_t id) const { return tables_.at(id); }
  MeterBank& meters() { return meters_; }

  PipelineResult process(Packet pkt, Direction dir, sim::TimePoint now);
  // Batch form: one table walk, counters/meters charged `count` times.
  PipelineResult process_batch(PacketBatch batch, Direction dir,
                               sim::TimePoint now);

  // Remove every rule installed with this cookie, across all tables.
  std::size_t remove_session_rules(std::uint64_t cookie);
  // Aggregate counters for a cookie across all tables.
  FlowCounters session_counters(std::uint64_t cookie) const;

  const PipelineStats& stats() const { return stats_; }
  std::size_t total_flow_entries() const;

  // Local tunnel endpoint address used when pushing GTP-U (the AGW's
  // RAN-facing interface address).
  void set_local_address(common::Ipv4 addr) { local_addr_ = addr; }

  // Microflow cache (the OVS design this datapath reproduces): the first
  // packet of a flow takes the full multi-table walk; the resolved path —
  // transforms, meters, matched entries for counter charging — is cached by
  // exact header match. Table mutations invalidate via the generation
  // counters. On by default; the ablation microbench switches it off.
  void set_flow_cache_enabled(bool enabled);
  bool flow_cache_enabled() const { return cache_enabled_; }

 private:
  struct CacheKey {
    std::uint8_t dir;
    std::uint32_t tunnel;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint8_t proto;
    std::uint16_t sport;
    std::uint16_t dport;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };
  // One counter-charge or meter application along the cached walk, in
  // order (order matters: a meter can shrink the batch mid-walk).
  struct CachedOp {
    bool is_meter;
    FlowEntry* entry;       // charge op: entry whose counters to bump
    std::uint32_t meter_id; // meter op
    // Wire-size delta of the packet form at this point relative to the
    // input packet (tunnel headers come and go along the walk).
    std::int32_t byte_delta;
  };
  struct CachedPath {
    std::uint64_t generation = 0;  // sum of table generations at fill time
    Verdict verdict = Verdict::kDroppedNoMatch;
    std::uint32_t out_port = 0;
    bool pop_gtpu = false;
    bool push_gtpu = false;
    common::Teid push_teid;
    common::Ipv4 push_dst;
    bool set_dscp = false;
    std::uint8_t dscp = 0;
    std::vector<CachedOp> ops;
  };

  static CacheKey make_key(const Packet& pkt, Direction dir);
  std::uint64_t tables_generation() const;
  PipelineResult process_slow(PacketBatch batch, Direction dir,
                              sim::TimePoint now, CachedPath* fill);
  PipelineResult apply_cached(const CachedPath& path, PacketBatch batch,
                              sim::TimePoint now);

  std::array<FlowTable, kNumTables> tables_;
  MeterBank meters_;
  PipelineStats stats_;
  common::Ipv4 local_addr_ = common::Ipv4::from_octets(10, 0, 0, 1);

  bool cache_enabled_ = true;
  static constexpr std::size_t kMaxCacheEntries = 65536;
  // Nodes come from a freelist pool: session churn (install/remove bumps the
  // table generation and evicts) otherwise makes the cache a steady-state
  // allocator. Bucket arrays (n > 1 requests) bypass the pool by design.
  std::unordered_map<
      CacheKey, CachedPath, CacheKeyHash, std::equal_to<CacheKey>,
      common::PoolAllocator<std::pair<const CacheKey, CachedPath>>>
      cache_;
};

}  // namespace magma::datapath
