// Packet model: real header layouts with structured access.
//
// The datapath (our Open vSwitch stand-in, §3.5) needs to parse flows,
// push/pop GTP-U tunnel headers, and count bytes exactly as OVS does.
// Packets carry parsed header structs plus an opaque payload length; the
// serialize/parse pair produces and consumes actual wire bytes (tested by
// round-trip), while the simulation fast-path moves the struct form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/result.h"

namespace magma::datapath {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload, filled by serialize
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  common::Ipv4 src;
  common::Ipv4 dst;

  static constexpr std::size_t kSize = 20;
  bool operator==(const Ipv4Header&) const = default;
};

struct L4Header {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  static constexpr std::size_t kSize = 8;  // UDP-sized; TCP modeled same size
  bool operator==(const L4Header&) const = default;
};

// GTP-U (TS 29.281): version 1, message type 0xFF (G-PDU).
struct GtpuHeader {
  common::Teid teid;
  static constexpr std::size_t kSize = 8;
  bool operator==(const GtpuHeader&) const = default;
};

constexpr std::uint16_t kGtpuPort = 2152;

struct Packet {
  // Outer tunnel, present when the packet is GTP-U encapsulated.
  std::optional<GtpuHeader> gtpu;
  std::optional<Ipv4Header> outer_ip;  // set together with gtpu

  Ipv4Header ip;  // inner (user) IP header
  L4Header l4;
  std::uint32_t payload_bytes = 0;  // opaque application payload length

  // Total on-the-wire size in bytes.
  std::uint32_t wire_size() const;

  // Serialize to wire bytes. Payload is filled with zeros (its content is
  // opaque to the data plane; only its length matters).
  common::Bytes serialize() const;
  static common::Result<Packet> parse(common::BytesView wire);

  bool operator==(const Packet&) const = default;
};

// Convenience constructors used throughout tests and workloads.
Packet make_udp(common::Ipv4 src, common::Ipv4 dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t payload_bytes);
Packet make_tcp(common::Ipv4 src, common::Ipv4 dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t payload_bytes);

}  // namespace magma::datapath
