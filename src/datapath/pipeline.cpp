#include "datapath/pipeline.h"

#include "common/bytes.h"
#include "obs/host_profiler.h"

namespace magma::datapath {

// ---------------------------------------------------------------------------
// Microflow cache plumbing
// ---------------------------------------------------------------------------

std::size_t Pipeline::CacheKeyHash::operator()(const CacheKey& k) const {
  return static_cast<std::size_t>(common::fnv1a(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(&k), sizeof(CacheKey))));
}

Pipeline::CacheKey Pipeline::make_key(const Packet& pkt, Direction dir) {
  CacheKey key{};
  key.dir = static_cast<std::uint8_t>(dir);
  key.tunnel = pkt.gtpu.has_value() ? pkt.gtpu->teid.value : 0;
  key.src = pkt.ip.src.addr;
  key.dst = pkt.ip.dst.addr;
  key.proto = static_cast<std::uint8_t>(pkt.ip.protocol);
  key.sport = pkt.l4.src_port;
  key.dport = pkt.l4.dst_port;
  return key;
}

std::uint64_t Pipeline::tables_generation() const {
  std::uint64_t sum = 0;
  for (const FlowTable& table : tables_) sum += table.generation();
  return sum;
}

void Pipeline::set_flow_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  cache_.clear();
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

PipelineResult Pipeline::process(Packet pkt, Direction dir,
                                 sim::TimePoint now) {
  return process_batch(PacketBatch{std::move(pkt), 1}, dir, now);
}

PipelineResult Pipeline::process_batch(PacketBatch batch, Direction dir,
                                       sim::TimePoint now) {
  MAGMA_HOST_SCOPE("datapath", "process_batch");
  if (!cache_enabled_) {
    return process_slow(std::move(batch), dir, now, nullptr);
  }
  const CacheKey key = make_key(batch.packet, dir);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.generation == tables_generation()) {
    ++stats_.cache_hits;
    return apply_cached(it->second, std::move(batch), now);
  }
  ++stats_.cache_misses;
  CachedPath path;
  PipelineResult result = process_slow(std::move(batch), dir, now, &path);
  // A walk cut short by meter exhaustion never reached its real terminal
  // action; caching it would freeze "dropped" for packets that conform
  // later. Everything else (including no-match and policy drops) caches.
  if (result.verdict != Verdict::kDroppedByMeter) {
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_[key] = std::move(path);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Slow path: the full multi-table walk (optionally filling a cache entry)
// ---------------------------------------------------------------------------

PipelineResult Pipeline::process_slow(PacketBatch batch, Direction dir,
                                      sim::TimePoint now, CachedPath* fill) {
  // Separates the full multi-table walk from the microflow-cache fast path:
  // self-time of process_batch ≈ cached-path cost, child slow_walk ≈ miss
  // cost — exactly the split an arena/pool decision needs.
  MAGMA_HOST_SCOPE("datapath", "slow_walk");
  PipelineResult result;
  Packet& pkt = batch.packet;
  std::uint64_t count = batch.count;
  const std::int64_t base_wire = pkt.wire_size();

  if (fill != nullptr) {
    fill->generation = tables_generation();
    fill->pop_gtpu = false;
    fill->push_gtpu = false;
    fill->set_dscp = false;
    fill->ops.clear();
  }
  auto record_charge = [&](FlowEntry* entry) {
    if (fill == nullptr) return;
    fill->ops.push_back(CachedOp{
        false, entry, 0,
        static_cast<std::int32_t>(static_cast<std::int64_t>(pkt.wire_size()) -
                                  base_wire)});
  };
  auto record_meter = [&](std::uint32_t meter_id) {
    if (fill == nullptr) return;
    fill->ops.push_back(CachedOp{
        true, nullptr, meter_id,
        static_cast<std::int32_t>(static_cast<std::int64_t>(pkt.wire_size()) -
                                  base_wire)});
  };
  auto finish = [&](Verdict verdict, std::uint32_t out_port) {
    result.verdict = verdict;
    result.out_port = out_port;
    result.out_count = count;
    result.packet = std::move(pkt);
    if (fill != nullptr) {
      fill->verdict = verdict;
      fill->out_port = out_port;
    }
    return std::move(result);
  };

  std::uint8_t table_id = kTableClassify;
  // Bounded walk: each GotoTable must strictly increase the table id, so at
  // most kNumTables lookups happen.
  while (table_id < kNumTables) {
    FlowEntry* entry = tables_[table_id].lookup(pkt, dir);
    if (entry == nullptr) {
      stats_.dropped_no_match += count;
      return finish(Verdict::kDroppedNoMatch, 0);
    }
    record_charge(entry);
    entry->counters.packets += count;
    entry->counters.bytes += count * pkt.wire_size();

    bool moved_on = false;
    for (const Action& action : entry->actions) {
      switch (action.type) {
        case ActionType::kDrop:
          stats_.dropped_by_policy += count;
          return finish(Verdict::kDroppedByPolicy, 0);
        case ActionType::kPopGtpu:
          pkt = gtpu_decap(std::move(pkt));
          if (fill != nullptr) fill->pop_gtpu = true;
          break;
        case ActionType::kPushGtpu:
          pkt = gtpu_encap(std::move(pkt), action.teid, local_addr_,
                           action.tunnel_dst);
          if (fill != nullptr) {
            fill->push_gtpu = true;
            fill->push_teid = action.teid;
            fill->push_dst = action.tunnel_dst;
          }
          break;
        case ActionType::kSetMeter: {
          record_meter(action.meter_id);
          TokenBucket* meter = meters_.find(action.meter_id);
          if (meter != nullptr) {
            // Partial conformance: the conforming prefix of the batch
            // continues; the excess is dropped here.
            const std::uint64_t allowed =
                meter->allow_batch(count, pkt.wire_size(), now);
            stats_.dropped_by_meter += count - allowed;
            if (allowed == 0) {
              return finish(Verdict::kDroppedByMeter, 0);
            }
            count = allowed;
          }
          break;
        }
        case ActionType::kSetDscp:
          pkt.ip.dscp = action.dscp;
          if (fill != nullptr) {
            fill->set_dscp = true;
            fill->dscp = action.dscp;
          }
          break;
        case ActionType::kGotoTable:
          if (action.table_id > table_id) {
            table_id = action.table_id;
            moved_on = true;
          }
          break;
        case ActionType::kOutput:
          stats_.forwarded_packets += count;
          stats_.forwarded_bytes += count * pkt.wire_size();
          return finish(Verdict::kForwarded, action.port);
      }
      if (moved_on) break;
    }
    if (!moved_on) {
      // Entry had neither Output/Drop nor GotoTable: treat as drop (an
      // incompletely programmed session must not leak traffic).
      stats_.dropped_by_policy += count;
      return finish(Verdict::kDroppedByPolicy, 0);
    }
  }
  stats_.dropped_no_match += count;
  return finish(Verdict::kDroppedNoMatch, 0);
}

// ---------------------------------------------------------------------------
// Fast path: replay a cached megaflow
// ---------------------------------------------------------------------------

PipelineResult Pipeline::apply_cached(const CachedPath& path,
                                      PacketBatch batch, sim::TimePoint now) {
  PipelineResult result;
  Packet& pkt = batch.packet;
  std::uint64_t count = batch.count;
  const std::int64_t base_wire = pkt.wire_size();

  bool meter_dropped_all = false;
  for (const CachedOp& op : path.ops) {
    const auto bytes_each =
        static_cast<std::uint64_t>(base_wire + op.byte_delta);
    if (op.is_meter) {
      TokenBucket* meter = meters_.find(op.meter_id);
      if (meter != nullptr) {
        const std::uint64_t allowed =
            meter->allow_batch(count, bytes_each, now);
        stats_.dropped_by_meter += count - allowed;
        if (allowed == 0) {
          meter_dropped_all = true;
          break;
        }
        count = allowed;
      }
    } else {
      op.entry->counters.packets += count;
      op.entry->counters.bytes += count * bytes_each;
    }
  }

  // Transforms (same whether or not a meter cut the batch short of the
  // output stage — a fully-dropped batch reports its pre-transform form,
  // matching the slow path's early return).
  if (!meter_dropped_all) {
    if (path.pop_gtpu) pkt = gtpu_decap(std::move(pkt));
    if (path.push_gtpu) {
      pkt = gtpu_encap(std::move(pkt), path.push_teid, local_addr_,
                       path.push_dst);
    }
    if (path.set_dscp) pkt.ip.dscp = path.dscp;
  }

  const Verdict verdict =
      meter_dropped_all ? Verdict::kDroppedByMeter : path.verdict;
  switch (verdict) {
    case Verdict::kForwarded:
      stats_.forwarded_packets += count;
      stats_.forwarded_bytes += count * pkt.wire_size();
      break;
    case Verdict::kDroppedNoMatch:
      stats_.dropped_no_match += count;
      break;
    case Verdict::kDroppedByPolicy:
      stats_.dropped_by_policy += count;
      break;
    case Verdict::kDroppedByMeter:
      if (!meter_dropped_all) stats_.dropped_by_meter += count;
      break;
  }
  result.verdict = verdict;
  result.out_port = verdict == Verdict::kForwarded ? path.out_port : 0;
  result.out_count = count;
  result.packet = std::move(pkt);
  return result;
}

// ---------------------------------------------------------------------------
// Management
// ---------------------------------------------------------------------------

std::size_t Pipeline::remove_session_rules(std::uint64_t cookie) {
  std::size_t removed = 0;
  for (FlowTable& table : tables_) removed += table.remove_by_cookie(cookie);
  return removed;
}

FlowCounters Pipeline::session_counters(std::uint64_t cookie) const {
  FlowCounters total;
  for (const FlowTable& table : tables_) {
    const FlowCounters c = table.counters_for_cookie(cookie);
    total.packets += c.packets;
    total.bytes += c.bytes;
  }
  return total;
}

std::size_t Pipeline::total_flow_entries() const {
  std::size_t n = 0;
  for (const FlowTable& table : tables_) n += table.size();
  return n;
}

}  // namespace magma::datapath
