#include "datapath/meter.h"

#include <algorithm>

namespace magma::datapath {

TokenBucket::TokenBucket(MeterConfig config, sim::TimePoint now)
    : config_(config),
      tokens_(static_cast<double>(config.burst_bytes)),
      last_refill_(now) {}

void TokenBucket::refill(sim::TimePoint now) {
  if (now <= last_refill_) return;
  const double elapsed = sim::to_seconds(now - last_refill_);
  tokens_ = std::min(static_cast<double>(config_.burst_bytes),
                     tokens_ + elapsed * config_.rate_bps / 8.0);
  last_refill_ = now;
}

bool TokenBucket::allow(std::uint64_t bytes, sim::TimePoint now) {
  if (config_.rate_bps <= 0) {  // unlimited
    ++stats_.conformed_packets;
    stats_.conformed_bytes += bytes;
    return true;
  }
  refill(now);
  if (tokens_ >= static_cast<double>(bytes)) {
    tokens_ -= static_cast<double>(bytes);
    ++stats_.conformed_packets;
    stats_.conformed_bytes += bytes;
    return true;
  }
  ++stats_.dropped_packets;
  stats_.dropped_bytes += bytes;
  return false;
}

std::uint64_t TokenBucket::allow_batch(std::uint64_t count,
                                       std::uint64_t bytes_each,
                                       sim::TimePoint now) {
  if (count == 0 || bytes_each == 0) return count;
  if (config_.rate_bps <= 0) {
    stats_.conformed_packets += count;
    stats_.conformed_bytes += count * bytes_each;
    return count;
  }
  refill(now);
  const std::uint64_t affordable =
      static_cast<std::uint64_t>(tokens_ / static_cast<double>(bytes_each));
  const std::uint64_t allowed = std::min(count, affordable);
  tokens_ -= static_cast<double>(allowed * bytes_each);
  stats_.conformed_packets += allowed;
  stats_.conformed_bytes += allowed * bytes_each;
  stats_.dropped_packets += count - allowed;
  stats_.dropped_bytes += (count - allowed) * bytes_each;
  return allowed;
}

void MeterBank::install(std::uint32_t id, MeterConfig config,
                        sim::TimePoint now) {
  meters_.insert_or_assign(id, TokenBucket(config, now));
}

void MeterBank::remove(std::uint32_t id) {
  meters_.erase(id);
}

TokenBucket* MeterBank::find(std::uint32_t id) {
  auto it = meters_.find(id);
  return it == meters_.end() ? nullptr : &it->second;
}

}  // namespace magma::datapath
