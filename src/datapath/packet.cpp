#include "datapath/packet.h"

#include <cstring>

namespace magma::datapath {

namespace {

void put_u16(common::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(common::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

struct Cursor {
  common::BytesView data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  std::uint16_t u16() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  void skip(std::size_t n) {
    if (pos + n > data.size()) {
      ok = false;
      return;
    }
    pos += n;
  }
};

// Serialize one IPv4 header. `payload_len` covers everything after it.
void serialize_ipv4(common::Bytes& out, const Ipv4Header& ip,
                    std::uint16_t payload_len) {
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(static_cast<std::uint8_t>(ip.dscp << 2));
  put_u16(out, static_cast<std::uint16_t>(Ipv4Header::kSize + payload_len));
  put_u16(out, 0);  // identification
  put_u16(out, 0);  // flags/fragment
  out.push_back(ip.ttl);
  out.push_back(static_cast<std::uint8_t>(ip.protocol));
  put_u16(out, 0);  // checksum (not modeled)
  put_u32(out, ip.src.addr);
  put_u32(out, ip.dst.addr);
}

bool parse_ipv4(Cursor& c, Ipv4Header& ip, std::uint16_t& payload_len) {
  const std::uint8_t ver_ihl = c.u8();
  if (!c.ok || (ver_ihl >> 4) != 4 || (ver_ihl & 0x0F) != 5) return false;
  ip.dscp = static_cast<std::uint8_t>(c.u8() >> 2);
  const std::uint16_t total = c.u16();
  if (total < Ipv4Header::kSize) return false;
  payload_len = static_cast<std::uint16_t>(total - Ipv4Header::kSize);
  ip.total_length = total;
  c.skip(4);  // id + flags/frag
  ip.ttl = c.u8();
  ip.protocol = static_cast<IpProto>(c.u8());
  c.skip(2);  // checksum
  ip.src.addr = c.u32();
  ip.dst.addr = c.u32();
  return c.ok;
}

}  // namespace

std::uint32_t Packet::wire_size() const {
  std::uint32_t size = static_cast<std::uint32_t>(Ipv4Header::kSize) +
                       static_cast<std::uint32_t>(L4Header::kSize) +
                       payload_bytes;
  if (gtpu.has_value()) {
    size += static_cast<std::uint32_t>(Ipv4Header::kSize) +
            static_cast<std::uint32_t>(L4Header::kSize) +
            static_cast<std::uint32_t>(GtpuHeader::kSize);
  }
  return size;
}

common::Bytes Packet::serialize() const {
  common::Bytes out;
  out.reserve(wire_size());

  const std::uint16_t inner_len = static_cast<std::uint16_t>(
      L4Header::kSize + payload_bytes);

  if (gtpu.has_value()) {
    const std::uint16_t gtp_payload = static_cast<std::uint16_t>(
        Ipv4Header::kSize + inner_len);
    // Outer IP (UDP to port 2152) + UDP + GTP-U.
    Ipv4Header outer = outer_ip.value_or(Ipv4Header{});
    outer.protocol = IpProto::kUdp;
    serialize_ipv4(out, outer,
                   static_cast<std::uint16_t>(L4Header::kSize +
                                              GtpuHeader::kSize + gtp_payload));
    put_u16(out, kGtpuPort);
    put_u16(out, kGtpuPort);
    put_u16(out, static_cast<std::uint16_t>(L4Header::kSize +
                                            GtpuHeader::kSize + gtp_payload));
    put_u16(out, 0);  // udp checksum
    // GTP-U header: flags (version 1, PT=1), type 0xFF (G-PDU), length, TEID.
    out.push_back(0x30);
    out.push_back(0xFF);
    put_u16(out, gtp_payload);
    put_u32(out, gtpu->teid.value);
  }

  serialize_ipv4(out, ip, inner_len);
  put_u16(out, l4.src_port);
  put_u16(out, l4.dst_port);
  put_u16(out, inner_len);
  put_u16(out, 0);  // checksum
  out.resize(out.size() + payload_bytes, 0);
  return out;
}

common::Result<Packet> Packet::parse(common::BytesView wire) {
  Cursor c{wire};
  Packet pkt;

  Ipv4Header first;
  std::uint16_t first_payload = 0;
  if (!parse_ipv4(c, first, first_payload)) {
    return common::Error{common::ErrorCode::kInvalidArgument, "bad ipv4"};
  }

  // Detect GTP-U encapsulation: UDP to port 2152.
  bool encapsulated = false;
  if (first.protocol == IpProto::kUdp) {
    const std::size_t l4_start = c.pos;
    const std::uint16_t sport = c.u16();
    const std::uint16_t dport = c.u16();
    (void)sport;
    if (c.ok && dport == kGtpuPort) {
      c.skip(4);  // udp len + checksum
      const std::uint8_t flags = c.u8();
      const std::uint8_t type = c.u8();
      c.skip(2);  // gtp length
      const std::uint32_t teid = c.u32();
      if (!c.ok || (flags >> 5) != 1 || type != 0xFF) {
        return common::Error{common::ErrorCode::kInvalidArgument, "bad gtpu"};
      }
      pkt.gtpu = GtpuHeader{common::Teid{teid}};
      pkt.outer_ip = first;
      encapsulated = true;
    } else {
      c.pos = l4_start;
      c.ok = true;
    }
  }

  std::uint16_t inner_payload = first_payload;
  if (encapsulated) {
    if (!parse_ipv4(c, pkt.ip, inner_payload)) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "bad inner ipv4"};
    }
  } else {
    pkt.ip = first;
  }

  pkt.l4.src_port = c.u16();
  pkt.l4.dst_port = c.u16();
  c.skip(4);  // len + checksum
  if (!c.ok || inner_payload < L4Header::kSize) {
    return common::Error{common::ErrorCode::kInvalidArgument, "bad l4"};
  }
  pkt.payload_bytes = static_cast<std::uint32_t>(inner_payload - L4Header::kSize);
  c.skip(pkt.payload_bytes);
  if (!c.ok) {
    return common::Error{common::ErrorCode::kInvalidArgument, "truncated"};
  }
  // Normalize fields that serialize() fills.
  pkt.ip.total_length = 0;
  if (pkt.outer_ip) pkt.outer_ip->total_length = 0;
  return pkt;
}

Packet make_udp(common::Ipv4 src, common::Ipv4 dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t payload_bytes) {
  Packet pkt;
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.ip.protocol = IpProto::kUdp;
  pkt.l4 = {sport, dport};
  pkt.payload_bytes = payload_bytes;
  return pkt;
}

Packet make_tcp(common::Ipv4 src, common::Ipv4 dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t payload_bytes) {
  Packet pkt = make_udp(src, dst, sport, dport, payload_bytes);
  pkt.ip.protocol = IpProto::kTcp;
  return pkt;
}

}  // namespace magma::datapath
