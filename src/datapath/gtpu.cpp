#include "datapath/gtpu.h"

namespace magma::datapath {

Packet gtpu_encap(Packet inner, common::Teid teid, common::Ipv4 src,
                  common::Ipv4 dst) {
  inner.gtpu = GtpuHeader{teid};
  Ipv4Header outer;
  outer.src = src;
  outer.dst = dst;
  outer.protocol = IpProto::kUdp;
  inner.outer_ip = outer;
  return inner;
}

Packet gtpu_decap(Packet outer) {
  outer.gtpu.reset();
  outer.outer_ip.reset();
  return outer;
}

}  // namespace magma::datapath
