// OpenFlow-style flow table: priority-ordered wildcard matching with
// per-entry counters — the core abstraction pipelined programs (§3.5: the
// data plane must "recognize the flows for active sessions" and "collect
// statistics for those flows").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "datapath/packet.h"

namespace magma::datapath {

// Direction is how Magma's pipeline distinguishes uplink (UE→Internet) and
// downlink (Internet→UE) traffic; it plays the role of OVS's in_port match.
enum class Direction : std::uint8_t { kUplink = 0, kDownlink = 1 };

struct IpPrefix {
  common::Ipv4 base;
  std::uint8_t prefix_len = 32;

  bool matches(common::Ipv4 addr) const {
    if (prefix_len == 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix_len)) - 1);
    return (addr.addr & mask) == (base.addr & mask);
  }
  bool operator==(const IpPrefix&) const = default;
};

// All-absent fields are wildcards.
struct FlowMatch {
  std::optional<Direction> direction;
  std::optional<IpPrefix> ip_src;
  std::optional<IpPrefix> ip_dst;
  std::optional<IpProto> ip_proto;
  std::optional<std::uint16_t> l4_src;
  std::optional<std::uint16_t> l4_dst;
  std::optional<common::Teid> tunnel_id;  // matches the GTP-U TEID

  bool matches(const Packet& pkt, Direction dir) const;
  bool operator==(const FlowMatch&) const = default;
};

enum class ActionType : std::uint8_t {
  kOutput,     // forward to port `port`
  kDrop,
  kPushGtpu,   // encapsulate with `teid` toward `tunnel_dst`
  kPopGtpu,    // strip tunnel header
  kSetMeter,   // subject packet to meter `meter_id`
  kSetDscp,    // rewrite DSCP (QoS marking)
  kGotoTable,  // continue processing in table `table_id`
};

struct Action {
  ActionType type;
  std::uint32_t port = 0;
  common::Teid teid;
  common::Ipv4 tunnel_dst;
  std::uint32_t meter_id = 0;
  std::uint8_t dscp = 0;
  std::uint8_t table_id = 0;

  static Action output(std::uint32_t port) {
    return Action{ActionType::kOutput, port, {}, {}, 0, 0, 0};
  }
  static Action drop() { return Action{ActionType::kDrop, 0, {}, {}, 0, 0, 0}; }
  static Action push_gtpu(common::Teid teid, common::Ipv4 dst) {
    return Action{ActionType::kPushGtpu, 0, teid, dst, 0, 0, 0};
  }
  static Action pop_gtpu() {
    return Action{ActionType::kPopGtpu, 0, {}, {}, 0, 0, 0};
  }
  static Action set_meter(std::uint32_t id) {
    return Action{ActionType::kSetMeter, 0, {}, {}, id, 0, 0};
  }
  static Action set_dscp(std::uint8_t dscp) {
    return Action{ActionType::kSetDscp, 0, {}, {}, 0, dscp, 0};
  }
  static Action goto_table(std::uint8_t table) {
    return Action{ActionType::kGotoTable, 0, {}, {}, 0, 0, table};
  }
  bool operator==(const Action&) const = default;
};

struct FlowCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct FlowEntry {
  std::uint16_t priority = 0;  // higher wins
  FlowMatch match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;  // owner tag (session id / rule id)
  FlowCounters counters;
};

class FlowTable {
 public:
  // Entries are kept sorted by descending priority; insertion order breaks
  // ties (first-added wins), matching OVS behaviour closely enough.
  // Storage is a flat sorted vector: lookups walk contiguous memory instead
  // of chasing list nodes, and adds stop costing one node allocation each.
  // FlowEntry addresses are stable only between mutations — the pipeline's
  // microflow cache holds pointers into the vector, guarded by a generation
  // counter bumped on every mutation (which is exactly when the vector may
  // reallocate).
  void add(FlowEntry entry);
  // Remove all entries with the given cookie; returns count removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);
  std::size_t size() const { return entries_.size(); }

  // Highest-priority matching entry, or nullptr. Counters are charged by
  // the pipeline (which knows the batch size), not here.
  FlowEntry* lookup(const Packet& pkt, Direction dir);

  const std::vector<FlowEntry>& entries() const { return entries_; }

  // Sum of counters across entries with this cookie.
  FlowCounters counters_for_cookie(std::uint64_t cookie) const;

  // Bumped on every add/remove; readers holding FlowEntry pointers must
  // revalidate when this changes.
  std::uint64_t generation() const { return generation_; }

 private:
  std::vector<FlowEntry> entries_;  // sorted by descending priority
  std::uint64_t generation_ = 0;
};

}  // namespace magma::datapath
